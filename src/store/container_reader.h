// Read side of the record container (see container.h for the layout).
//
// open() loads the file and parses the footer index, giving O(1 + index)
// stream lookup without touching the data region. Damage tolerance is the
// point of the format, so open() only fails on I/O errors: a container
// with a mangled footer or index still opens (index_ok() == false) and can
// be inspected with verify() or salvaged with repack_container(), which
// fall back to a sequential frame scan.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "store/container.h"

namespace cdc::store {

class ContainerReader {
 public:
  /// Loads `path` fully into memory. Returns nullptr (and sets *error)
  /// only when the file cannot be read; any readable file — including one
  /// truncated below the header+footer minimum — opens, with the damage
  /// reported through header_ok()/index_ok() and their diagnostics.
  static std::unique_ptr<ContainerReader> open(const std::string& path,
                                               std::string* error = nullptr);

  /// True when the footer and index parsed and CRC-checked clean.
  [[nodiscard]] bool index_ok() const noexcept { return index_ok_; }
  /// Diagnostic when index_ok() is false; empty otherwise.
  [[nodiscard]] const std::string& index_error() const noexcept {
    return index_error_;
  }
  [[nodiscard]] bool header_ok() const noexcept { return header_ok_; }
  [[nodiscard]] const std::string& header_error() const noexcept {
    return header_error_;
  }

  /// Streams recorded in the index (index order). When the index is
  /// damaged, falls back to the streams found by a sequential scan.
  [[nodiscard]] std::vector<runtime::StreamKey> keys() const;

  [[nodiscard]] const StreamIndexEntry* find(
      const runtime::StreamKey& key) const;

  /// Concatenated payloads of one stream in sequence order. Trusted read
  /// path: aborts with a CDC_CHECK error on CRC mismatch — replay must
  /// never consume silently corrupt data. Requires index_ok().
  [[nodiscard]] std::vector<std::uint8_t> read_stream(
      const runtime::StreamKey& key) const;

  /// True when the container carries an epoch-index section (new-format
  /// containers whose appenders supplied EpochMeta). Old containers simply
  /// lack it — absence is not damage.
  [[nodiscard]] bool epoch_index_present() const noexcept {
    return epoch_present_;
  }
  /// True when the epoch section parsed, CRC-checked, and cross-validated
  /// against the stream index. False either because the section is absent
  /// or because it is damaged (see epoch_index_error()); both degrade
  /// windowed reads to a sequential fallback, never to wrong bytes.
  [[nodiscard]] bool epoch_index_ok() const noexcept { return epoch_ok_; }
  [[nodiscard]] const std::string& epoch_index_error() const noexcept {
    return epoch_error_;
  }

  /// The epoch index of one stream, or nullptr when the stream has none
  /// (absent/damaged section, or the stream's frames lacked metadata).
  [[nodiscard]] const StreamEpochIndex* find_epochs(
      const runtime::StreamKey& key) const;

  /// Result of a windowed stream read.
  struct WindowRead {
    std::vector<std::uint8_t> bytes;  ///< concatenated frame payloads
    std::uint64_t first_epoch = 0;    ///< epoch of the first returned frame
    bool seeked = false;  ///< epoch index served the window (O(window) I/O)
  };

  /// Payload bytes of epochs [epoch_lo, epoch_hi) of one stream, seeking
  /// via the epoch index. When the index cannot serve the stream, falls
  /// back to the whole stream (first_epoch = 0, seeked = false) and bumps
  /// store.container.epoch_fallbacks — the caller decodes sequentially
  /// from the start instead of getting wrong bytes. Same trust contract as
  /// read_stream: requires index_ok(), aborts on frame CRC mismatch.
  [[nodiscard]] WindowRead read_stream_window(const runtime::StreamKey& key,
                                              std::uint64_t epoch_lo,
                                              std::uint64_t epoch_hi) const;

  /// The same frames as read_stream, but one span per frame (aliasing the
  /// reader's buffer) instead of concatenated — the seam for formats that
  /// give each frame its own meaning (the corpus layer stores one chunk or
  /// one member manifest per frame). Same trust contract as read_stream:
  /// requires index_ok(), aborts on CRC mismatch.
  [[nodiscard]] std::vector<std::span<const std::uint8_t>> frame_payloads(
      const runtime::StreamKey& key) const;

  /// Full verification sweep: header, every frame (parse + CRC), index
  /// CRC, footer, and index/data cross-checks. Every byte of the file is
  /// covered by at least one check, so any single-byte corruption is
  /// reported, with the offending stream and frame identified when the
  /// index allows it.
  [[nodiscard]] VerifyReport verify() const;

  /// One intact frame, in file order (spans alias the reader's buffer).
  struct GoodFrame {
    std::uint64_t offset = 0;
    runtime::StreamKey key;
    std::uint64_t seq = 0;
    std::span<const std::uint8_t> payload;
  };

  /// Every frame that parses and CRC-checks, in file order — the salvage
  /// input for repack_container(). Uses the index to skip past damaged
  /// frames; without an index the scan stops at the first damage.
  [[nodiscard]] std::vector<GoodFrame> scan_good_frames() const;

  [[nodiscard]] std::uint64_t file_bytes() const noexcept {
    return bytes_.size();
  }
  /// First byte past the frame data region (= start of the index when the
  /// footer parsed). The crash-sweep truncates here to model a recorder
  /// that died after its last frame but before seal().
  [[nodiscard]] std::uint64_t data_end() const noexcept { return data_end_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  struct ParsedFrame {
    runtime::StreamKey key;
    std::uint64_t seq = 0;
    std::span<const std::uint8_t> payload;
    std::uint64_t frame_size = 0;  ///< bytes consumed including magic+crc
    bool crc_ok = false;
    bool parsed = false;       ///< header fields were decodable
    std::string parse_error;
  };

  ContainerReader() = default;
  void parse_footer_and_index();
  /// Parses and validates the optional epoch section ending at `index_at`;
  /// adjusts data_end_ either way (best effort on damage).
  void parse_epoch_section(std::size_t index_at);
  [[nodiscard]] ParsedFrame parse_frame_at(std::uint64_t offset,
                                           std::uint64_t limit) const;
  [[nodiscard]] std::vector<std::uint64_t> sorted_index_offsets() const;

  std::string path_;
  std::vector<std::uint8_t> bytes_;
  bool header_ok_ = false;
  std::string header_error_;
  bool index_ok_ = false;
  std::string index_error_;
  std::map<runtime::StreamKey, StreamIndexEntry> index_;
  bool epoch_present_ = false;
  bool epoch_ok_ = false;
  std::string epoch_error_;
  std::map<runtime::StreamKey, StreamEpochIndex> epochs_;
  std::uint64_t data_end_ = 0;  ///< first byte past the data region
};

/// Rewrites `in_path` as a fresh, compacted container at `out_path`,
/// keeping every intact frame (file order preserved, per-stream sequence
/// numbers renumbered densely) and dropping damaged ones. Rebuilds the
/// index from scratch, so it also repairs containers with a broken or
/// missing footer.
struct RepackResult {
  bool ok = false;  ///< input was readable and output sealed
  std::uint64_t frames_kept = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::string error;
};
RepackResult repack_container(const std::string& in_path,
                              const std::string& out_path);

}  // namespace cdc::store
