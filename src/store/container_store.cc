#include "store/container_store.h"

#include <cstdio>

#include "store/container_reader.h"
#include "support/check.h"

namespace cdc::store {

ContainerStore::ContainerStore(std::string path, std::size_t shard_count)
    : path_(std::move(path)),
      memory_(shard_count),
      writer_(std::make_unique<ContainerWriter>(path_)) {}

ContainerStore::ContainerStore(std::string path, std::size_t shard_count,
                               bool /*read_only*/)
    : path_(std::move(path)), memory_(shard_count) {}

std::unique_ptr<ContainerStore> ContainerStore::open(
    const std::string& path, std::size_t shard_count) {
  std::string error;
  auto reader = ContainerReader::open(path, &error);
  if (reader == nullptr)
    std::fprintf(stderr, "store: %s\n", error.c_str());
  CDC_CHECK_MSG(reader != nullptr, "cannot open record container");
  CDC_CHECK_MSG(reader->index_ok(),
                "container index corrupt — run verify/repack first");
  auto store = std::unique_ptr<ContainerStore>(
      new ContainerStore(path, shard_count, /*read_only=*/true));
  for (const runtime::StreamKey& key : reader->keys())
    store->memory_.append(key, reader->read_stream(key));
  // Keep the reader: windowed replay seeks through its epoch index.
  store->reader_ = std::move(reader);
  return store;
}

std::unique_ptr<ContainerStore> ContainerStore::resume(
    const std::string& path, std::uint64_t durable_bytes,
    std::span<const ResumeFrameMeta> metas, std::string* error,
    std::size_t shard_count) {
  auto writer = ContainerWriter::resume(path, durable_bytes, metas, error);
  if (writer == nullptr) return nullptr;
  auto store = std::unique_ptr<ContainerStore>(
      new ContainerStore(path, shard_count, /*read_only=*/true));
  store->writer_ = std::move(writer);
  // The file now holds exactly the durable prefix; a fresh scan yields the
  // surviving frames in file order, which is per-stream sequence order.
  auto reader = ContainerReader::open(path, error);
  if (reader == nullptr) return nullptr;
  for (const ContainerReader::GoodFrame& frame : reader->scan_good_frames())
    store->memory_.append(frame.key, frame.payload);
  return store;
}

void ContainerStore::append(const runtime::StreamKey& key,
                            std::span<const std::uint8_t> bytes) {
  CDC_CHECK_MSG(writer_ != nullptr,
                "append to a container store opened read-only");
  memory_.append(key, bytes);
  writer_->append_frame(key, bytes);
}

void ContainerStore::append_epoch(const runtime::StreamKey& key,
                                  std::span<const std::uint8_t> bytes,
                                  const runtime::EpochMeta& meta) {
  CDC_CHECK_MSG(writer_ != nullptr,
                "append to a container store opened read-only");
  memory_.append(key, bytes);
  writer_->append_frame(key, bytes, meta);
}

std::vector<std::uint8_t> ContainerStore::read(
    const runtime::StreamKey& key) const {
  return memory_.read(key);
}

std::vector<std::uint8_t> ContainerStore::read_prefix(
    const runtime::StreamKey& key, std::uint64_t epoch_hi) const {
  if (reader_ == nullptr) return read(key);
  return reader_->read_stream_window(key, 0, epoch_hi).bytes;
}

std::vector<runtime::StreamKey> ContainerStore::keys() const {
  return memory_.keys();
}

std::uint64_t ContainerStore::total_bytes() const {
  return memory_.total_bytes();
}

std::uint64_t ContainerStore::rank_bytes(minimpi::Rank rank) const {
  return memory_.rank_bytes(rank);
}

std::uint64_t ContainerStore::writer_file_bytes() const {
  return writer_ != nullptr ? writer_->stats().file_bytes : 0;
}

void ContainerStore::sync() {
  if (writer_ != nullptr) writer_->flush();
}

void ContainerStore::seal() {
  if (writer_ != nullptr) writer_->seal();
}

void ContainerStore::abandon() {
  CDC_CHECK_MSG(writer_ != nullptr,
                "abandon on a container store opened read-only");
  writer_->abandon();
}

SalvageResult salvage_container(const std::string& in_path,
                                const std::string& repacked_path,
                                std::size_t shard_count) {
  SalvageResult result;
  result.repack = repack_container(in_path, repacked_path);
  if (!result.repack.ok) return result;
  result.store = ContainerStore::open(repacked_path, shard_count);
  return result;
}

}  // namespace cdc::store
