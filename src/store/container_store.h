// RecordStore backed by a sharded in-memory cache plus a record container
// on disk — the "sharded container store" the recording runtime targets.
//
// Recording mode (constructor): every append lands in the lock-striped
// memory shards (serving read()/replay immediately, like MemoryStore) and
// is simultaneously persisted as one CRC-protected container frame.
// seal() finishes the container; after that the file is a self-contained,
// verifiable record of the run.
//
// Replay mode (open()): loads a sealed container back into the shards —
// CRC-checking every frame on the way in — and serves reads from memory.
// A store opened this way is read-only; appends are a caller bug.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "store/container_reader.h"
#include "store/container_writer.h"
#include "store/sharded_store.h"

namespace cdc::store {

class ContainerStore final : public runtime::RecordStore {
 public:
  /// Recording mode: creates (truncating) the container at `path`.
  explicit ContainerStore(std::string path,
                          std::size_t shard_count = ShardedStore::kDefaultShards);

  /// Replay mode: loads a sealed container, verifying frame CRCs. Aborts
  /// with a CDC_CHECK error on unreadable or corrupt input (use the
  /// verify/repack tooling for forensics on damaged containers).
  static std::unique_ptr<ContainerStore> open(
      const std::string& path,
      std::size_t shard_count = ShardedStore::kDefaultShards);

  /// Recording mode over an unsealed container left behind by a crash:
  /// validates + reopens the durable prefix via ContainerWriter::resume
  /// (truncating any torn tail) and reloads the surviving payloads into
  /// the memory shards, so reads, appends, and a later seal() behave as if
  /// the store had lived through a single life. Returns nullptr (and sets
  /// *error) when the prefix does not validate against `metas`.
  [[nodiscard]] static std::unique_ptr<ContainerStore> resume(
      const std::string& path, std::uint64_t durable_bytes,
      std::span<const ResumeFrameMeta> metas, std::string* error,
      std::size_t shard_count = ShardedStore::kDefaultShards);

  void append(const runtime::StreamKey& key,
              std::span<const std::uint8_t> bytes) override;
  /// append() plus the chunk's epoch metadata, persisted in the
  /// container's epoch index for windowed (random-access) replay.
  void append_epoch(const runtime::StreamKey& key,
                    std::span<const std::uint8_t> bytes,
                    const runtime::EpochMeta& meta) override;
  [[nodiscard]] std::vector<std::uint8_t> read(
      const runtime::StreamKey& key) const override;
  /// In replay mode with a healthy epoch index, serves epochs [0, epoch_hi)
  /// by seeking the container — O(window) bytes read and decoded instead of
  /// O(stream). Falls back to read() otherwise (recording mode, no index,
  /// or a damaged index — the `store.container.epoch_fallbacks` counter).
  [[nodiscard]] std::vector<std::uint8_t> read_prefix(
      const runtime::StreamKey& key, std::uint64_t epoch_hi) const override;
  [[nodiscard]] std::vector<runtime::StreamKey> keys() const override;
  [[nodiscard]] std::uint64_t total_bytes() const override;
  [[nodiscard]] std::uint64_t rank_bytes(minimpi::Rank rank) const override;

  /// Durability barrier: flushes the container file so frames appended so
  /// far survive a recorder crash (epoch checkpoints). No-op in replay
  /// mode or once sealed.
  void sync() override;

  /// Finishes the container (index + footer). Idempotent; recording mode
  /// only. The destructor seals too, so this is for callers that want to
  /// reopen the file while the store is still alive.
  void seal();

  /// Simulates a recorder crash: closes the container file WITHOUT an
  /// index/footer (ContainerWriter::abandon). The file then refuses
  /// open() — as a real half-written container would — until it has been
  /// salvaged via salvage_container(). Recording mode only; idempotent.
  void abandon();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Bytes written to the container file so far (header + whole frames;
  /// recording mode only — 0 in replay mode). After sync() this is the
  /// durable prefix length a resume journal records.
  [[nodiscard]] std::uint64_t writer_file_bytes() const;

  /// The underlying container reader — non-null only in replay mode. The
  /// seam for windowed replay: epoch index lookups and
  /// read_stream_window() seeks without re-opening the file.
  [[nodiscard]] const ContainerReader* reader() const noexcept {
    return reader_.get();
  }

 private:
  ContainerStore(std::string path, std::size_t shard_count, bool read_only);

  std::string path_;
  ShardedStore memory_;
  std::unique_ptr<ContainerWriter> writer_;  ///< null in replay mode
  std::unique_ptr<ContainerReader> reader_;  ///< null in recording mode
};

/// The crash-recovery path in one call: repack whatever intact frames the
/// (unsealed or damaged) container at `in_path` still holds into a fresh
/// sealed container at `repacked_path`, then open that for replay. `store`
/// is null when the input was unreadable or yielded no sealable output;
/// `repack` always carries the salvage statistics either way.
struct SalvageResult {
  RepackResult repack;
  std::unique_ptr<ContainerStore> store;
};
[[nodiscard]] SalvageResult salvage_container(
    const std::string& in_path, const std::string& repacked_path,
    std::size_t shard_count = ShardedStore::kDefaultShards);

}  // namespace cdc::store
