#include "store/container_writer.h"

#include <cstdio>
#include <filesystem>

#include "compress/crc32.h"
#include "store/container_reader.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/binary.h"
#include "support/check.h"

namespace cdc::store {

ContainerWriter::ContainerWriter(std::string path)
    : path_(std::move(path)),
      out_(path_, std::ios::binary | std::ios::trunc) {
  if (!out_.good())
    std::fprintf(stderr, "store: cannot create container '%s'\n",
                 path_.c_str());
  CDC_CHECK_MSG(out_.good(), "cannot create record container");
  support::ByteWriter header;
  for (const std::uint8_t byte : kContainerMagic) header.u8(byte);
  header.u8(kContainerVersion);
  for (int i = 0; i < 3; ++i) header.u8(0);
  out_.write(reinterpret_cast<const char*>(header.view().data()),
             static_cast<std::streamsize>(header.size()));
  CDC_CHECK_MSG(out_.good(), "container header write failed");
  offset_ = header.size();
}

ContainerWriter::~ContainerWriter() { seal(); }

std::unique_ptr<ContainerWriter> ContainerWriter::resume(
    const std::string& path, std::uint64_t durable_bytes,
    std::span<const ResumeFrameMeta> metas, std::string* error) {
  const auto fail = [&](std::string why) -> std::unique_ptr<ContainerWriter> {
    if (error != nullptr) *error = std::move(why);
    return nullptr;
  };
  const auto reader = ContainerReader::open(path, error);
  if (reader == nullptr) return nullptr;
  if (!reader->header_ok())
    return fail("resume: " + reader->header_error());
  constexpr std::uint64_t kHeaderBytes = sizeof(kContainerMagic) + 4;
  if (durable_bytes < kHeaderBytes || reader->file_bytes() < durable_bytes)
    return fail("resume: durable size beyond the file");

  auto writer = std::unique_ptr<ContainerWriter>(
      new ContainerWriter(ResumeTag{}, path));
  writer->offset_ = kHeaderBytes;
  std::size_t used = 0;
  for (const ContainerReader::GoodFrame& frame : reader->scan_good_frames()) {
    if (frame.offset >= durable_bytes) break;
    // The durable prefix must be gapless: every byte below durable_bytes
    // was flushed before it was journaled, so a hole means the journal and
    // the container disagree — refuse rather than resurrect wrong bytes.
    if (frame.offset != writer->offset_)
      return fail("resume: damaged frame inside the durable prefix");
    if (used >= metas.size())
      return fail("resume: more durable frames than journal entries");
    IndexEntry& entry = writer->index_[frame.key];
    if (frame.seq != entry.offsets.size())
      return fail("resume: per-stream sequence mismatch");
    const ResumeFrameMeta& meta = metas[used];
    // Mirror append_frame_locked's epoch bookkeeping exactly, so seal()
    // after a resume emits the same epoch index a single-life writer would.
    if (!meta.has_epoch) {
      entry.epochs_complete = false;
      entry.epochs.clear();
    } else if (entry.epochs_complete) {
      entry.epochs.push_back(EpochRecord{frame.offset, meta.epoch.matched,
                                         meta.epoch.unmatched});
    }
    support::ByteWriter head;
    head.svarint(frame.key.rank);
    head.varint(frame.key.callsite);
    head.varint(frame.seq);
    head.varint(frame.payload.size());
    const std::uint64_t frame_size = 1 + head.size() + frame.payload.size() + 4;
    entry.offsets.push_back(frame.offset);
    entry.payload_bytes += frame.payload.size();
    writer->offset_ += frame_size;
    ++writer->frames_;
    writer->payload_bytes_ += frame.payload.size();
    ++used;
  }
  if (writer->offset_ != durable_bytes)
    return fail("resume: durable size is not a frame boundary");
  if (used != metas.size())
    return fail("resume: journal entries beyond the durable prefix");

  // Drop the torn tail, then reopen for appends at the durable boundary.
  // std::ios::in keeps the open from truncating what we just validated.
  std::error_code ec;
  std::filesystem::resize_file(path, durable_bytes, ec);
  if (ec) return fail("resume: truncate failed: " + ec.message());
  writer->out_.open(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!writer->out_.good()) return fail("resume: cannot reopen container");
  writer->out_.seekp(static_cast<std::streamoff>(durable_bytes));
  if (!writer->out_.good()) return fail("resume: seek failed");
  obs::counter("store.container.resumes").add(1);
  return writer;
}

void ContainerWriter::append_frame(const runtime::StreamKey& key,
                                   std::span<const std::uint8_t> payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  append_frame_locked(key, payload, nullptr);
}

void ContainerWriter::append_frame(const runtime::StreamKey& key,
                                   std::span<const std::uint8_t> payload,
                                   const runtime::EpochMeta& meta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  append_frame_locked(key, payload, &meta);
}

void ContainerWriter::append_frame_locked(
    const runtime::StreamKey& key, std::span<const std::uint8_t> payload,
    const runtime::EpochMeta* meta) {
  CDC_CHECK_MSG(!sealed_, "append_frame on a sealed container");
  IndexEntry& entry = index_[key];
  if (meta == nullptr) {
    entry.epochs_complete = false;
    entry.epochs.clear();  // a partial epoch map is useless; drop it
  } else if (entry.epochs_complete) {
    entry.epochs.push_back(EpochRecord{offset_, meta->matched,
                                       meta->unmatched});
  }

  // Frame body: every field after the magic byte, covered by the CRC.
  support::ByteWriter body;
  body.svarint(key.rank);
  body.varint(key.callsite);
  body.varint(entry.offsets.size());  // per-stream sequence number
  body.varint(payload.size());
  body.bytes(payload);
  const std::uint32_t crc = compress::crc32(body.view());

  support::ByteWriter frame;
  frame.u8(kFrameMagic);
  frame.bytes(body.view());
  frame.u32(crc);
  out_.write(reinterpret_cast<const char*>(frame.view().data()),
             static_cast<std::streamsize>(frame.size()));
  CDC_CHECK_MSG(out_.good(), "container frame write failed");

  entry.offsets.push_back(offset_);
  entry.payload_bytes += payload.size();
  offset_ += frame.size();
  ++frames_;
  payload_bytes_ += payload.size();

  static obs::Counter& obs_frames = obs::counter("store.container.frames");
  static obs::Counter& obs_payload =
      obs::counter("store.container.payload_bytes");
  obs_frames.add(1);
  obs_payload.add(payload.size());
}

void ContainerWriter::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sealed_) return;
  out_.flush();
  CDC_CHECK_MSG(out_.good(), "container flush failed");
}

void ContainerWriter::seal() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sealed_) return;
  sealed_ = true;
  obs::TraceSpan seal_span("container.seal", -1, "frames", frames_);

  // Epoch index: only streams whose every frame carried metadata. Written
  // before the stream index so old readers — which locate the stream index
  // from the fixed footer alone — skip it without noticing.
  std::size_t epoch_streams = 0;
  for (const auto& [key, entry] : index_)
    if (entry.epochs_complete && !entry.epochs.empty()) ++epoch_streams;
  if (epoch_streams > 0) {
    support::ByteWriter epochs;
    epochs.varint(epoch_streams);
    for (const auto& [key, entry] : index_) {
      if (!entry.epochs_complete || entry.epochs.empty()) continue;
      epochs.svarint(key.rank);
      epochs.varint(key.callsite);
      epochs.varint(entry.epochs.size());
      std::uint64_t previous = 0;
      for (const EpochRecord& epoch : entry.epochs) {
        epochs.varint(epoch.frame_offset - previous);
        previous = epoch.frame_offset;
        epochs.varint(epoch.matched);
        epochs.varint(epoch.unmatched);
      }
    }
    support::ByteWriter epoch_footer;
    epoch_footer.u32(compress::crc32(epochs.view()));
    epoch_footer.u64(epochs.size());
    for (const std::uint8_t byte : kEpochFooterMagic) epoch_footer.u8(byte);
    out_.write(reinterpret_cast<const char*>(epochs.view().data()),
               static_cast<std::streamsize>(epochs.size()));
    out_.write(reinterpret_cast<const char*>(epoch_footer.view().data()),
               static_cast<std::streamsize>(epoch_footer.size()));
    CDC_CHECK_MSG(out_.good(), "container epoch index write failed");
    obs::counter("store.container.epoch_streams").add(epoch_streams);
  }

  support::ByteWriter index;
  index.varint(index_.size());
  for (const auto& [key, entry] : index_) {
    index.svarint(key.rank);
    index.varint(key.callsite);
    index.varint(entry.offsets.size());
    index.varint(entry.payload_bytes);
    // Offsets are strictly increasing; delta-encode them.
    std::uint64_t previous = 0;
    for (const std::uint64_t offset : entry.offsets) {
      index.varint(offset - previous);
      previous = offset;
    }
  }

  support::ByteWriter footer;
  footer.u32(compress::crc32(index.view()));
  footer.u64(index.size());
  for (const std::uint8_t byte : kFooterMagic) footer.u8(byte);

  out_.write(reinterpret_cast<const char*>(index.view().data()),
             static_cast<std::streamsize>(index.size()));
  out_.write(reinterpret_cast<const char*>(footer.view().data()),
             static_cast<std::streamsize>(footer.size()));
  out_.flush();
  CDC_CHECK_MSG(out_.good(), "container index/footer write failed");
  out_.close();
}

void ContainerWriter::abandon() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sealed_) return;
  sealed_ = true;  // also disarms the destructor's seal()
  out_.flush();
  out_.close();
}

ContainerWriter::Stats ContainerWriter::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return Stats{frames_, payload_bytes_, offset_};
}

}  // namespace cdc::store
