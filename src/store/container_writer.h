// Append side of the record container (see container.h for the layout).
//
// Thread-safe: concurrent appenders are serialized on one mutex — the file
// is a single append point anyway, and callers that need parallelism put a
// CompressionService in front (frames arrive here already encoded). The
// in-memory index grows as frames land; seal() writes it as the footer.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "store/container.h"

namespace cdc::store {

/// Per-frame epoch metadata needed to rebuild a writer's in-memory index
/// when resuming an unsealed container: the frame bytes on disk do not
/// carry matched/unmatched counts (those live only in the seal-time epoch
/// index), so a resume journal must persist them per appended frame.
struct ResumeFrameMeta {
  bool has_epoch = false;
  runtime::EpochMeta epoch;
};

class ContainerWriter {
 public:
  /// Creates (truncating) `path` and writes the container header. Aborts
  /// with a CDC_CHECK error if the file cannot be created.
  explicit ContainerWriter(std::string path);

  /// Reopens an unsealed container for further appends — the crash-recovery
  /// path. The first `durable_bytes` of the file must be an intact header
  /// plus whole frames (anything beyond is a torn tail and is truncated
  /// away); `metas` supplies the epoch metadata of those frames in append
  /// order, exactly as a journal recorded them. Returns nullptr (and sets
  /// *error) when the prefix does not validate — a failed resume leaves the
  /// file truncated only if validation already passed, so callers can still
  /// salvage. On success the writer's index, counters, and append offset
  /// are byte-for-byte what the original writer held after its last
  /// durable frame: continuing the append stream and sealing yields a
  /// container identical to one written in a single life.
  [[nodiscard]] static std::unique_ptr<ContainerWriter> resume(
      const std::string& path, std::uint64_t durable_bytes,
      std::span<const ResumeFrameMeta> metas, std::string* error);

  /// Seals the container if the caller has not already done so.
  ~ContainerWriter();

  ContainerWriter(const ContainerWriter&) = delete;
  ContainerWriter& operator=(const ContainerWriter&) = delete;

  /// Appends one CRC-protected frame carrying `payload` for `key`.
  void append_frame(const runtime::StreamKey& key,
                    std::span<const std::uint8_t> payload);

  /// append_frame plus the epoch metadata of the chunk the payload holds.
  /// seal() emits an epoch-index entry for a stream only when EVERY one of
  /// its frames carried metadata — a mixed stream has no usable epoch map,
  /// so it degrades to sequential decode rather than a wrong one.
  void append_frame(const runtime::StreamKey& key,
                    std::span<const std::uint8_t> payload,
                    const runtime::EpochMeta& meta);

  /// Durability barrier: pushes every appended frame down to the OS so a
  /// crash of the recorder after this call loses no frame appended before
  /// it (the epoch-checkpoint primitive). No-op once sealed.
  void flush();

  /// Writes the index and footer and closes the file. Idempotent; no
  /// frames may be appended afterwards.
  void seal();

  /// Closes the file WITHOUT writing the index/footer — the on-disk state
  /// a crashed recorder leaves behind (frames up to the crash, no index).
  /// Idempotent; seal() afterwards is a no-op. The result fails
  /// ContainerStore::open() by design and must go through the
  /// verify/repack salvage path.
  void abandon();

  struct Stats {
    std::uint64_t frames = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t file_bytes = 0;  ///< total container size so far
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  struct IndexEntry {
    std::vector<std::uint64_t> offsets;
    std::uint64_t payload_bytes = 0;
    std::vector<EpochRecord> epochs;  ///< one per frame, when complete
    bool epochs_complete = true;      ///< every frame carried EpochMeta
  };

  struct ResumeTag {};
  /// Shell for resume(): records the path, opens nothing.
  ContainerWriter(ResumeTag, std::string path) : path_(std::move(path)) {}

  void append_frame_locked(const runtime::StreamKey& key,
                           std::span<const std::uint8_t> payload,
                           const runtime::EpochMeta* meta);

  std::string path_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t offset_ = 0;  ///< next frame's file offset
  std::map<runtime::StreamKey, IndexEntry> index_;
  std::uint64_t frames_ = 0;
  std::uint64_t payload_bytes_ = 0;
  bool sealed_ = false;
};

}  // namespace cdc::store
