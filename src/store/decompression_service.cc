#include "store/decompression_service.h"

#include "obs/metrics.h"
#include "support/check.h"

namespace cdc::store {

DecompressionService::DecompressionService()
    : DecompressionService(Config{}) {}

DecompressionService::DecompressionService(const Config& config)
    : queue_(config.queue_capacity), pool_(config.pool_buffers) {
  CDC_CHECK_MSG(config.workers >= 1,
                "decompression service needs at least one worker");
  workers_.reserve(config.workers);
  for (std::size_t i = 0; i < config.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

DecompressionService::~DecompressionService() {
  queue_.close();
  workers_.clear();  // joins
}

void DecompressionService::submit(const runtime::StreamKey& key,
                                  Decoder decode, Consumer consume) {
  static obs::Counter& obs_jobs = obs::counter("store.decode.jobs");
  static obs::Counter& obs_stalls =
      obs::counter("store.decode.submit_stalls");
  static obs::Histogram& obs_depth =
      obs::histogram("store.decode.queue_depth");
  const std::lock_guard<std::mutex> lock(submit_mutex_);
  if (obs::enabled()) {
    if (queue_.size() >= queue_.capacity()) obs_stalls.add(1);
  }
  Job job;
  job.key = key;
  job.decode = std::move(decode);
  job.consume = std::move(consume);
  job.ticket = next_ticket_;
  const bool pushed = queue_.push(std::move(job));
  CDC_CHECK_MSG(pushed, "submit after the decompression service stopped");
  ++next_ticket_;
  obs_jobs.add(1);
  if (obs::enabled()) obs_depth.record(queue_.size());
}

void DecompressionService::worker_loop() {
  static obs::Histogram& obs_decode_ns =
      obs::histogram("store.decode.decode_ns");
  static obs::Histogram& obs_wait_ns =
      obs::histogram("store.decode.commit_wait_ns");
  static obs::Counter& obs_decoded =
      obs::counter("store.decode.decoded_bytes");
  Job job;
  std::vector<std::uint8_t> buf;
  while (queue_.pop(job)) {
    pool_.acquire(buf);
    const obs::Stopwatch sw;
    std::vector<std::uint8_t> decoded = job.decode(std::move(buf));
    obs_decode_ns.record(sw.ns());

    const obs::Stopwatch wait_sw;
    {
      std::unique_lock<std::mutex> lock(commit_mutex_);
      commit_cv_.wait(lock, [&] { return next_commit_ == job.ticket; });
      obs_wait_ns.record(wait_sw.ns());
      decoded_bytes_ += decoded.size();
      obs_decoded.add(decoded.size());
      job.consume(job.key, decoded);
      ++next_commit_;
      commit_cv_.notify_all();
    }
    // The consumer copied what it keeps; the capacity goes back to the
    // pool, so steady-state decode is allocation-free.
    pool_.release(std::move(decoded));
    buf.clear();
  }
}

void DecompressionService::drain() {
  std::uint64_t submitted = 0;
  {
    const std::lock_guard<std::mutex> lock(submit_mutex_);
    submitted = next_ticket_;
  }
  std::unique_lock<std::mutex> lock(commit_mutex_);
  commit_cv_.wait(lock, [&] { return next_commit_ >= submitted; });
}

DecompressionService::Stats DecompressionService::stats() const {
  Stats stats;
  {
    const std::lock_guard<std::mutex> lock(commit_mutex_);
    stats.jobs = next_commit_;
    stats.decoded_bytes = decoded_bytes_;
  }
  stats.workers = workers_.size();
  stats.pool = pool_.stats();
  return stats;
}

}  // namespace cdc::store
