// Parallel frame-decode service — the replay-side twin of
// CompressionService.
//
// Replay and inspection decode one DEFLATE stream per (rank, callsite)
// record stream; the streams are independent, so the decode work fans out
// over a worker pool exactly like encoding does. The same ticketed
// two-phase commit delivers results *in submission order* to a consumer
// callback, so a caller that submits stream windows in a deterministic
// order observes a deterministic result order regardless of which worker
// finished first — the property the windowed-replay oracle relies on.
//
// Jobs are opaque decode closures for the same reason the encode service's
// are: the tool layer hands it read_frame/chunk-parse thunks, the benches
// hand it raw inflate calls, and the service stays codec-agnostic.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "runtime/storage.h"
#include "store/mpmc_queue.h"
#include "support/buffer_pool.h"

namespace cdc::store {

class DecompressionService {
 public:
  /// Produces the decoded bytes for one job. Runs on a worker thread; must
  /// be self-contained (owns its input). `reuse` donates recycled capacity
  /// (contents discarded) from the service's buffer pool.
  using Decoder =
      std::function<std::vector<std::uint8_t>(std::vector<std::uint8_t>)>;

  /// Receives one job's decoded bytes, in submission order, on whichever
  /// worker thread committed the job. Consumers for different jobs never
  /// run concurrently (the ticket gate admits one at a time), so a
  /// consumer may touch shared state without its own lock. The span is
  /// valid only for the duration of the call — the service recycles the
  /// buffer's capacity afterwards (copy what must outlive it).
  using Consumer = std::function<void(const runtime::StreamKey& key,
                                      std::span<const std::uint8_t> decoded)>;

  struct Config {
    std::size_t workers = 2;
    std::size_t queue_capacity = 128;  ///< back-pressure bound, in jobs
    std::size_t pool_buffers = 16;     ///< output buffers retained for reuse
  };

  DecompressionService();
  explicit DecompressionService(const Config& config);

  /// Drains outstanding jobs and stops the workers.
  ~DecompressionService();

  DecompressionService(const DecompressionService&) = delete;
  DecompressionService& operator=(const DecompressionService&) = delete;

  /// Enqueues one decode job. Blocks when `queue_capacity` jobs are
  /// already outstanding.
  void submit(const runtime::StreamKey& key, Decoder decode,
              Consumer consume);

  /// Blocks until every job submitted so far has been consumed. Safe to
  /// call repeatedly and to keep submitting afterwards.
  void drain();

  struct Stats {
    std::uint64_t jobs = 0;
    std::uint64_t decoded_bytes = 0;  ///< bytes handed to consumers
    std::size_t workers = 0;
    support::BufferPool::Stats pool;  ///< output-buffer recycling
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Job {
    std::uint64_t ticket = 0;
    runtime::StreamKey key;
    Decoder decode;
    Consumer consume;
  };

  void worker_loop();

  BoundedMpmcQueue<Job> queue_;
  support::BufferPool pool_;

  // Same two-mutex discipline as CompressionService: submit_mutex_ makes
  // ticket order equal queue order; workers decode out of order and the
  // commit gate admits consumers strictly by ticket.
  mutable std::mutex submit_mutex_;
  std::uint64_t next_ticket_ = 0;

  mutable std::mutex commit_mutex_;
  std::condition_variable commit_cv_;
  std::uint64_t next_commit_ = 0;
  std::uint64_t decoded_bytes_ = 0;

  std::vector<std::jthread> workers_;
};

}  // namespace cdc::store
