// Bounded multi-producer/multi-consumer job queue.
//
// The runtime's SpscQueue carries fine-grained receive events between
// exactly two threads and must be lock-free; this queue carries coarse
// compression jobs (whole sealed chunks, thousands of events each) between
// many submitters and a worker pool, so a mutex + condvar design is the
// right trade: microseconds of lock cost against milliseconds of DEFLATE
// per job, with real blocking (no spin) on both full and empty, and
// close() semantics for orderly worker shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "support/check.h"

namespace cdc::store {

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity) : capacity_(capacity) {
    CDC_CHECK_MSG(capacity >= 1, "queue capacity must be positive");
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Blocks while the queue is full (bounded back-pressure, like the
  /// paper's recording ring). Returns false if the queue was closed —
  /// including when close() lands while the push is blocked waiting for
  /// space; the value is dropped, never half-enqueued.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when the queue is full *or* closed, without
  /// waiting. The event-loop seam — a poll-driven producer that must never
  /// block uses try_push and treats false-on-full as back-pressure
  /// (suspend the source, retry later) and false-on-closed as shutdown.
  /// Takes the value by rvalue reference so a rejected item is left
  /// intact in the caller's hands (parked for retry); it is moved from
  /// only on success.
  bool try_push(T&& value) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns false once the queue is
  /// closed AND drained — the worker-pool termination signal.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Closes the queue. The contract consumers and adversarial
  /// disconnect paths rely on (tested in mpmc_queue_test.cc):
  ///   * every push()/try_push() after close() is rejected (returns
  ///     false) — nothing enqueues into a closed queue, so a producer
  ///     racing a disconnect cannot resurrect a torn-down session;
  ///   * the backlog stays poppable: pop() keeps returning true until the
  ///     items enqueued before close() are drained (close is a seal, not
  ///     a discard);
  ///   * each popper blocked at close() time wakes exactly once — it
  ///     either wins a backlog item (true) or observes closed-and-empty
  ///     (false) and must not re-wait; a popper arriving after the drain
  ///     returns false immediately.
  /// Idempotent.
  void close() {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cdc::store
