// Bounded multi-producer/multi-consumer job queue.
//
// The runtime's SpscQueue carries fine-grained receive events between
// exactly two threads and must be lock-free; this queue carries coarse
// compression jobs (whole sealed chunks, thousands of events each) between
// many submitters and a worker pool, so a mutex + condvar design is the
// right trade: microseconds of lock cost against milliseconds of DEFLATE
// per job, with real blocking (no spin) on both full and empty, and
// close() semantics for orderly worker shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "support/check.h"

namespace cdc::store {

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity) : capacity_(capacity) {
    CDC_CHECK_MSG(capacity >= 1, "queue capacity must be positive");
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Blocks while the queue is full (bounded back-pressure, like the
  /// paper's recording ring). Returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns false once the queue is
  /// closed AND drained — the worker-pool termination signal.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// After close(), push() fails and pop() drains the backlog then fails.
  void close() {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cdc::store
