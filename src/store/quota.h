// Byte-quota enforcement at the RecordStore seam.
//
// The service layer (src/net/) sells bounded storage per tenant; the
// enforcement point is a decorator in front of whatever store a tenant's
// session writes into, so the quota holds identically for the inline,
// async-compression, and retrying sink stacks — they all terminate in a
// RecordStore. A quota trip throws QuotaExceeded (a distinct type, not
// IoError: retrying a quota breach is never correct) *before* committing
// the append, leaving the underlying container consistent and sealable.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "runtime/storage.h"

namespace cdc::store {

/// Thrown by QuotaStore::append when the budget would be exceeded. The
/// failed append committed nothing; the store below remains consistent.
class QuotaExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// RecordStore decorator charging every appended byte against a fixed
/// budget. Accounting is on the *raw frame bytes appended* (what actually
/// lands in the container), checked-and-charged atomically so concurrent
/// appenders (CompressionService workers) cannot jointly overshoot.
class QuotaStore final : public runtime::RecordStore {
 public:
  QuotaStore(runtime::RecordStore* inner, std::uint64_t max_bytes)
      : inner_(inner), max_bytes_(max_bytes) {}

  void append(const runtime::StreamKey& key,
              std::span<const std::uint8_t> bytes) override {
    charge(bytes.size());
    inner_->append(key, bytes);
  }

  void append_epoch(const runtime::StreamKey& key,
                    std::span<const std::uint8_t> bytes,
                    const runtime::EpochMeta& meta) override {
    charge(bytes.size());
    inner_->append_epoch(key, bytes, meta);
  }

  [[nodiscard]] std::vector<std::uint8_t> read(
      const runtime::StreamKey& key) const override {
    return inner_->read(key);
  }
  [[nodiscard]] std::vector<runtime::StreamKey> keys() const override {
    return inner_->keys();
  }
  [[nodiscard]] std::uint64_t total_bytes() const override {
    return inner_->total_bytes();
  }
  [[nodiscard]] std::uint64_t rank_bytes(minimpi::Rank rank) const override {
    return inner_->rank_bytes(rank);
  }
  [[nodiscard]] std::vector<std::uint8_t> read_prefix(
      const runtime::StreamKey& key, std::uint64_t epoch_hi) const override {
    return inner_->read_prefix(key, epoch_hi);
  }
  void sync() override { inner_->sync(); }

  [[nodiscard]] std::uint64_t used_bytes() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_bytes() const noexcept { return max_bytes_; }

 private:
  void charge(std::uint64_t n) {
    std::uint64_t used = used_.load(std::memory_order_relaxed);
    while (true) {
      if (used + n > max_bytes_)
        throw QuotaExceeded("quota exceeded: " + std::to_string(used + n) +
                            " > " + std::to_string(max_bytes_) + " bytes");
      if (used_.compare_exchange_weak(used, used + n,
                                      std::memory_order_relaxed))
        return;
    }
  }

  runtime::RecordStore* inner_;
  const std::uint64_t max_bytes_;
  std::atomic<std::uint64_t> used_{0};
};

}  // namespace cdc::store
