#include "store/resilient.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "compress/crc32.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/binary.h"
#include "support/check.h"

namespace cdc::store {

namespace {

// `.cdcq` sidecar format: 8-byte magic, then one entry per quarantined
// frame. Mirrors the container frame layout (store/container.h) with its
// own magic byte so the two can never be confused:
//   0xF8 | svarint rank | varint callsite | varint seq | varint len
//        | payload | u32 crc32(everything after the magic byte)
// `seq` is the stream position the frame was lost at (see
// QuarantinedFrame::seq) — the hole the container cannot represent.
constexpr char kQuarantineMagic[8] = {'C', 'D', 'C', 'Q', 'U', 'A', 'R', '1'};
constexpr std::uint8_t kQuarantineFrameMagic = 0xF8;

std::vector<std::uint8_t> encode_quarantine_entry(
    const runtime::StreamKey& key, std::uint64_t seq,
    std::span<const std::uint8_t> bytes) {
  support::ByteWriter body;
  body.svarint(key.rank);
  body.varint(key.callsite);
  body.varint(seq);
  body.varint(bytes.size());
  body.bytes(bytes);
  support::ByteWriter entry;
  entry.u8(kQuarantineFrameMagic);
  entry.bytes(body.view());
  entry.u32(compress::crc32(body.view()));
  return std::move(entry).take();
}

}  // namespace

// --- IoFaultStore ----------------------------------------------------------

IoFaultStore::IoFaultStore(runtime::RecordStore* inner,
                           const IoFaultPlan& plan)
    : inner_(inner),
      plan_(plan),
      rng_(plan.seed ^ 0x10fa17u) {
  CDC_CHECK(inner_ != nullptr);
}

void IoFaultStore::append(const runtime::StreamKey& key,
                          std::span<const std::uint8_t> bytes) {
  append_impl(key, bytes, nullptr);
}

void IoFaultStore::append_epoch(const runtime::StreamKey& key,
                                std::span<const std::uint8_t> bytes,
                                const runtime::EpochMeta& meta) {
  append_impl(key, bytes, &meta);
}

void IoFaultStore::append_impl(const runtime::StreamKey& key,
                               std::span<const std::uint8_t> bytes,
                               const runtime::EpochMeta* meta) {
  // One commit point either flavour, so the fault/retry bookkeeping — and
  // the determinism contract — cannot diverge between the two entry paths.
  const auto commit = [&] {
    if (meta != nullptr)
      inner_->append_epoch(key, bytes, *meta);
    else
      inner_->append(key, bytes);
  };
  std::lock_guard<std::mutex> lock(mutex_);
  const Fingerprint fp{key, bytes.size(), compress::crc32(bytes)};
  if (auto it = pending_.find(fp); it != pending_.end()) {
    // A retry of the operation we faulted.
    if (it->second.hard) {
      ++stats_.hard_throws;
      throw runtime::IoError("injected hard I/O error (retry)");
    }
    if (it->second.remaining_throws > 0) {
      --it->second.remaining_throws;
      ++stats_.transient_throws;
      throw runtime::IoError("injected transient EIO (retry)");
    }
    pending_.erase(it);
    commit();
    return;
  }

  ++stats_.appends;
  bool hard = plan_.hard_every_n > 0 && stats_.appends % plan_.hard_every_n == 0;
  bool fault = hard;
  if (!fault && plan_.eio_every_n > 0 &&
      stats_.appends % plan_.eio_every_n == 0)
    fault = true;
  if (!fault && plan_.eio_probability > 0.0 &&
      rng_.uniform() < plan_.eio_probability)
    fault = true;
  if (!fault) {
    commit();
    return;
  }

  const std::uint32_t failures = std::max(1u, plan_.failures_per_fault);
  pending_.emplace(fp, PendingFault{hard ? 0 : failures - 1, hard});
  if (hard)
    ++stats_.hard_throws;
  else
    ++stats_.transient_throws;
  if (plan_.short_write_probability > 0.0 &&
      rng_.uniform() < plan_.short_write_probability) {
    ++stats_.short_writes;
    const std::uint64_t wrote = rng_.bounded(bytes.size());
    // Rollback contract: the short prefix is NOT committed — the store
    // presents as all-or-nothing, as the container writer requires.
    throw runtime::IoError("injected short write: wrote " +
                           std::to_string(wrote) + " of " +
                           std::to_string(bytes.size()) + " bytes");
  }
  throw runtime::IoError(hard ? "injected hard I/O error"
                              : "injected transient EIO");
}

std::vector<std::uint8_t> IoFaultStore::read(
    const runtime::StreamKey& key) const {
  return inner_->read(key);
}

std::vector<runtime::StreamKey> IoFaultStore::keys() const {
  return inner_->keys();
}

std::uint64_t IoFaultStore::total_bytes() const {
  return inner_->total_bytes();
}

std::uint64_t IoFaultStore::rank_bytes(minimpi::Rank rank) const {
  return inner_->rank_bytes(rank);
}

void IoFaultStore::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sync_faulted_) {
    sync_faulted_ = false;  // the retry succeeds
    inner_->sync();
    return;
  }
  if (plan_.fsync_failure_every_n > 0 &&
      ++syncs_ % plan_.fsync_failure_every_n == 0) {
    sync_faulted_ = true;
    ++stats_.fsync_failures;
    throw runtime::IoError("injected fsync failure");
  }
  inner_->sync();
}

// --- RetryingStore ---------------------------------------------------------

RetryingStore::RetryingStore(runtime::RecordStore* inner,
                             const RetryPolicy& policy,
                             std::string quarantine_path)
    : inner_(inner),
      policy_(policy),
      quarantine_path_(std::move(quarantine_path)),
      jitter_(policy.jitter_seed ^ 0xbac0ffull) {
  CDC_CHECK(inner_ != nullptr);
}

void RetryingStore::backoff(std::uint32_t i) {
  double ms = policy_.initial_backoff_ms;
  for (std::uint32_t k = 0; k < i; ++k) ms *= policy_.backoff_multiplier;
  ms = std::min(ms, policy_.max_backoff_ms);
  const double jitter =
      1.0 + policy_.jitter_fraction * (2.0 * jitter_.uniform() - 1.0);
  ms *= jitter;
  stats_.backoff_ms_total += ms;
  static obs::Histogram& obs_backoff = obs::histogram("store.retry.backoff_us");
  obs_backoff.record(static_cast<std::uint64_t>(ms * 1000.0));
  if (policy_.really_sleep)
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void RetryingStore::append(const runtime::StreamKey& key,
                           std::span<const std::uint8_t> bytes) {
  append_impl(key, bytes, nullptr);
}

void RetryingStore::append_epoch(const runtime::StreamKey& key,
                                 std::span<const std::uint8_t> bytes,
                                 const runtime::EpochMeta& meta) {
  append_impl(key, bytes, &meta);
}

void RetryingStore::append_impl(const runtime::StreamKey& key,
                                std::span<const std::uint8_t> bytes,
                                const runtime::EpochMeta* meta) {
  std::lock_guard<std::mutex> lock(mutex_);
  static obs::Counter& obs_retries = obs::counter("store.retry.retries");
  static obs::Counter& obs_recoveries = obs::counter("store.retry.recoveries");
  for (std::uint32_t attempt = 0; attempt <= policy_.max_retries; ++attempt) {
    ++stats_.attempts;
    try {
      if (meta != nullptr)
        inner_->append_epoch(key, bytes, *meta);
      else
        inner_->append(key, bytes);
      ++appended_[key];
      if (attempt > 0) {
        ++stats_.recoveries;
        obs_recoveries.add(1);
      }
      return;
    } catch (const runtime::IoError&) {
      if (attempt == policy_.max_retries) break;  // exhausted
      ++stats_.retries;
      obs_retries.add(1);
      backoff(attempt);
    }
  }
  quarantine(key, bytes);
}

void RetryingStore::quarantine(const runtime::StreamKey& key,
                               std::span<const std::uint8_t> bytes) {
  const std::uint64_t seq = appended_[key];
  ++stats_.quarantined;
  obs::counter("store.quarantine.frames").add(1);
  obs::counter("store.quarantine.bytes").add(bytes.size());
  obs::trace_instant("store.quarantine", key.rank);
  std::fprintf(stderr,
               "cdc store: quarantining frame (rank %d callsite %u, %zu "
               "bytes) after %u failed attempts\n",
               key.rank, key.callsite, bytes.size(),
               policy_.max_retries + 1);
  if (!quarantine_path_.empty()) {
    // First quarantined frame creates the sidecar (header + entry);
    // later ones append. Flushed immediately: the sidecar must survive a
    // subsequent crash of the writer.
    std::ofstream out(quarantine_path_,
                      quarantine_.empty()
                          ? std::ios::binary | std::ios::trunc
                          : std::ios::binary | std::ios::app);
    if (out) {
      if (quarantine_.empty())
        out.write(kQuarantineMagic, sizeof kQuarantineMagic);
      const std::vector<std::uint8_t> entry =
          encode_quarantine_entry(key, seq, bytes);
      out.write(reinterpret_cast<const char*>(entry.data()),
                static_cast<std::streamsize>(entry.size()));
      out.flush();
    } else {
      std::fprintf(stderr,
                   "cdc store: cannot write quarantine sidecar %s "
                   "(keeping frame in memory only)\n",
                   quarantine_path_.c_str());
    }
  }
  quarantine_.push_back(
      QuarantinedFrame{key, seq, {bytes.begin(), bytes.end()}});
}

std::vector<std::uint8_t> RetryingStore::read(
    const runtime::StreamKey& key) const {
  return inner_->read(key);
}

std::vector<runtime::StreamKey> RetryingStore::keys() const {
  return inner_->keys();
}

std::uint64_t RetryingStore::total_bytes() const {
  return inner_->total_bytes();
}

std::uint64_t RetryingStore::rank_bytes(minimpi::Rank rank) const {
  return inner_->rank_bytes(rank);
}

void RetryingStore::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint32_t attempt = 0; attempt <= policy_.max_retries; ++attempt) {
    try {
      inner_->sync();
      return;
    } catch (const runtime::IoError&) {
      if (attempt == policy_.max_retries) break;
      ++stats_.retries;
      backoff(attempt);
    }
  }
  // A durability barrier that never succeeded: the data is still in the
  // store (appends were acknowledged) — record the weakened guarantee and
  // carry on rather than killing the run.
  ++stats_.sync_failures;
  obs::counter("store.retry.sync_failures").add(1);
  std::fprintf(stderr, "cdc store: sync() exhausted retries (continuing)\n");
}

std::vector<QuarantinedFrame> read_quarantine(const std::string& path) {
  std::vector<QuarantinedFrame> frames;
  std::ifstream in(path, std::ios::binary);
  if (!in) return frames;
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (bytes.size() < sizeof kQuarantineMagic ||
      std::memcmp(bytes.data(), kQuarantineMagic,
                  sizeof kQuarantineMagic) != 0)
    return frames;
  support::ByteReader reader(
      std::span<const std::uint8_t>(bytes).subspan(sizeof kQuarantineMagic));
  while (!reader.exhausted()) {
    const std::size_t body_start = reader.position() + 1;
    std::uint8_t magic = 0;
    if (!reader.try_u8(magic) || magic != kQuarantineFrameMagic) break;
    std::int64_t rank = 0;
    std::uint64_t callsite = 0;
    std::uint64_t seq = 0;
    std::span<const std::uint8_t> payload;
    if (!reader.try_svarint(rank) || !reader.try_varint(callsite) ||
        !reader.try_varint(seq) || !reader.try_sized_bytes(payload))
      break;
    const std::size_t body_end = reader.position();
    std::uint32_t stored_crc = 0;
    if (!reader.try_u32(stored_crc)) break;
    const auto body = std::span<const std::uint8_t>(bytes).subspan(
        sizeof kQuarantineMagic + body_start,
        body_end - body_start);
    if (compress::crc32(body) != stored_crc) break;
    QuarantinedFrame frame;
    frame.key.rank = static_cast<minimpi::Rank>(rank);
    frame.key.callsite = static_cast<minimpi::CallsiteId>(callsite);
    frame.seq = seq;
    frame.bytes.assign(payload.begin(), payload.end());
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace cdc::store
