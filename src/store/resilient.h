// Storage-fault survival: injected transient I/O errors, bounded-backoff
// retries, and frame quarantine.
//
// The paper's recorder writes per-process record data to node-local
// storage for the whole (hours-long) run — exactly the window in which
// disks return EIO, writes come up short, and fsync fails. The seed stack
// failed closed there: any store error aborted the recorder and the whole
// record was lost. This layer makes recording survive:
//
//   IoFaultStore   — seeded fault-injecting RecordStore decorator (the
//                    storage analogue of minimpi's FaultPlan): EIO every
//                    Nth append / with probability p, short writes, fsync
//                    failures. Transient faults fail a configurable number
//                    of consecutive attempts of the *same* operation and
//                    then succeed; hard faults never succeed. Faults are
//                    thrown as runtime::IoError with nothing committed, so
//                    a retry of the identical call is always safe.
//   RetryingStore  — decorator that catches runtime::IoError and retries
//                    with bounded exponential backoff + seeded jitter.
//                    An append that exhausts its retries is *quarantined*
//                    (kept in memory and, when a path is configured,
//                    appended to a `.cdcq` sidecar file) instead of
//                    aborting: the stream loses one frame, the run — and
//                    every other frame — survives, and degraded-mode
//                    replay (tool/degraded.h) reports the gap.
//
// Determinism: with the same plan, seed, and append sequence, the same
// operations fault, the same retries happen, and the surviving record is
// bit-identical to a fault-free one whenever no fault is hard — the
// property the retry-path tests pin down.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "runtime/storage.h"
#include "support/rng.h"

namespace cdc::store {

/// Seeded I/O-fault schedule for IoFaultStore. Counter-based knobs fire on
/// operation ordinals (deterministic regardless of seed); probability knobs
/// draw from the dedicated RNG. A default-constructed plan injects nothing
/// and draws nothing.
struct IoFaultPlan {
  std::uint64_t seed = 0;
  /// Every Nth distinct append throws a transient EIO (0 = off).
  std::uint32_t eio_every_n = 0;
  /// Additionally, each distinct append throws with this probability.
  double eio_probability = 0.0;
  /// Every Nth distinct append fails *permanently* — retries never succeed
  /// and the frame ends up quarantined (0 = off).
  std::uint32_t hard_every_n = 0;
  /// Consecutive attempts (including the first) a transient fault fails
  /// before the operation succeeds. 1 = first retry succeeds.
  std::uint32_t failures_per_fault = 1;
  /// A faulted append presents as a short write with this probability
  /// (diagnostic flavour only — either way nothing is committed).
  double short_write_probability = 0.0;
  /// Every Nth sync() throws once; the immediate retry succeeds (0 = off).
  std::uint32_t fsync_failure_every_n = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return eio_every_n > 0 || eio_probability > 0.0 || hard_every_n > 0 ||
           fsync_failure_every_n > 0;
  }
};

struct IoFaultStats {
  std::uint64_t appends = 0;          ///< distinct append operations seen
  std::uint64_t transient_throws = 0; ///< IoError throws that a retry can clear
  std::uint64_t hard_throws = 0;      ///< IoError throws that never clear
  std::uint64_t short_writes = 0;
  std::uint64_t fsync_failures = 0;
};

/// Fault-injecting RecordStore decorator. Thread-safe. Recognises retries
/// of a faulted operation by fingerprint (key, length, CRC-32), so the
/// "fail k consecutive attempts then succeed" contract holds even though
/// the store is stateless from the caller's point of view.
class IoFaultStore final : public runtime::RecordStore {
 public:
  IoFaultStore(runtime::RecordStore* inner, const IoFaultPlan& plan);

  void append(const runtime::StreamKey& key,
              std::span<const std::uint8_t> bytes) override;
  void append_epoch(const runtime::StreamKey& key,
                    std::span<const std::uint8_t> bytes,
                    const runtime::EpochMeta& meta) override;
  [[nodiscard]] std::vector<std::uint8_t> read(
      const runtime::StreamKey& key) const override;
  [[nodiscard]] std::vector<runtime::StreamKey> keys() const override;
  [[nodiscard]] std::uint64_t total_bytes() const override;
  [[nodiscard]] std::uint64_t rank_bytes(minimpi::Rank rank) const override;
  void sync() override;

  [[nodiscard]] const IoFaultStats& stats() const noexcept { return stats_; }

 private:
  void append_impl(const runtime::StreamKey& key,
                   std::span<const std::uint8_t> bytes,
                   const runtime::EpochMeta* meta);

  struct Fingerprint {
    runtime::StreamKey key;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
    friend auto operator<=>(const Fingerprint&, const Fingerprint&) = default;
  };
  struct PendingFault {
    std::uint32_t remaining_throws = 0;  ///< after the initial one
    bool hard = false;
  };

  runtime::RecordStore* inner_;
  IoFaultPlan plan_;
  support::Xoshiro256 rng_;
  IoFaultStats stats_;
  std::map<Fingerprint, PendingFault> pending_;
  std::uint64_t syncs_ = 0;
  bool sync_faulted_ = false;
  mutable std::mutex mutex_;
};

/// Retry/backoff policy for RetryingStore. Backoff for retry i (0-based)
/// is min(max_backoff_ms, initial_backoff_ms * multiplier^i), scaled by a
/// seeded uniform jitter in [1 - jitter_fraction, 1 + jitter_fraction].
/// By default backoff is *accounted* (RetryStats::backoff_ms_total) but
/// not actually slept — virtual-time tests stay instant; set really_sleep
/// for wall-clock behaviour.
struct RetryPolicy {
  std::uint32_t max_retries = 5;  ///< attempts = 1 + max_retries
  double initial_backoff_ms = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 50.0;
  double jitter_fraction = 0.25;
  std::uint64_t jitter_seed = 1;
  bool really_sleep = false;

  /// Upper bound on total backoff charged to one operation — what the
  /// bounded-backoff test asserts against.
  [[nodiscard]] double max_total_backoff_ms() const noexcept {
    return static_cast<double>(max_retries) * max_backoff_ms *
           (1.0 + jitter_fraction);
  }
};

struct RetryStats {
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t recoveries = 0;   ///< appends that succeeded after >=1 retry
  std::uint64_t quarantined = 0;  ///< appends that exhausted every retry
  std::uint64_t sync_failures = 0;  ///< sync() calls that exhausted retries
  double backoff_ms_total = 0.0;
};

/// One append that exhausted its retries, preserved verbatim. `seq` is the
/// number of appends that had succeeded on this stream when the frame was
/// lost — i.e. the position the frame should have occupied. The store
/// packs later frames densely, so this is the only record of where the
/// hole is; degraded-mode replay truncates the stream's replayable prefix
/// there (tool::inspect_gaps).
struct QuarantinedFrame {
  runtime::StreamKey key;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> bytes;
};

/// Never-aborting RecordStore decorator: retries runtime::IoError with
/// bounded exponential backoff; exhausted appends are quarantined instead
/// of thrown. The wrapped record therefore always completes — possibly
/// with gaps, which degraded-mode replay reconciles.
class RetryingStore final : public runtime::RecordStore {
 public:
  /// `quarantine_path`: when non-empty, quarantined frames are also
  /// appended (and flushed) to this `.cdcq` sidecar as they happen.
  RetryingStore(runtime::RecordStore* inner, const RetryPolicy& policy = {},
                std::string quarantine_path = {});

  void append(const runtime::StreamKey& key,
              std::span<const std::uint8_t> bytes) override;
  void append_epoch(const runtime::StreamKey& key,
                    std::span<const std::uint8_t> bytes,
                    const runtime::EpochMeta& meta) override;
  [[nodiscard]] std::vector<std::uint8_t> read(
      const runtime::StreamKey& key) const override;
  [[nodiscard]] std::vector<runtime::StreamKey> keys() const override;
  [[nodiscard]] std::uint64_t total_bytes() const override;
  [[nodiscard]] std::uint64_t rank_bytes(minimpi::Rank rank) const override;
  void sync() override;

  [[nodiscard]] const RetryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<QuarantinedFrame>& quarantined()
      const noexcept {
    return quarantine_;
  }

 private:
  void append_impl(const runtime::StreamKey& key,
                   std::span<const std::uint8_t> bytes,
                   const runtime::EpochMeta* meta);
  void quarantine(const runtime::StreamKey& key,
                  std::span<const std::uint8_t> bytes);
  /// Charges (and optionally sleeps) the backoff for 0-based retry `i`.
  void backoff(std::uint32_t i);

  runtime::RecordStore* inner_;
  RetryPolicy policy_;
  std::string quarantine_path_;
  support::Xoshiro256 jitter_;
  RetryStats stats_;
  std::vector<QuarantinedFrame> quarantine_;
  /// Successful appends per stream — positions quarantined frames.
  std::map<runtime::StreamKey, std::uint64_t> appended_;
  mutable std::mutex mutex_;
};

/// `.cdcq` sidecar parser: returns every intact quarantined frame, in
/// order, stopping at the first corrupt or truncated entry. A missing
/// file yields an empty vector.
[[nodiscard]] std::vector<QuarantinedFrame> read_quarantine(
    const std::string& path);

}  // namespace cdc::store
