#include "store/session_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>

#include "compress/crc32.h"
#include "obs/metrics.h"
#include "support/binary.h"

namespace cdc::store {

namespace {

constexpr std::uint8_t kJournalMagic[8] = {'C', 'D', 'C', 'J',
                                           'R', 'N', 'L', '1'};
constexpr std::uint8_t kJournalVersion = 1;

/// Serializes one block: varint length, payload, CRC-32 of the payload.
std::vector<std::uint8_t> wrap_block(const support::ByteWriter& payload) {
  support::ByteWriter out;
  out.varint(payload.size());
  out.bytes(payload.view());
  out.u32(compress::crc32(payload.view()));
  return std::move(out).take();
}

/// Pulls the next block's payload off `in`; false on truncation or a CRC
/// mismatch (both mean "stop here, the prefix before this block stands").
bool next_block(support::ByteReader& in, std::span<const std::uint8_t>& out) {
  std::uint64_t len = 0;
  if (!in.try_varint(len) || len > (1ull << 30)) return false;
  if (!in.try_bytes(static_cast<std::size_t>(len), out)) return false;
  std::uint32_t crc = 0;
  if (!in.try_u32(crc)) return false;
  return compress::crc32(out) == crc;
}

bool write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::optional<JournalState> read_session_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(kJournalMagic)) return std::nullopt;
  for (std::size_t i = 0; i < sizeof(kJournalMagic); ++i)
    if (bytes[i] != kJournalMagic[i]) return std::nullopt;

  support::ByteReader reader(
      std::span<const std::uint8_t>(bytes).subspan(sizeof(kJournalMagic)));
  std::span<const std::uint8_t> block;
  if (!next_block(reader, block)) return std::nullopt;

  JournalState state;
  {
    support::ByteReader header(block);
    std::uint8_t version = 0;
    std::span<const std::uint8_t> tenant;
    std::span<const std::uint8_t> record;
    if (!header.try_u8(version) || version != kJournalVersion ||
        !header.try_sized_bytes(tenant) || !header.try_sized_bytes(record) ||
        !header.try_u8(state.level) || !header.exhausted())
      return std::nullopt;
    state.tenant.assign(reinterpret_cast<const char*>(tenant.data()),
                        tenant.size());
    state.record.assign(reinterpret_cast<const char*>(record.data()),
                        record.size());
  }

  // Batch entries: keep consuming until the first invalid block; everything
  // before it is the durable truth. Sequence numbers must advance, and a
  // snapshot's totals must never shrink — a violation means the tail was
  // scribbled on, so the prefix before it is all we trust.
  while (true) {
    if (!next_block(reader, block)) break;
    support::ByteReader entry(block);
    std::uint64_t seq = 0;
    std::uint64_t frames_total = 0;
    std::uint64_t raw_bytes_total = 0;
    std::uint64_t container_bytes = 0;
    std::uint64_t frames_in_batch = 0;
    if (!entry.try_varint(seq) || !entry.try_varint(frames_total) ||
        !entry.try_varint(raw_bytes_total) ||
        !entry.try_varint(container_bytes) ||
        !entry.try_varint(frames_in_batch))
      break;
    if (seq <= state.last_seq || frames_total < state.frames_total ||
        raw_bytes_total < state.raw_bytes_total ||
        container_bytes < state.container_bytes)
      break;
    if (frames_total - state.frames_total != frames_in_batch) break;
    std::vector<ResumeFrameMeta> metas;
    metas.reserve(static_cast<std::size_t>(frames_in_batch));
    bool ok = true;
    for (std::uint64_t i = 0; i < frames_in_batch; ++i) {
      ResumeFrameMeta meta;
      std::uint8_t has_epoch = 0;
      if (!entry.try_u8(has_epoch) || has_epoch > 1) {
        ok = false;
        break;
      }
      meta.has_epoch = has_epoch != 0;
      if (meta.has_epoch && (!entry.try_varint(meta.epoch.matched) ||
                             !entry.try_varint(meta.epoch.unmatched))) {
        ok = false;
        break;
      }
      metas.push_back(meta);
    }
    if (!ok || !entry.exhausted()) break;
    state.last_seq = seq;
    state.frames_total = frames_total;
    state.raw_bytes_total = raw_bytes_total;
    state.container_bytes = container_bytes;
    state.metas.insert(state.metas.end(), metas.begin(), metas.end());
    ++state.entries;
  }
  return state;
}

std::unique_ptr<SessionJournal> SessionJournal::create(
    const std::string& path, const std::string& tenant,
    const std::string& record, std::uint8_t level) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return nullptr;
  support::ByteWriter header;
  header.u8(kJournalVersion);
  header.sized_bytes({reinterpret_cast<const std::uint8_t*>(tenant.data()),
                      tenant.size()});
  header.sized_bytes({reinterpret_cast<const std::uint8_t*>(record.data()),
                      record.size()});
  header.u8(level);
  std::vector<std::uint8_t> bytes(kJournalMagic,
                                  kJournalMagic + sizeof(kJournalMagic));
  const std::vector<std::uint8_t> block = wrap_block(header);
  bytes.insert(bytes.end(), block.begin(), block.end());
  if (!write_all(fd, bytes) || ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    return nullptr;
  }
  obs::counter("store.journal.created").add(1);
  return std::unique_ptr<SessionJournal>(new SessionJournal(path, fd));
}

std::unique_ptr<SessionJournal> SessionJournal::open_append(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return nullptr;
  return std::unique_ptr<SessionJournal>(new SessionJournal(path, fd));
}

SessionJournal::~SessionJournal() {
  if (fd_ >= 0) ::close(fd_);
}

bool SessionJournal::append_batch(std::uint64_t seq,
                                  std::span<const ResumeFrameMeta> frames,
                                  std::uint64_t frames_total,
                                  std::uint64_t raw_bytes_total,
                                  std::uint64_t container_bytes) {
  support::ByteWriter entry;
  entry.varint(seq);
  entry.varint(frames_total);
  entry.varint(raw_bytes_total);
  entry.varint(container_bytes);
  entry.varint(frames.size());
  for (const ResumeFrameMeta& meta : frames) {
    entry.u8(meta.has_epoch ? 1 : 0);
    if (meta.has_epoch) {
      entry.varint(meta.epoch.matched);
      entry.varint(meta.epoch.unmatched);
    }
  }
  const std::vector<std::uint8_t> block = wrap_block(entry);
  if (!write_all(fd_, block) || ::fsync(fd_) != 0) return false;
  obs::counter("store.journal.entries").add(1);
  return true;
}

}  // namespace cdc::store
