// Crash-durable sidecar journal for a resumable ingest session.
//
// Lives next to the container it describes (`<record>.cdcc.cdcj`) and
// records, per acknowledged batch, the durable high-water mark of the
// session: the batch sequence number, the session's frame/raw-byte totals,
// the container's byte length at that point, and the per-frame epoch
// metadata that exists only in the writer's memory (frame bytes on disk
// carry no matched/unmatched counts — see ResumeFrameMeta). The server
// appends one entry after the container bytes of a batch are flushed and
// BEFORE the PUT_ACK goes out, so after any crash the journal's last valid
// entry never promises more than the container actually holds.
//
// Layout: 8-byte magic "CDCJRNL1", then length-prefixed CRC'd blocks:
//
//   varint block_len | block bytes | u32 crc32(block)
//
// Block 0 is the header (u8 version | sized tenant | sized record |
// u8 level); every later block is a batch entry (varint seq |
// varint frames_total | varint raw_bytes_total | varint container_bytes |
// varint frames_in_batch | per frame: u8 has_epoch [varint matched,
// varint unmatched]). The reader takes the longest valid prefix: a torn
// final block — the normal result of dying mid-append — just drops that
// batch back below the durability line. Writes go through a POSIX fd so
// fsync() is a real barrier, not an ofstream flush.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "store/container_writer.h"

namespace cdc::store {

/// Everything a crashed session's journal can prove about its progress.
struct JournalState {
  std::string tenant;
  std::string record;
  std::uint8_t level = 0;
  std::uint64_t last_seq = 0;          ///< highest durable batch seq (0 = none)
  std::uint64_t frames_total = 0;      ///< session frame count at last_seq
  std::uint64_t raw_bytes_total = 0;   ///< session raw payload bytes at last_seq
  std::uint64_t container_bytes = 0;   ///< container length at last_seq
  std::uint64_t entries = 0;           ///< valid batch entries parsed
  /// Epoch metadata of every durable frame, in container append order —
  /// the `metas` input of ContainerWriter::resume.
  std::vector<ResumeFrameMeta> metas;
};

/// Parses the longest valid prefix of the journal at `path`. Returns
/// nullopt when the file is missing, the magic is wrong, or the header
/// block does not validate — a journal with a good header and zero valid
/// entries is a real (empty-progress) state, not a failure.
[[nodiscard]] std::optional<JournalState> read_session_journal(
    const std::string& path);

/// Append side. One instance per live resumable session; every
/// append_batch() is write-then-fsync, so a true return means the entry
/// survives power loss.
class SessionJournal {
 public:
  /// Creates (truncating) the journal and fsyncs the header block.
  [[nodiscard]] static std::unique_ptr<SessionJournal> create(
      const std::string& path, const std::string& tenant,
      const std::string& record, std::uint8_t level);

  /// Reopens an existing journal for further appends (after the caller
  /// validated it via read_session_journal). Nullptr when the file cannot
  /// be opened.
  [[nodiscard]] static std::unique_ptr<SessionJournal> open_append(
      const std::string& path);

  ~SessionJournal();
  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;

  /// Journals one durably-flushed batch; false on write/fsync failure.
  [[nodiscard]] bool append_batch(std::uint64_t seq,
                                  std::span<const ResumeFrameMeta> frames,
                                  std::uint64_t frames_total,
                                  std::uint64_t raw_bytes_total,
                                  std::uint64_t container_bytes);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  SessionJournal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
};

/// The sidecar path for a container: `<container path>.cdcj`.
[[nodiscard]] inline std::string session_journal_path(
    const std::string& container_path) {
  return container_path + ".cdcj";
}

}  // namespace cdc::store
