#include "store/sharded_store.h"

#include <algorithm>

#include "support/check.h"

namespace cdc::store {

ShardedStore::ShardedStore(std::size_t shard_count) {
  CDC_CHECK_MSG(shard_count >= 1, "ShardedStore needs at least one shard");
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

void ShardedStore::append(const runtime::StreamKey& key,
                          std::span<const std::uint8_t> bytes) {
  Shard& shard = *shards_[shard_of(key)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  auto& stream = shard.streams[key];
  stream.insert(stream.end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> ShardedStore::read(
    const runtime::StreamKey& key) const {
  const Shard& shard = *shards_[shard_of(key)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.streams.find(key);
  return it != shard.streams.end() ? it->second
                                   : std::vector<std::uint8_t>{};
}

std::vector<runtime::StreamKey> ShardedStore::keys() const {
  // Collect per shard, then merge: RecordStore consumers (the replayer,
  // the inspectors) expect deterministic key order regardless of shard
  // layout.
  std::vector<runtime::StreamKey> out;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, stream] : shard->streams) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t ShardedStore::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, stream] : shard->streams)
      total += stream.size();
  }
  return total;
}

std::uint64_t ShardedStore::rank_bytes(minimpi::Rank rank) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, stream] : shard->streams)
      if (key.rank == rank) total += stream.size();
  }
  return total;
}

}  // namespace cdc::store
