// Lock-striped in-memory record store.
//
// MemoryStore serializes every recorder on one global mutex; at a few
// dozen concurrent stream recorders that mutex is the storage bottleneck
// the paper's node-local design avoids. ShardedStore hashes each
// (rank, callsite) stream key onto one of N independent shards, so
// recorders for different streams almost never contend — the same
// lock-striping the eventual multi-node sharding will apply across
// machines (ROADMAP: sharding/batching/async).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/storage.h"

namespace cdc::store {

/// Stable 64-bit mix of a stream key (splitmix64 finalizer) — also the
/// hash the container repacker and future cross-node placement use, so a
/// stream lands on the same shard everywhere.
[[nodiscard]] constexpr std::uint64_t stream_hash(
    const runtime::StreamKey& key) noexcept {
  std::uint64_t h =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.rank))
       << 32) ^
      key.callsite;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

class ShardedStore final : public runtime::RecordStore {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  explicit ShardedStore(std::size_t shard_count = kDefaultShards);

  void append(const runtime::StreamKey& key,
              std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] std::vector<std::uint8_t> read(
      const runtime::StreamKey& key) const override;
  [[nodiscard]] std::vector<runtime::StreamKey> keys() const override;
  [[nodiscard]] std::uint64_t total_bytes() const override;
  [[nodiscard]] std::uint64_t rank_bytes(minimpi::Rank rank) const override;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_of(
      const runtime::StreamKey& key) const noexcept {
    return static_cast<std::size_t>(stream_hash(key) % shards_.size());
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::map<runtime::StreamKey, std::vector<std::uint8_t>> streams;
  };

  // unique_ptr because Shard owns a mutex and is neither movable nor
  // copyable, which vector<Shard> would require.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cdc::store
