// Byte-level binary serialization: growable byte sink with LEB128 varints,
// zigzag signed mapping, and fixed-width little-endian primitives.
//
// Every record format in the library (the traditional baseline format, the
// CDC chunk format, storage framing) is written and parsed through these
// two classes so that sizes are accounted identically everywhere.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "support/check.h"

namespace cdc::support {

/// Maps a signed integer onto an unsigned one so that values near zero
/// (of either sign) become small varints: 0,-1,1,-2,2 → 0,1,2,3,4.
constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Growable little-endian byte writer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Adopts `buf` (cleared, capacity kept) as the output buffer — the
  /// allocation-reuse seam for pooled frame encoding.
  explicit ByteWriter(std::vector<std::uint8_t> buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  /// Unsigned LEB128.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Zigzag-mapped signed LEB128.
  void svarint(std::int64_t v) { varint(zigzag_encode(v)); }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed byte string.
  void sized_bytes(std::span<const std::uint8_t> data) {
    varint(data.size());
    bytes(data);
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  void clear() noexcept { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian byte reader over a non-owning view.
/// Format errors (truncation, overlong varints) trip CDC_CHECK via the
/// `ok()`-returning try_* API or the aborting plain API; parsers that must
/// survive corrupt input use try_*.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

  [[nodiscard]] bool try_u8(std::uint8_t& out) noexcept {
    if (remaining() < 1) return false;
    out = data_[pos_++];
    return true;
  }

  [[nodiscard]] bool try_u32(std::uint32_t& out) noexcept {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i)
      out |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return true;
  }

  [[nodiscard]] bool try_u64(std::uint64_t& out) noexcept {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i)
      out |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return true;
  }

  [[nodiscard]] bool try_varint(std::uint64_t& out) noexcept {
    out = 0;
    int shift = 0;
    while (pos_ < data_.size() && shift < 64) {
      const std::uint8_t byte = data_[pos_++];
      out |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return true;
      shift += 7;
    }
    return false;
  }

  [[nodiscard]] bool try_svarint(std::int64_t& out) noexcept {
    std::uint64_t raw = 0;
    if (!try_varint(raw)) return false;
    out = zigzag_decode(raw);
    return true;
  }

  [[nodiscard]] bool try_bytes(std::size_t n,
                               std::span<const std::uint8_t>& out) noexcept {
    if (remaining() < n) return false;
    out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] bool try_sized_bytes(
      std::span<const std::uint8_t>& out) noexcept {
    std::uint64_t n = 0;
    if (!try_varint(n) || n > remaining()) return false;
    return try_bytes(static_cast<std::size_t>(n), out);
  }

  // Aborting variants for trusted in-process round-trips.
  std::uint8_t u8() {
    std::uint8_t v{};
    CDC_CHECK_MSG(try_u8(v), "truncated u8");
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v{};
    CDC_CHECK_MSG(try_u32(v), "truncated u32");
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v{};
    CDC_CHECK_MSG(try_u64(v), "truncated u64");
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::uint64_t varint() {
    std::uint64_t v{};
    CDC_CHECK_MSG(try_varint(v), "truncated varint");
    return v;
  }
  std::int64_t svarint() {
    std::int64_t v{};
    CDC_CHECK_MSG(try_svarint(v), "truncated svarint");
    return v;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace cdc::support
