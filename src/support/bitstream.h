// LSB-first bit streams as used by DEFLATE (RFC 1951 §3.1.1): bits are
// packed into bytes starting from the least-significant bit; Huffman codes
// are written most-significant-code-bit first via write_huffman.
//
// The writer keeps up to 64 pending bits in a register and flushes whole
// bytes in batches (put_bits), so the encoder's hot loop pays one branch
// per symbol instead of one per output byte. The reader exposes
// peek/consume so table-driven Huffman decoders can look at the next N
// bits without committing to a length.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/check.h"

namespace cdc::support {

class BitWriter {
 public:
  BitWriter() = default;

  /// Adopts `buf` (cleared, capacity kept) as the output buffer — the
  /// allocation-reuse seam for pooled/thread-local codec workspaces.
  explicit BitWriter(std::vector<std::uint8_t> buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  /// Writes the low `count` bits of `bits`, LSB first. count <= 32.
  void write(std::uint32_t bits, int count) {
    CDC_DCHECK(count >= 0 && count <= 32);
    put_bits(bits & mask(count), count);
  }

  /// Fast path: `bits` must already fit in `count` bits (no masking).
  /// count <= 57. Flushes pending whole bytes at most once per call.
  void put_bits(std::uint64_t bits, int count) {
    CDC_DCHECK(count >= 0 && count <= 57);
    CDC_DCHECK(count == 57 || (bits >> count) == 0);
    if (used_ + count > 64) flush_whole_bytes();
    acc_ |= bits << used_;
    used_ += count;
  }

  /// Writes a Huffman code: code bits are emitted from the MSB of the
  /// `length`-bit code first, matching DEFLATE's convention. Encoders on
  /// the hot path should pre-reverse codes once and use put_bits instead.
  void write_huffman(std::uint32_t code, int length) {
    std::uint32_t reversed = 0;
    for (int i = 0; i < length; ++i)
      reversed |= ((code >> i) & 1u) << (length - 1 - i);
    put_bits(reversed, length);
  }

  /// Pads to a byte boundary with zero bits.
  void align_to_byte() {
    flush_whole_bytes();
    if (used_ > 0) {
      buf_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      used_ = 0;
    }
  }

  [[nodiscard]] std::size_t bit_count() const noexcept {
    return buf_.size() * 8 + static_cast<std::size_t>(used_);
  }

  /// Flushes any partial byte and returns the buffer.
  std::vector<std::uint8_t> finish() && {
    align_to_byte();
    return std::move(buf_);
  }

  void append_byte(std::uint8_t b) {
    CDC_DCHECK(used_ == 0);
    buf_.push_back(b);
  }

  /// Bulk byte append (stored blocks); only legal on a byte boundary.
  void append_bytes(std::span<const std::uint8_t> bytes) {
    CDC_DCHECK(used_ == 0);
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

 private:
  void flush_whole_bytes() {
    while (used_ >= 8) {
      buf_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      used_ -= 8;
    }
  }

  static constexpr std::uint32_t mask(int count) noexcept {
    return count == 32 ? ~0u : (1u << count) - 1u;
  }

  std::vector<std::uint8_t> buf_;
  std::uint64_t acc_ = 0;
  int used_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  /// Reads `count` bits LSB-first. Returns false on underrun.
  [[nodiscard]] bool try_read(int count, std::uint32_t& out) noexcept {
    if (!try_peek(count, out)) return false;
    consume(count);
    return true;
  }

  /// Reads a single bit; false on underrun.
  [[nodiscard]] bool try_read_bit(std::uint32_t& out) noexcept {
    return try_read(1, out);
  }

  /// Peeks the next `count` bits without consuming them; false when fewer
  /// than `count` bits remain in the stream. count <= 32.
  [[nodiscard]] bool try_peek(int count, std::uint32_t& out) noexcept {
    while (used_ < count) {
      if (pos_ >= data_.size()) return false;
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << used_;
      used_ += 8;
    }
    out = static_cast<std::uint32_t>(acc_) & mask(count);
    return true;
  }

  /// Peeks up to `count` bits, zero-padded past end of stream; returns
  /// how many real bits `out` holds (may be < count near the end).
  [[nodiscard]] int peek_padded(int count, std::uint32_t& out) noexcept {
    while (used_ < count && pos_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << used_;
      used_ += 8;
    }
    out = static_cast<std::uint32_t>(acc_) & mask(count);
    return used_ < count ? used_ : count;
  }

  /// Discards `count` previously peeked bits.
  void consume(int count) noexcept {
    CDC_DCHECK(count <= used_);
    acc_ >>= count;
    used_ -= count;
  }

  /// Discards bits up to the next byte boundary.
  void align_to_byte() noexcept {
    const int drop = used_ % 8;
    acc_ >>= drop;
    used_ -= drop;
  }

  /// Reads `n` whole bytes after alignment; false on underrun.
  [[nodiscard]] bool try_read_aligned_bytes(
      std::size_t n, std::span<const std::uint8_t>& out) noexcept {
    align_to_byte();
    // Whole bytes still buffered in acc_ are given back to data_ so that
    // the subspan below covers them.
    const std::size_t buffered = static_cast<std::size_t>(used_) / 8;
    CDC_DCHECK(pos_ >= buffered);
    pos_ -= buffered;
    acc_ = 0;
    used_ = 0;
    if (data_.size() - pos_ < n) return false;
    out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  static constexpr std::uint32_t mask(int count) noexcept {
    return count == 32 ? ~0u : (1u << count) - 1u;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int used_ = 0;
};

}  // namespace cdc::support
