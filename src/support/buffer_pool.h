// A small freelist of byte buffers so hot paths (compression-service
// workers, frame sinks) recycle vector capacity instead of reallocating
// per chunk. Thread-safe; the mutex guards a pointer swap and is never
// held across user work. Stats are plain counters the owning layer can
// mirror into obs metrics (support stays free of the obs dependency).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace cdc::support {

class BufferPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;            ///< acquires served from the pool
    std::uint64_t misses = 0;          ///< acquires that started fresh
    std::uint64_t recycled_bytes = 0;  ///< capacity handed back out on hits
    std::uint64_t dropped = 0;         ///< releases refused (pool full)
  };

  /// `max_buffers` bounds retained capacity; extra releases are dropped.
  explicit BufferPool(std::size_t max_buffers = 16)
      : max_buffers_(max_buffers) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pops a recycled buffer into `out` (cleared, capacity kept). Returns
  /// true on a pool hit; on a miss `out` is left empty.
  bool acquire(std::vector<std::uint8_t>& out) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        out = std::move(free_.back());
        free_.pop_back();
        hits_.fetch_add(1, std::memory_order_relaxed);
        recycled_bytes_.fetch_add(out.capacity(),
                                  std::memory_order_relaxed);
        return true;
      }
    }
    out.clear();
    out.shrink_to_fit();
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Returns a buffer's capacity to the pool (contents discarded).
  void release(std::vector<std::uint8_t> buf) {
    buf.clear();
    const std::lock_guard<std::mutex> lock(mutex_);
    if (free_.size() < max_buffers_) {
      free_.push_back(std::move(buf));
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] Stats stats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.recycled_bytes = recycled_bytes_.load(std::memory_order_relaxed);
    s.dropped = dropped_.load(std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] std::size_t idle_buffers() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

 private:
  const std::size_t max_buffers_;
  mutable std::mutex mutex_;
  std::vector<std::vector<std::uint8_t>> free_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> recycled_bytes_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace cdc::support
