// Checked assertions used across the library.
//
// CDC_CHECK is active in all build types (the codecs guard format
// invariants with it); CDC_DCHECK compiles out in NDEBUG builds and is
// reserved for hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cdc::support {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CDC_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace cdc::support

#define CDC_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) ::cdc::support::check_failed(#expr, __FILE__, __LINE__, \
                                              "");                       \
  } while (false)

#define CDC_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) ::cdc::support::check_failed(#expr, __FILE__, __LINE__, \
                                              (msg));                    \
  } while (false)

#ifdef NDEBUG
#define CDC_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define CDC_DCHECK(expr) CDC_CHECK(expr)
#endif
