#include "support/oracle.h"

#include <cstdio>
#include <mutex>

#include "compress/crc32.h"

namespace cdc::support {

namespace {

std::string format_event(const ObservedEvent& e) {
  char buf[128];
  if (!e.matched) return "{unmatched-test}";
  std::snprintf(buf, sizeof buf,
                "{src=%d tag=%d clock=%llu payload=%lluB crc=%08x}",
                e.source, e.tag,
                static_cast<unsigned long long>(e.piggyback),
                static_cast<unsigned long long>(e.payload_size),
                e.payload_crc);
  return buf;
}

std::string format_key(const runtime::StreamKey& key) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "(rank=%d, callsite=%u)", key.rank,
                key.callsite);
  return buf;
}

constexpr std::size_t kMaxMismatches = 8;

void add_mismatch(OracleReport& report, std::string text) {
  report.ok = false;
  if (report.mismatches.size() < kMaxMismatches)
    report.mismatches.push_back(std::move(text));
}

/// Compares `limit` leading events of one stream; ~0 means the full stream
/// (and then lengths must agree too).
void compare_stream(OracleReport& report, const runtime::StreamKey& key,
                    const StreamTrace& recorded, const StreamTrace& replayed,
                    std::uint64_t limit) {
  const bool full = limit == ~std::uint64_t{0};
  const std::uint64_t want = full ? recorded.size() : limit;
  if (want > recorded.size()) {
    add_mismatch(report, format_key(key) + ": claimed prefix " +
                             std::to_string(want) + " exceeds recorded " +
                             std::to_string(recorded.size()) + " events");
    return;
  }
  if (replayed.size() < want || (full && replayed.size() != want)) {
    add_mismatch(report, format_key(key) + ": recorded " +
                             std::to_string(want) + " events, replayed " +
                             std::to_string(replayed.size()));
    return;
  }
  for (std::uint64_t i = 0; i < want; ++i) {
    ++report.events_compared;
    if (recorded[i] == replayed[i]) continue;
    add_mismatch(report, format_key(key) + " event " + std::to_string(i) +
                             ": recorded " + format_event(recorded[i]) +
                             " != replayed " + format_event(replayed[i]));
    return;  // one diagnosis per stream; later events usually cascade
  }
}

OracleReport compare_traces(
    const Trace& recorded, const Trace& replayed,
    const std::map<runtime::StreamKey, std::uint64_t>* prefix_lengths) {
  OracleReport report;
  for (const auto& [key, rec_stream] : recorded) {
    ++report.streams_compared;
    std::uint64_t limit = ~std::uint64_t{0};
    if (prefix_lengths != nullptr) {
      const auto it = prefix_lengths->find(key);
      limit = it == prefix_lengths->end() ? 0 : it->second;
    }
    static const StreamTrace kEmpty;
    const auto rep_it = replayed.find(key);
    // A missing replay stream is fine iff nothing is required of it: the
    // probe only creates a stream entry once an event lands there.
    const StreamTrace& rep_stream =
        rep_it == replayed.end() ? kEmpty : rep_it->second;
    compare_stream(report, key, rec_stream, rep_stream, limit);
  }
  if (prefix_lengths == nullptr) {
    for (const auto& [key, rep_stream] : replayed) {
      if (!recorded.contains(key) && !rep_stream.empty())
        add_mismatch(report, format_key(key) + ": replay surfaced " +
                                 std::to_string(rep_stream.size()) +
                                 " events on a stream never recorded");
    }
  }
  return report;
}

}  // namespace

// --- OrderProbe ------------------------------------------------------------

std::uint64_t OrderProbe::on_send(minimpi::Rank sender) {
  return inner_ != nullptr ? inner_->on_send(sender)
                           : ToolHooks::on_send(sender);
}

minimpi::SelectResult OrderProbe::select(
    minimpi::Rank rank, minimpi::CallsiteId callsite, minimpi::MFKind kind,
    std::span<const minimpi::Candidate> candidates,
    std::size_t total_requests, bool blocking) {
  return inner_ != nullptr
             ? inner_->select(rank, callsite, kind, candidates,
                              total_requests, blocking)
             : ToolHooks::select(rank, callsite, kind, candidates,
                                 total_requests, blocking);
}

void OrderProbe::on_unmatched_test(minimpi::Rank rank,
                                   minimpi::CallsiteId callsite) {
  ObservedEvent event;
  event.matched = false;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    trace_[runtime::StreamKey{rank, callsite}].push_back(event);
  }
  if (inner_ != nullptr) inner_->on_unmatched_test(rank, callsite);
}

void OrderProbe::on_deliver(minimpi::Rank rank, minimpi::CallsiteId callsite,
                            minimpi::MFKind kind,
                            std::span<const minimpi::Completion> events) {
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    auto& stream = trace_[runtime::StreamKey{rank, callsite}];
    for (const minimpi::Completion& c : events) {
      ObservedEvent event;
      event.matched = true;
      event.source = c.source;
      event.tag = c.tag;
      event.piggyback = c.piggyback;
      event.payload_crc = compress::crc32(c.payload);
      event.payload_size = c.payload.size();
      stream.push_back(event);
    }
  }
  if (inner_ != nullptr) inner_->on_deliver(rank, callsite, kind, events);
}

void OrderProbe::on_deadlock() {
  if (inner_ != nullptr) inner_->on_deadlock();
}

bool OrderProbe::on_stall() {
  // Semantics-affecting: forwarded verbatim so probing a replayer does not
  // change when (or whether) it releases partial-record gating.
  return inner_ != nullptr && inner_->on_stall();
}

void OrderProbe::on_fault(minimpi::FaultKind kind, minimpi::Rank rank) {
  fault_counts_[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
  if (inner_ != nullptr) inner_->on_fault(kind, rank);
}

void OrderProbe::on_parallel_start(int workers) {
  // Forwarded so a probed Recorder still enters staged-flush mode.
  if (inner_ != nullptr) inner_->on_parallel_start(workers);
}

void OrderProbe::on_window(double horizon) {
  if (inner_ != nullptr) inner_->on_window(horizon);
}

std::uint64_t OrderProbe::total_events() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [key, stream] : trace_) total += stream.size();
  return total;
}

// --- Oracle checks ---------------------------------------------------------

std::string OracleReport::summary() const {
  std::string out = ok ? "oracle OK: " : "oracle FAILED: ";
  out += std::to_string(streams_compared) + " streams, " +
         std::to_string(events_compared) + " events compared";
  for (const std::string& m : mismatches) out += "\n  " + m;
  return out;
}

OracleReport check_equivalence(const Trace& recorded, const Trace& replayed) {
  return compare_traces(recorded, replayed, nullptr);
}

OracleReport check_prefix(
    const Trace& recorded, const Trace& replayed,
    const std::map<runtime::StreamKey, std::uint64_t>& prefix_lengths) {
  return compare_traces(recorded, replayed, &prefix_lengths);
}

}  // namespace cdc::support
