// Replay-equivalence oracle (the checker behind the schedule fuzzer).
//
// The paper's correctness claim (Theorem 2) is that replay surfaces, per
// (rank, MF-callsite) stream, exactly the receive events of the recorded
// run, in the recorded order. The oracle makes that claim checkable from
// the outside: an OrderProbe interposes as a forwarding ToolHooks wrapper
// around a Recorder or Replayer and captures every application-visible
// receive event (and unmatched test) into per-stream traces; two traces are
// then compared event-by-event, bit-for-bit — source, tag, piggybacked
// clock, and a CRC of the payload. A prefix variant supports crash/salvage
// runs, where only a verified prefix of each stream is expected to match.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "minimpi/hooks.h"
#include "runtime/storage.h"

namespace cdc::support {

/// One application-visible event of a stream: a delivered receive
/// (`matched`) or a flag = false Test-family return (`!matched`). Payloads
/// are summarised by size + CRC-32 so traces stay small at fuzzing volume.
struct ObservedEvent {
  bool matched = true;
  minimpi::Rank source = -1;
  int tag = -1;
  std::uint64_t piggyback = 0;
  std::uint32_t payload_crc = 0;
  std::uint64_t payload_size = 0;

  friend bool operator==(const ObservedEvent&,
                         const ObservedEvent&) = default;
};

using StreamTrace = std::vector<ObservedEvent>;
using Trace = std::map<runtime::StreamKey, StreamTrace>;

/// Forwarding ToolHooks wrapper that records what the application saw.
/// With `inner == nullptr` it reproduces untooled MPI semantics (the
/// ToolHooks defaults); wrapped around a Recorder/Replayer it is invisible
/// to the tool — hook results pass through unchanged — so probing never
/// perturbs the run it is checking.
class OrderProbe : public minimpi::ToolHooks {
 public:
  explicit OrderProbe(minimpi::ToolHooks* inner = nullptr) : inner_(inner) {}

  std::uint64_t on_send(minimpi::Rank sender) override;
  minimpi::SelectResult select(minimpi::Rank rank,
                               minimpi::CallsiteId callsite,
                               minimpi::MFKind kind,
                               std::span<const minimpi::Candidate> candidates,
                               std::size_t total_requests,
                               bool blocking) override;
  void on_unmatched_test(minimpi::Rank rank,
                         minimpi::CallsiteId callsite) override;
  void on_deliver(minimpi::Rank rank, minimpi::CallsiteId callsite,
                  minimpi::MFKind kind,
                  std::span<const minimpi::Completion> events) override;
  void on_deadlock() override;
  bool on_stall() override;
  void on_fault(minimpi::FaultKind kind, minimpi::Rank rank) override;
  void on_parallel_start(int workers) override;
  void on_window(double horizon) override;

  /// Do not read while a parallel run is in flight (valid after run()).
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] std::uint64_t total_events() const noexcept;
  [[nodiscard]] std::uint64_t fault_count(minimpi::FaultKind kind) const {
    return fault_counts_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }

 private:
  minimpi::ToolHooks* inner_;
  /// Guards the trace map under the parallel executor. Test-machinery
  /// only — the probed product path never takes this lock — so the
  /// contention is an accepted cost of observing a parallel run.
  std::mutex trace_mu_;
  Trace trace_;
  std::array<std::atomic<std::uint64_t>, minimpi::kFaultKindCount>
      fault_counts_{};
};

/// Outcome of one oracle comparison. `mismatches` holds human-readable
/// diagnoses of the first few divergences — enough to reproduce and debug a
/// fuzzer failure without drowning in output.
struct OracleReport {
  bool ok = true;
  std::size_t streams_compared = 0;
  std::uint64_t events_compared = 0;
  std::vector<std::string> mismatches;

  [[nodiscard]] std::string summary() const;
};

/// Full equivalence: both traces contain the same streams and every stream
/// is event-for-event identical.
[[nodiscard]] OracleReport check_equivalence(const Trace& recorded,
                                             const Trace& replayed);

/// Prefix equivalence for crash/salvage replay: for each recorded stream,
/// the first `prefix_lengths[key]` events of the replayed trace must exist
/// and match the recorded trace bit-for-bit. Streams absent from
/// `prefix_lengths` are checked with prefix 0 (nothing was salvaged for
/// them). Events past the prefix are the replay run's own (passthrough)
/// non-determinism and are ignored.
[[nodiscard]] OracleReport check_prefix(
    const Trace& recorded, const Trace& replayed,
    const std::map<runtime::StreamKey, std::uint64_t>& prefix_lengths);

}  // namespace cdc::support
