// Deterministic pseudo-random number generation.
//
// The simulator's noise model and all property tests need RNG streams that
// are bit-reproducible across platforms and standard-library versions, so
// we implement xoshiro256** (Blackman & Vigna) rather than rely on
// std::mt19937 distribution behaviour.
#pragma once

#include <cstdint>
#include <limits>

namespace cdc::support {

/// xoshiro256** 1.0 — a small, fast, high-quality 64-bit PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a single 64-bit seed via splitmix64,
  /// as recommended by the xoshiro authors.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction
  /// with rejection).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed double with the given mean (> 0).
  /// Used by the simulator's message-latency noise model.
  double exponential(double mean) noexcept {
    // -log(1 - u) * mean; u < 1 strictly so the log argument is > 0.
    double u = uniform();
    return -__builtin_log1p(-u) * mean;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace cdc::support
