// Descriptive-statistics helpers, re-exported from the observability
// layer. The accumulators historically lived here; src/obs/stats.h is now
// the single home of the min/max/mean logic (the obs metrics and the
// pipeline report build on the same classes), and this header keeps the
// `cdc::support` spellings working for the benches and examples.
#pragma once

#include "obs/stats.h"

namespace cdc::support {

using Summary = obs::Summary;
using Histogram = obs::FixedHistogram;
using obs::format_bytes;

}  // namespace cdc::support
