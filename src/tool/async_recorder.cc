#include "tool/async_recorder.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdc::tool {

namespace {

std::unique_ptr<store::CompressionService> make_service(
    const AsyncRecorder::Config& config, runtime::RecordStore* store) {
  if (config.compression_workers == 0) return nullptr;
  store::CompressionService::Config service_config;
  service_config.workers = config.compression_workers;
  service_config.queue_capacity = config.compression_queue_capacity;
  // One source of truth for the level: jobs are stamped from the same
  // ToolOptions, so inline and service paths stay bit-identical.
  service_config.level = config.options.level;
  return std::make_unique<store::CompressionService>(store, service_config);
}

}  // namespace

AsyncRecorder::AsyncRecorder(const Config& config,
                             runtime::RecordStore* store)
    : store_(store),
      recorder_(config.key, config.options),
      service_(make_service(config, store)),
      sink_(service_ != nullptr
                ? static_cast<std::unique_ptr<FrameSink>>(
                      std::make_unique<AsyncFrameSink>(service_.get()))
                : std::make_unique<InlineFrameSink>(store)),
      queue_(config.queue_capacity),
      worker_([this](std::stop_token stop) { worker_loop(stop); }) {
  CDC_CHECK(store != nullptr);
}

AsyncRecorder::~AsyncRecorder() { finalize(); }

bool AsyncRecorder::try_enqueue(const record::ReceiveEvent& event) {
  CDC_CHECK_MSG(!finalized_.load(std::memory_order_relaxed),
                "enqueue after finalize");
  if (!queue_.try_push(event)) return false;
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& obs_enqueued = obs::counter("tool.async.enqueued");
  obs_enqueued.add(1);
  return true;
}

void AsyncRecorder::enqueue(const record::ReceiveEvent& event) {
  if (try_enqueue(event)) return;
  stalls_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& obs_stalls =
      obs::counter("tool.async.producer_stalls");
  obs_stalls.add(1);
  // Bounded-queue back-pressure: spin with progressive backoff.
  int spins = 0;
  while (!try_enqueue(event)) {
    if (++spins > 64) {
      std::this_thread::yield();
    }
  }
}

void AsyncRecorder::worker_loop(std::stop_token stop) {
  static obs::Counter& obs_dequeued = obs::counter("tool.async.dequeued");
  record::ReceiveEvent event;
  for (;;) {
    bool drained_any = false;
    while (queue_.try_pop(event)) {
      drained_any = true;
      dequeued_.fetch_add(1, std::memory_order_relaxed);
      obs_dequeued.add(1);
      if (event.flag) {
        recorder_.on_delivered(event);
      } else {
        recorder_.on_unmatched_test();
      }
      recorder_.flush_if_due(*sink_);
    }
    if (!drained_any) {
      if (stop.stop_requested()) return;
      std::this_thread::yield();
    }
  }
}

void AsyncRecorder::finalize() {
  if (finalized_.exchange(true)) return;
  obs::TraceSpan drain_span("async.finalize_drain");
  // Wait until the consumer has drained everything we enqueued.
  while (dequeued_.load(std::memory_order_acquire) <
         enqueued_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  worker_.request_stop();
  worker_.join();
  recorder_.finalize(*sink_);
  // Everything is submitted; wait for the service workers to commit.
  if (service_ != nullptr) service_->drain();
}

}  // namespace cdc::tool
