// Asynchronous recording runtime (§4.2, Figure 11).
//
// The paper moves encoding and file I/O off the application's critical
// path: the main thread enqueues receive events into a bounded lock-free
// SPSC ring; a dedicated CDC thread dequeues, encodes (the full CDC
// pipeline) and writes to storage. The ring blocks the producer only when
// full — which §6.2 argues never happens in practice because the consumer
// drains far faster (331K events/s) than the application produces
// (258 events/s). This class realises that design with a real OS thread;
// bench/queue_rates measures both rates.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>

#include "record/event.h"
#include "runtime/spsc_queue.h"
#include "runtime/storage.h"
#include "store/compression_service.h"
#include "tool/frame_sink.h"
#include "tool/stream_recorder.h"

namespace cdc::tool {

class AsyncRecorder {
 public:
  struct Config {
    runtime::StreamKey key;
    ToolOptions options;
    std::size_t queue_capacity = 1 << 16;
    /// 0 = the seed's inline path (the worker thread DEFLATEs each chunk
    /// itself). >= 1 spins up a store::CompressionService with that many
    /// workers; the recorder worker only seals chunks and the service
    /// commits identical bytes to the store in order.
    std::size_t compression_workers = 0;
    std::size_t compression_queue_capacity = 128;
  };

  AsyncRecorder(const Config& config, runtime::RecordStore* store);

  /// Stops the worker (draining the queue) and flushes the stream.
  ~AsyncRecorder();

  AsyncRecorder(const AsyncRecorder&) = delete;
  AsyncRecorder& operator=(const AsyncRecorder&) = delete;

  /// Producer side (application thread). Spins with backoff when the ring
  /// is full — the paper's "blocks the main thread when the queue is
  /// filled up".
  void enqueue(const record::ReceiveEvent& event);

  /// Non-blocking producer variant; false when the ring is full.
  bool try_enqueue(const record::ReceiveEvent& event);

  /// Drains the queue and flushes all buffered chunks. Safe to call from
  /// the producer thread; returns once the consumer has caught up.
  void finalize();

  struct Counters {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t producer_stalls = 0;  ///< full-ring backoff episodes
  };
  [[nodiscard]] Counters counters() const noexcept {
    return Counters{enqueued_.load(std::memory_order_relaxed),
                    dequeued_.load(std::memory_order_relaxed),
                    stalls_.load(std::memory_order_relaxed)};
  }

  [[nodiscard]] const StreamRecorder::Stats& stream_stats() const noexcept {
    return recorder_.stats();
  }

  /// Null when compression_workers == 0.
  [[nodiscard]] const store::CompressionService* compression()
      const noexcept {
    return service_.get();
  }

 private:
  void worker_loop(std::stop_token stop);

  runtime::RecordStore* store_;
  StreamRecorder recorder_;  ///< touched only by the worker thread
  std::unique_ptr<store::CompressionService> service_;  ///< may be null
  std::unique_ptr<FrameSink> sink_;
  runtime::SpscQueue<record::ReceiveEvent> queue_;
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> dequeued_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<bool> finalized_{false};
  std::jthread worker_;
};

}  // namespace cdc::tool
