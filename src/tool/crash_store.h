// Recorder crash points, modelled at the storage seam.
//
// A real recorder dies mid-run with its node-local record only partially
// persisted. The simulator is single-process, so the crash is modelled
// where it actually bites: CrashingStore wraps any RecordStore and starts
// silently dropping appends once a budget of successful appends is spent —
// everything after the "crash" never reaches storage, while the recorder
// itself keeps running the application to completion (the surviving ranks'
// behaviour is irrelevant to what was persisted). Pairing this with
// store::ContainerStore::abandon() leaves an unsealed container exactly
// like a killed process would, ready for the repack/salvage path.
#pragma once

#include <cstdint>

#include "runtime/storage.h"

namespace cdc::tool {

class CrashingStore final : public runtime::RecordStore {
 public:
  /// Appends are forwarded until `appends_before_crash` have succeeded;
  /// every later append is dropped (the crash).
  CrashingStore(runtime::RecordStore* inner,
                std::uint64_t appends_before_crash)
      : inner_(inner), budget_(appends_before_crash) {}

  void append(const runtime::StreamKey& key,
              std::span<const std::uint8_t> bytes) override {
    if (appends_ >= budget_) {
      crashed_ = true;
      ++dropped_;
      return;
    }
    ++appends_;
    inner_->append(key, bytes);
  }

  [[nodiscard]] std::vector<std::uint8_t> read(
      const runtime::StreamKey& key) const override {
    return inner_->read(key);
  }
  [[nodiscard]] std::vector<runtime::StreamKey> keys() const override {
    return inner_->keys();
  }
  [[nodiscard]] std::uint64_t total_bytes() const override {
    return inner_->total_bytes();
  }
  [[nodiscard]] std::uint64_t rank_bytes(
      minimpi::Rank rank) const override {
    return inner_->rank_bytes(rank);
  }

  /// True once at least one append was dropped.
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }
  [[nodiscard]] std::uint64_t appends_forwarded() const noexcept {
    return appends_;
  }
  [[nodiscard]] std::uint64_t appends_dropped() const noexcept {
    return dropped_;
  }

 private:
  runtime::RecordStore* inner_;
  std::uint64_t budget_;
  std::uint64_t appends_ = 0;
  std::uint64_t dropped_ = 0;
  bool crashed_ = false;
};

}  // namespace cdc::tool
