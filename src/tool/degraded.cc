#include "tool/degraded.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "obs/json.h"
#include "obs/metrics.h"
#include "record/chunk.h"
#include "store/container_reader.h"
#include "store/resilient.h"
#include "support/binary.h"
#include "tool/frame.h"
#include "tool/options.h"

namespace cdc::tool {

namespace {

/// Receive events (matched deliveries + unmatched tests) decodable from
/// one container frame's payload. Only the CDC-full codec stores the
/// counts the oracle compares; other codecs contribute 0 (the bench and
/// the fuzzer run CDC-full, so this is the accounting that matters).
std::uint64_t events_in_payload(std::span<const std::uint8_t> bytes) {
  support::ByteReader reader(bytes);
  std::uint64_t events = 0;
  while (auto frame = read_frame(reader)) {
    if (frame->codec != static_cast<std::uint8_t>(RecordCodec::kCdcFull))
      continue;
    support::ByteReader payload(frame->payload);
    const auto chunk = record::read_chunk(payload);
    if (!chunk) break;
    events += chunk->num_matched;
    for (const record::UnmatchedRun& run : chunk->unmatched)
      events += run.count;
  }
  return events;
}

}  // namespace

std::uint64_t GapReport::frames_listed_total() const noexcept {
  std::uint64_t total = 0;
  for (const StreamGap& gap : streams) total += gap.frames_listed;
  return total;
}

std::uint64_t GapReport::frames_intact_total() const noexcept {
  std::uint64_t total = 0;
  for (const StreamGap& gap : streams) total += gap.frames_intact;
  return total;
}

std::uint64_t GapReport::events_kept_total() const noexcept {
  std::uint64_t total = 0;
  for (const StreamGap& gap : streams) total += gap.events_kept;
  return total;
}

double GapReport::frame_coverage() const noexcept {
  const std::uint64_t listed = frames_listed_total();
  if (listed == 0) return 1.0;
  return static_cast<double>(frames_intact_total()) /
         static_cast<double>(listed);
}

bool GapReport::degraded() const noexcept {
  if (!container_errors.empty() || quarantined_frames > 0) return true;
  return std::any_of(streams.begin(), streams.end(),
                     [](const StreamGap& gap) { return gap.truncated; });
}

std::string GapReport::to_json() const {
  obs::JsonWriter json;
  json.begin_object();
  json.field("container", container_path);
  json.field("sealed", container_sealed);
  json.field("degraded", degraded());
  json.key("errors").begin_array();
  for (const std::string& error : container_errors) json.value(error);
  json.end_array();
  json.key("quarantine").begin_object();
  json.field("frames", quarantined_frames);
  json.field("bytes", quarantined_bytes);
  json.end_object();
  json.key("coverage").begin_object();
  json.field("frames_listed", frames_listed_total());
  json.field("frames_intact", frames_intact_total());
  json.field("events_kept", events_kept_total());
  json.field("frame_coverage", frame_coverage());
  json.end_object();
  json.key("streams").begin_array();
  for (const StreamGap& gap : streams) {
    json.begin_object();
    json.field("rank", gap.key.rank);
    json.field("callsite", gap.key.callsite);
    json.field("frames_listed", gap.frames_listed);
    json.field("frames_intact", gap.frames_intact);
    json.field("bytes_kept", gap.bytes_kept);
    json.field("events_kept", gap.events_kept);
    json.field("truncated", gap.truncated);
    json.field("gap_reason", gap.gap_reason);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).take();
}

void GapReport::print(std::FILE* out) const {
  std::fprintf(out, "gap report: %s (%s)\n", container_path.c_str(),
               container_sealed ? "sealed" : "unsealed/damaged");
  for (const std::string& error : container_errors)
    std::fprintf(out, "  container: %s\n", error.c_str());
  for (const StreamGap& gap : streams) {
    std::fprintf(out,
                 "  stream rank=%d callsite=%u: %llu/%llu frames intact "
                 "(%llu events, %llu B)%s%s\n",
                 gap.key.rank, gap.key.callsite,
                 static_cast<unsigned long long>(gap.frames_intact),
                 static_cast<unsigned long long>(gap.frames_listed),
                 static_cast<unsigned long long>(gap.events_kept),
                 static_cast<unsigned long long>(gap.bytes_kept),
                 gap.truncated ? " — GAP: " : "",
                 gap.truncated ? gap.gap_reason.c_str() : "");
  }
  if (quarantined_frames > 0)
    std::fprintf(out, "  quarantine sidecar: %llu frame(s), %llu B\n",
                 static_cast<unsigned long long>(quarantined_frames),
                 static_cast<unsigned long long>(quarantined_bytes));
  std::fprintf(out, "  replayable coverage: %.1f%% of %llu frames%s\n",
               100.0 * frame_coverage(),
               static_cast<unsigned long long>(frames_listed_total()),
               degraded() ? "" : " (record is whole)");
}

GapReport inspect_gaps(const std::string& container_path,
                       const std::string& quarantine_path) {
  GapReport report;
  report.container_path = container_path;

  std::string error;
  const auto reader = store::ContainerReader::open(container_path, &error);
  if (reader == nullptr) {
    report.container_errors.push_back(error);
    return report;
  }
  if (!reader->header_ok())
    report.container_errors.push_back(reader->header_error());
  if (!reader->index_ok())
    report.container_errors.push_back(reader->index_error());
  report.container_sealed = reader->header_ok() && reader->index_ok();

  // Quarantined frames (exhausted retries, store/resilient.h) leave holes
  // the container cannot see: the store packs later appends densely, so
  // the `.cdcq` sidecar's stream positions are the only record of where
  // each hole sits. A stream's replayable prefix ends at its first hole —
  // container frames past it really belong after the missing one.
  std::map<runtime::StreamKey, std::uint64_t> first_hole;
  std::map<runtime::StreamKey, std::uint64_t> holes;
  if (!quarantine_path.empty()) {
    for (const store::QuarantinedFrame& frame :
         store::read_quarantine(quarantine_path)) {
      ++report.quarantined_frames;
      report.quarantined_bytes += frame.bytes.size();
      ++holes[frame.key];
      const auto [it, inserted] = first_hole.emplace(frame.key, frame.seq);
      if (!inserted) it->second = std::min(it->second, frame.seq);
    }
  }

  // Good frames, grouped per stream in file order (per-stream file order
  // is seq order for any container the writer produced).
  std::map<runtime::StreamKey, std::vector<store::ContainerReader::GoodFrame>>
      good;
  for (const auto& frame : reader->scan_good_frames())
    good[frame.key].push_back(frame);

  // Defects per (key, seq) — the reason a prefix ends where it does.
  std::map<std::pair<runtime::StreamKey, std::uint64_t>, std::string> defects;
  const store::VerifyReport verify = reader->verify();
  for (const store::FrameDefect& defect : verify.bad_frames)
    if (defect.key_known)
      defects.emplace(std::make_pair(defect.key, defect.seq), defect.reason);

  // Every stream either the index or the scan knows about.
  std::set<runtime::StreamKey> all_keys;
  for (const runtime::StreamKey& key : reader->keys()) all_keys.insert(key);
  for (const auto& [key, frames] : good) all_keys.insert(key);
  for (const auto& [key, count] : holes) all_keys.insert(key);

  for (const runtime::StreamKey& key : all_keys) {
    StreamGap gap;
    gap.key = key;
    const auto* entry = reader->index_ok() ? reader->find(key) : nullptr;
    const auto it = good.find(key);
    const auto frames = it != good.end()
                            ? std::span<const store::ContainerReader::
                                            GoodFrame>(it->second)
                            : std::span<const store::ContainerReader::
                                            GoodFrame>();
    gap.frames_listed =
        entry != nullptr ? entry->frame_offsets.size() : frames.size();
    if (const auto lost = holes.find(key); lost != holes.end())
      gap.frames_listed += lost->second;  // the container can't list them
    const auto hole = first_hole.find(key);
    const std::uint64_t cap =
        hole != first_hole.end() ? hole->second
                                 : std::numeric_limits<std::uint64_t>::max();

    // Longest consistent prefix: good frames with seq 0, 1, 2, ... up to
    // the first quarantine hole.
    std::uint64_t next_seq = 0;
    for (const auto& frame : frames) {
      if (frame.seq != next_seq || next_seq >= cap) break;
      ++next_seq;
      gap.bytes_kept += frame.payload.size();
      gap.events_kept += events_in_payload(frame.payload);
    }
    gap.frames_intact = next_seq;
    gap.truncated = gap.frames_intact < gap.frames_listed;
    if (gap.truncated) {
      if (next_seq == cap) {
        gap.gap_reason = "frame quarantined after exhausted retries";
      } else {
        const auto defect =
            defects.find(std::make_pair(key, gap.frames_intact));
        gap.gap_reason = defect != defects.end()
                             ? defect->second
                             : "frame missing (container truncated?)";
      }
    }
    report.streams.push_back(std::move(gap));
  }
  return report;
}

std::unique_ptr<DegradedRecord> load_degraded(
    const std::string& container_path, const std::string& quarantine_path) {
  auto record = std::make_unique<DegradedRecord>();
  record->report = inspect_gaps(container_path, quarantine_path);

  std::string error;
  const auto reader = store::ContainerReader::open(container_path, &error);
  if (reader != nullptr) {
    // Re-scan and keep exactly the frames inspect_gaps counted intact.
    std::map<runtime::StreamKey, std::uint64_t> kept;
    std::map<runtime::StreamKey, std::uint64_t> limit;
    for (const StreamGap& gap : record->report.streams)
      limit[gap.key] = gap.frames_intact;
    for (const auto& frame : reader->scan_good_frames()) {
      std::uint64_t& next = kept[frame.key];
      if (frame.seq != next || next >= limit[frame.key]) continue;
      ++next;
      record->store.append(frame.key, frame.payload);
    }
  }
  for (const StreamGap& gap : record->report.streams)
    record->prefix_events[gap.key] = gap.events_kept;

  obs::gauge("replay.coverage_pct")
      .add(static_cast<std::int64_t>(
          100.0 * record->report.frame_coverage()));
  std::int64_t gap_streams = 0;
  for (const StreamGap& gap : record->report.streams)
    if (gap.truncated) ++gap_streams;
  obs::gauge("replay.gap_streams").add(gap_streams);
  return record;
}

}  // namespace cdc::tool
