// Degraded-mode replay: longest-consistent-prefix salvage of a damaged
// record container, machine-readable gap reporting, and replay coverage
// accounting.
//
// The paper's record is only useful if it is still replayable after the
// run that produced it went wrong: a rank killed mid-run truncates its
// streams, a torn write corrupts a frame, a recorder killed before seal()
// leaves no index. The salvage path (store/container_reader.h repack)
// keeps *every* intact frame — but replay consumes streams strictly in
// sequence, so a frame after a mid-stream gap is unreachable: splicing it
// in would mis-align reference indices. Degraded replay therefore loads,
// per stream, the longest consistent prefix — frames seq 0..k-1 all
// intact — and replays that under ToolOptions::partial_record, where the
// replayer gates the prefix faithfully and releases survivors to
// passthrough once any stream's record runs out (Replayer::on_stall
// bridges waits the truncated record can no longer satisfy).
//
// The GapReport is the machine-readable contract (`record_inspector
// --gaps`): per stream, how many frames the container promises, how many
// form the replayable prefix, what defect ended it, plus quarantined
// frames from the `.cdcq` sidecar (store/resilient.h) and container-level
// diagnostics. Coverage fractions feed the obs layer and the fig19 bench.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/storage.h"

namespace cdc::tool {

/// One stream's salvage outcome.
struct StreamGap {
  runtime::StreamKey key;
  /// Frames the stream should have: what the container promises (index
  /// entry when the index parsed; frames found by sequential scan
  /// otherwise) plus quarantined frames from the `.cdcq` sidecar — those
  /// occupy stream positions the container packs over and cannot show.
  std::uint64_t frames_listed = 0;
  /// Longest consistent prefix: frames seq 0..k-1 intact and in order,
  /// stopping at the stream's first quarantine hole.
  std::uint64_t frames_intact = 0;
  std::uint64_t bytes_kept = 0;   ///< payload bytes of the kept prefix
  std::uint64_t events_kept = 0;  ///< decodable receive events in the prefix
  bool truncated = false;         ///< a gap follows the prefix
  std::string gap_reason;         ///< defect that ended the prefix
};

/// Machine-readable damage summary of one record container (+ sidecar).
struct GapReport {
  std::string container_path;
  bool container_sealed = false;  ///< header + index parsed and CRC-clean
  std::vector<std::string> container_errors;  ///< header/index diagnostics
  std::vector<StreamGap> streams;             ///< key order
  std::uint64_t quarantined_frames = 0;  ///< intact `.cdcq` sidecar entries
  std::uint64_t quarantined_bytes = 0;

  [[nodiscard]] std::uint64_t frames_listed_total() const noexcept;
  [[nodiscard]] std::uint64_t frames_intact_total() const noexcept;
  [[nodiscard]] std::uint64_t events_kept_total() const noexcept;
  /// Replayable fraction of the container's frames in [0, 1]; 1.0 for an
  /// empty (zero-frame) container — nothing was lost.
  [[nodiscard]] double frame_coverage() const noexcept;
  /// Anything to report: a truncated stream, a container-level error, or
  /// quarantined frames. False means the record is whole.
  [[nodiscard]] bool degraded() const noexcept;

  /// Deterministic JSON document (the `--gaps` schema; see DESIGN.md §9).
  [[nodiscard]] std::string to_json() const;
  void print(std::FILE* out) const;
};

/// Inspects `container_path` — sealed, abandoned mid-run, truncated, or
/// empty — plus the optional `.cdcq` quarantine sidecar. Never aborts on
/// damage: an unreadable file yields an empty report with the diagnostic
/// in container_errors.
[[nodiscard]] GapReport inspect_gaps(const std::string& container_path,
                                     const std::string& quarantine_path = {});

/// The degraded-replay input: each stream's longest consistent prefix,
/// loaded into memory, with the gap report that describes what is missing.
struct DegradedRecord {
  runtime::MemoryStore store;
  GapReport report;
  /// Receive events (matched + unmatched) decodable per salvaged stream —
  /// replay of the prefix gates at most this many events per stream.
  std::map<runtime::StreamKey, std::uint64_t> prefix_events;
};

/// Loads the longest-consistent-prefix record. Never fails on damage; the
/// result's report carries the diagnostics. Publishes replay-coverage
/// metrics (`replay.coverage_pct`, `replay.gap_streams`) to the obs layer.
[[nodiscard]] std::unique_ptr<DegradedRecord> load_degraded(
    const std::string& container_path,
    const std::string& quarantine_path = {});

}  // namespace cdc::tool
