#include "tool/frame.h"

#include "obs/metrics.h"

namespace cdc::tool {

void write_frame(support::ByteWriter& out, std::uint8_t codec,
                 std::uint64_t meta, std::span<const std::uint8_t> payload,
                 compress::DeflateLevel level) {
  static obs::Counter& deflate_calls =
      obs::counter("record.stage.deflate.calls");
  static obs::Counter& deflate_ns = obs::counter("record.stage.deflate.ns");
  static obs::Counter& deflate_in =
      obs::counter("record.stage.deflate.bytes_in");
  static obs::Counter& deflate_out =
      obs::counter("record.stage.deflate.bytes_out");
  out.u8(kFrameMagic);
  out.u8(codec);
  // The compressed body is staged in a thread-local scratch buffer whose
  // capacity is reclaimed after the copy into `out` — the second half of
  // the allocation-free steady state (the first is `out` itself).
  thread_local std::vector<std::uint8_t> body_scratch;
  const obs::Stopwatch sw;
  std::vector<std::uint8_t> compressed =
      compress::deflate_compress(payload, level, std::move(body_scratch));
  const bool stored_raw = compressed.size() >= payload.size();
  deflate_calls.add(1);
  deflate_ns.add(sw.ns());
  deflate_in.add(payload.size());
  deflate_out.add(stored_raw ? payload.size() : compressed.size());
  out.u8(stored_raw ? 1 : 0);
  out.varint(meta);
  out.varint(payload.size());
  if (stored_raw) {
    out.varint(payload.size());
    out.bytes(payload);
  } else {
    out.varint(compressed.size());
    out.bytes(compressed);
  }
  body_scratch = std::move(compressed);
}

std::vector<std::uint8_t> encode_frame(const FrameJob& job) {
  return encode_frame_into(job, {});
}

std::vector<std::uint8_t> encode_frame_into(
    const FrameJob& job, std::vector<std::uint8_t> reuse) {
  static obs::Counter& frame_bytes = obs::counter("record.frame.bytes_out");
  support::ByteWriter out(std::move(reuse));
  if (job.compress) {
    write_frame(out, job.codec, job.meta, job.payload, job.level);
  } else {
    // Stored-raw framing: identical to write_frame's incompressible-input
    // fallback, chosen up front.
    out.u8(kFrameMagic);
    out.u8(job.codec);
    out.u8(1);
    out.varint(job.meta);
    out.varint(job.payload.size());
    out.varint(job.payload.size());
    out.bytes(job.payload);
  }
  std::vector<std::uint8_t> framed = std::move(out).take();
  frame_bytes.add(framed.size());
  return framed;
}

std::optional<Frame> read_frame(support::ByteReader& in) {
  if (in.exhausted()) return std::nullopt;
  std::uint8_t magic = 0;
  if (!in.try_u8(magic) || magic != kFrameMagic) return std::nullopt;
  Frame frame;
  std::uint8_t stored_raw = 0;
  std::uint64_t raw_len = 0;
  std::uint64_t payload_len = 0;
  if (!in.try_u8(frame.codec) || !in.try_u8(stored_raw) ||
      !in.try_varint(frame.meta) || !in.try_varint(raw_len) ||
      !in.try_varint(payload_len))
    return std::nullopt;
  std::span<const std::uint8_t> body;
  if (!in.try_bytes(static_cast<std::size_t>(payload_len), body))
    return std::nullopt;
  if (stored_raw) {
    if (raw_len != payload_len) return std::nullopt;
    frame.payload.assign(body.begin(), body.end());
    return frame;
  }
  // Decode-side twin of write_frame's deflate stage counters: same four
  // fields under record.stage.inflate so record_inspector --stats can show
  // both directions of the entropy stage.
  static obs::Counter& inflate_calls =
      obs::counter("record.stage.inflate.calls");
  static obs::Counter& inflate_ns = obs::counter("record.stage.inflate.ns");
  static obs::Counter& inflate_in =
      obs::counter("record.stage.inflate.bytes_in");
  static obs::Counter& inflate_out =
      obs::counter("record.stage.inflate.bytes_out");
  const obs::Stopwatch sw;
  auto decoded = compress::deflate_decompress(body);
  inflate_calls.add(1);
  inflate_ns.add(sw.ns());
  inflate_in.add(body.size());
  if (!decoded || decoded->size() != raw_len) return std::nullopt;
  inflate_out.add(decoded->size());
  frame.payload = std::move(*decoded);
  return frame;
}

}  // namespace cdc::tool
