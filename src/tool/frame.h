// On-storage chunk framing shared by the recorder and the replayer.
//
// Every flushed chunk becomes one frame:
//   u8 magic (0xC4) | u8 codec | u8 stored_raw | varint meta |
//   varint raw_len | varint payload_len | payload
// `meta` carries codec-specific metadata (the baseline formats need the
// row count to parse headerless 162-bit rows; CDC frames carry 0). The
// payload is DEFLATE-compressed unless that would grow it (stored_raw).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "compress/deflate.h"
#include "runtime/storage.h"
#include "support/binary.h"

namespace cdc::tool {

inline constexpr std::uint8_t kFrameMagic = 0xC4;

struct Frame {
  std::uint8_t codec = 0;
  std::uint64_t meta = 0;
  std::vector<std::uint8_t> payload;  ///< decompressed
};

/// One not-yet-encoded frame: the unit of work the compression service
/// parallelizes. `compress == false` is the "w/o Compression" baseline,
/// which frames its payload verbatim (stored-raw) by construction rather
/// than by the size fallback.
struct FrameJob {
  std::uint8_t codec = 0;
  std::uint64_t meta = 0;
  bool compress = true;
  compress::DeflateLevel level = compress::DeflateLevel::kDefault;
  std::vector<std::uint8_t> payload;  ///< raw (uncompressed) chunk bytes
  /// Epoch metadata of the chunk, when the flusher knows it. Rides through
  /// every sink to RecordStore::append_epoch so epoch-aware stores build
  /// the container's random-access epoch index; plain stores ignore it.
  std::optional<runtime::EpochMeta> epoch;
};

/// Encodes one job into its on-storage frame bytes. Deterministic: the
/// same job yields the same bytes on any thread, which is what lets the
/// parallel compression service commit bit-identical streams.
std::vector<std::uint8_t> encode_frame(const FrameJob& job);

/// encode_frame with a recycled output buffer: `reuse` donates capacity
/// (contents discarded). The bytes produced are identical to
/// encode_frame's — reuse affects allocations only.
std::vector<std::uint8_t> encode_frame_into(const FrameJob& job,
                                            std::vector<std::uint8_t> reuse);

/// Appends one frame to `out`, compressing the payload with DEFLATE.
void write_frame(support::ByteWriter& out, std::uint8_t codec,
                 std::uint64_t meta, std::span<const std::uint8_t> payload,
                 compress::DeflateLevel level);

/// Parses the next frame; std::nullopt at end of stream or on corruption.
std::optional<Frame> read_frame(support::ByteReader& in);

}  // namespace cdc::tool
