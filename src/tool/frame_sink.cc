#include "tool/frame_sink.h"

#include "store/compression_service.h"
#include "support/check.h"

namespace cdc::tool {

InlineFrameSink::InlineFrameSink(runtime::RecordStore* store)
    : store_(store) {
  CDC_CHECK(store != nullptr);
}

void InlineFrameSink::submit(const runtime::StreamKey& key, FrameJob job) {
  store_->append(key, encode_frame(job));
}

AsyncFrameSink::AsyncFrameSink(store::CompressionService* service)
    : service_(service) {
  CDC_CHECK(service != nullptr);
}

void AsyncFrameSink::submit(const runtime::StreamKey& key, FrameJob job) {
  const std::size_t raw_size = job.payload.size();
  service_->submit(key, raw_size,
                   [job = std::move(job)] { return encode_frame(job); });
}

RetryingFrameSink::RetryingFrameSink(runtime::RecordStore* store,
                                     const store::RetryPolicy& policy,
                                     std::string quarantine_path)
    : retrying_(store, policy, std::move(quarantine_path)) {}

void RetryingFrameSink::submit(const runtime::StreamKey& key, FrameJob job) {
  retrying_.append(key, encode_frame(job));
}

}  // namespace cdc::tool
