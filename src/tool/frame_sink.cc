#include "tool/frame_sink.h"

#include "obs/metrics.h"
#include "store/compression_service.h"
#include "support/check.h"

namespace cdc::tool {

namespace {

/// Counts a sink-local scratch reuse under the same obs names the
/// CompressionService pool uses, so record_inspector --stats sees one
/// consolidated pool hit-rate regardless of which path encoded.
void count_scratch_reuse(const std::vector<std::uint8_t>& scratch) {
  static obs::Counter& pool_hits = obs::counter("store.pool.hits");
  static obs::Counter& pool_misses = obs::counter("store.pool.misses");
  static obs::Counter& pool_recycled =
      obs::counter("store.pool.recycled_bytes");
  if (scratch.capacity() > 0) {
    pool_hits.add(1);
    pool_recycled.add(scratch.capacity());
  } else {
    pool_misses.add(1);
  }
}

}  // namespace

InlineFrameSink::InlineFrameSink(runtime::RecordStore* store)
    : store_(store) {
  CDC_CHECK(store != nullptr);
}

void InlineFrameSink::submit(const runtime::StreamKey& key, FrameJob job) {
  count_scratch_reuse(scratch_);
  std::vector<std::uint8_t> encoded =
      encode_frame_into(job, std::move(scratch_));
  if (job.epoch.has_value())
    store_->append_epoch(key, encoded, *job.epoch);
  else
    store_->append(key, encoded);
  scratch_ = std::move(encoded);  // the store copied; keep the capacity
}

AsyncFrameSink::AsyncFrameSink(store::CompressionService* service)
    : service_(service) {
  CDC_CHECK(service != nullptr);
}

void AsyncFrameSink::submit(const runtime::StreamKey& key, FrameJob job) {
  const std::size_t raw_size = job.payload.size();
  const std::optional<runtime::EpochMeta> epoch = job.epoch;
  service_->submit(
      key, raw_size,
      store::CompressionService::EncoderInto(
          [job = std::move(job)](std::vector<std::uint8_t> reuse) {
            return encode_frame_into(job, std::move(reuse));
          }),
      epoch);
}

RetryingFrameSink::RetryingFrameSink(runtime::RecordStore* store,
                                     const store::RetryPolicy& policy,
                                     std::string quarantine_path)
    : retrying_(store, policy, std::move(quarantine_path)) {}

void RetryingFrameSink::submit(const runtime::StreamKey& key, FrameJob job) {
  count_scratch_reuse(scratch_);
  std::vector<std::uint8_t> encoded =
      encode_frame_into(job, std::move(scratch_));
  if (job.epoch.has_value())
    retrying_.append_epoch(key, encoded, *job.epoch);
  else
    retrying_.append(key, encoded);
  scratch_ = std::move(encoded);  // appended or quarantined by copy
}

}  // namespace cdc::tool
