// Where sealed chunks go: the seam between chunk building (StreamRecorder)
// and frame encoding + storage.
//
// The seed compressed every chunk inline on whichever thread flushed it.
// Routing flushes through a FrameSink instead lets the same recorder code
// run against either path:
//   InlineFrameSink — encode (DEFLATE) on the calling thread, append to
//     the store immediately; the seed's behaviour.
//   AsyncFrameSink  — hand the raw payload to a store::CompressionService
//     worker pool; frames are committed to the store in submission order,
//     so the stored bytes are identical to the inline path.
//   RetryingFrameSink — encode inline, but append through a
//     store::RetryingStore: transient I/O errors are retried with bounded
//     exponential backoff, and a frame that exhausts its retries is
//     quarantined (in memory + the `.cdcq` sidecar) instead of aborting
//     the recorder. The survive-and-resume path for flaky node-local
//     storage.
#pragma once

#include <string>
#include <vector>

#include "runtime/storage.h"
#include "store/resilient.h"
#include "tool/frame.h"

namespace cdc::store {
class CompressionService;
}  // namespace cdc::store

namespace cdc::tool {

class FrameSink {
 public:
  virtual ~FrameSink() = default;

  /// Encodes (now or later) and appends one frame to `key`'s stream.
  /// Per-key submission order is preserved in the stored stream.
  virtual void submit(const runtime::StreamKey& key, FrameJob job) = 0;
};

/// Encodes on the calling thread, appends immediately. Keeps one output
/// buffer and recycles its capacity across submits (sinks are used from
/// a single flushing thread), so steady-state encoding is allocation-free.
class InlineFrameSink final : public FrameSink {
 public:
  explicit InlineFrameSink(runtime::RecordStore* store);
  void submit(const runtime::StreamKey& key, FrameJob job) override;

 private:
  runtime::RecordStore* store_;
  std::vector<std::uint8_t> scratch_;  ///< recycled frame-output buffer
};

/// Queues the job on a compression service's worker pool.
class AsyncFrameSink final : public FrameSink {
 public:
  explicit AsyncFrameSink(store::CompressionService* service);
  void submit(const runtime::StreamKey& key, FrameJob job) override;

 private:
  store::CompressionService* service_;
};

/// Encodes on the calling thread and appends through an internal
/// store::RetryingStore wrapped around `store`: runtime::IoError appends
/// are retried under `policy`, and exhausted frames are quarantined to
/// `quarantine_path` (when non-empty) instead of aborting. submit() never
/// throws for I/O reasons — recording always completes.
class RetryingFrameSink final : public FrameSink {
 public:
  explicit RetryingFrameSink(runtime::RecordStore* store,
                             const store::RetryPolicy& policy = {},
                             std::string quarantine_path = {});
  void submit(const runtime::StreamKey& key, FrameJob job) override;

  /// The retrying decorator itself — hand this to a Recorder as its store
  /// so checkpoint sync() calls get the same retry treatment.
  [[nodiscard]] store::RetryingStore& store() noexcept { return retrying_; }
  [[nodiscard]] const store::RetryStats& stats() const noexcept {
    return retrying_.stats();
  }
  [[nodiscard]] const std::vector<store::QuarantinedFrame>& quarantined()
      const noexcept {
    return retrying_.quarantined();
  }

 private:
  store::RetryingStore retrying_;
  std::vector<std::uint8_t> scratch_;  ///< recycled frame-output buffer
};

}  // namespace cdc::tool
