// Where sealed chunks go: the seam between chunk building (StreamRecorder)
// and frame encoding + storage.
//
// The seed compressed every chunk inline on whichever thread flushed it.
// Routing flushes through a FrameSink instead lets the same recorder code
// run against either path:
//   InlineFrameSink — encode (DEFLATE) on the calling thread, append to
//     the store immediately; the seed's behaviour.
//   AsyncFrameSink  — hand the raw payload to a store::CompressionService
//     worker pool; frames are committed to the store in submission order,
//     so the stored bytes are identical to the inline path.
#pragma once

#include "runtime/storage.h"
#include "tool/frame.h"

namespace cdc::store {
class CompressionService;
}  // namespace cdc::store

namespace cdc::tool {

class FrameSink {
 public:
  virtual ~FrameSink() = default;

  /// Encodes (now or later) and appends one frame to `key`'s stream.
  /// Per-key submission order is preserved in the stored stream.
  virtual void submit(const runtime::StreamKey& key, FrameJob job) = 0;
};

/// Encodes on the calling thread, appends immediately.
class InlineFrameSink final : public FrameSink {
 public:
  explicit InlineFrameSink(runtime::RecordStore* store);
  void submit(const runtime::StreamKey& key, FrameJob job) override;

 private:
  runtime::RecordStore* store_;
};

/// Queues the job on a compression service's worker pool.
class AsyncFrameSink final : public FrameSink {
 public:
  explicit AsyncFrameSink(store::CompressionService* service);
  void submit(const runtime::StreamKey& key, FrameJob job) override;

 private:
  store::CompressionService* service_;
};

}  // namespace cdc::tool
