// PnMPI-style tool stacking (§4.3: "we integrate the PMPI layers using the
// PNMPI infrastructure").
//
// A HookChain exposes one ToolHooks to the simulator while fanning events
// out to multiple layers: a single *primary* layer owns the semantics-
// affecting decisions (piggyback values and matching selection — in this
// system, the Recorder or the Replayer), and any number of *observer*
// layers receive the notification stream (sends, deliveries, unmatched
// tests, deadlock dumps) without being able to alter the run. This is how
// auxiliary tools — tracers, statistics collectors, invariant checkers —
// ride along with record or replay.
#pragma once

#include <vector>

#include "minimpi/hooks.h"
#include "support/check.h"

namespace cdc::tool {

class HookChain : public minimpi::ToolHooks {
 public:
  /// `primary` may be null (untooled semantics with observers attached).
  explicit HookChain(minimpi::ToolHooks* primary) : primary_(primary) {}

  /// Observers are invoked in registration order, after the primary.
  void add_observer(minimpi::ToolHooks* observer) {
    CDC_CHECK(observer != nullptr && observer != primary_);
    observers_.push_back(observer);
  }

  std::uint64_t on_send(minimpi::Rank sender) override {
    const std::uint64_t piggyback =
        primary_ != nullptr ? primary_->on_send(sender) : 0;
    for (minimpi::ToolHooks* observer : observers_) observer->on_send(sender);
    return piggyback;
  }

  minimpi::SelectResult select(minimpi::Rank rank,
                               minimpi::CallsiteId callsite,
                               minimpi::MFKind kind,
                               std::span<const minimpi::Candidate> candidates,
                               std::size_t total_requests,
                               bool blocking) override {
    // Selection is semantics-affecting: primary only.
    if (primary_ != nullptr)
      return primary_->select(rank, callsite, kind, candidates,
                              total_requests, blocking);
    return ToolHooks::select(rank, callsite, kind, candidates,
                             total_requests, blocking);
  }

  void on_unmatched_test(minimpi::Rank rank,
                         minimpi::CallsiteId callsite) override {
    if (primary_ != nullptr) primary_->on_unmatched_test(rank, callsite);
    for (minimpi::ToolHooks* observer : observers_)
      observer->on_unmatched_test(rank, callsite);
  }

  void on_deliver(minimpi::Rank rank, minimpi::CallsiteId callsite,
                  minimpi::MFKind kind,
                  std::span<const minimpi::Completion> events) override {
    if (primary_ != nullptr) primary_->on_deliver(rank, callsite, kind, events);
    for (minimpi::ToolHooks* observer : observers_)
      observer->on_deliver(rank, callsite, kind, events);
  }

  void on_deadlock() override {
    if (primary_ != nullptr) primary_->on_deadlock();
    for (minimpi::ToolHooks* observer : observers_) observer->on_deadlock();
  }

  bool on_stall() override {
    // Semantics-affecting (may unblock the run): primary only.
    return primary_ != nullptr && primary_->on_stall();
  }

  void on_fault(minimpi::FaultKind kind, minimpi::Rank rank) override {
    if (primary_ != nullptr) primary_->on_fault(kind, rank);
    for (minimpi::ToolHooks* observer : observers_)
      observer->on_fault(kind, rank);
  }

  void on_parallel_start(int workers) override {
    if (primary_ != nullptr) primary_->on_parallel_start(workers);
    for (minimpi::ToolHooks* observer : observers_)
      observer->on_parallel_start(workers);
  }

  void on_window(double horizon) override {
    if (primary_ != nullptr) primary_->on_window(horizon);
    for (minimpi::ToolHooks* observer : observers_)
      observer->on_window(horizon);
  }

 private:
  minimpi::ToolHooks* primary_;
  std::vector<minimpi::ToolHooks*> observers_;
};

/// A ready-made observer: per-rank / per-callsite receive-event counters,
/// useful for quick communication profiles alongside record or replay.
class EventCounter : public minimpi::ToolHooks {
 public:
  explicit EventCounter(int num_ranks)
      : deliveries_(static_cast<std::size_t>(num_ranks), 0),
        unmatched_(static_cast<std::size_t>(num_ranks), 0),
        sends_(static_cast<std::size_t>(num_ranks), 0) {}

  std::uint64_t on_send(minimpi::Rank sender) override {
    ++sends_[static_cast<std::size_t>(sender)];
    return 0;  // ignored: observers never piggyback
  }
  void on_unmatched_test(minimpi::Rank rank, minimpi::CallsiteId) override {
    ++unmatched_[static_cast<std::size_t>(rank)];
  }
  void on_deliver(minimpi::Rank rank, minimpi::CallsiteId, minimpi::MFKind,
                  std::span<const minimpi::Completion> events) override {
    deliveries_[static_cast<std::size_t>(rank)] += events.size();
  }

  [[nodiscard]] std::uint64_t deliveries(minimpi::Rank rank) const {
    return deliveries_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::uint64_t unmatched(minimpi::Rank rank) const {
    return unmatched_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::uint64_t sends(minimpi::Rank rank) const {
    return sends_[static_cast<std::size_t>(rank)];
  }

 private:
  std::vector<std::uint64_t> deliveries_;
  std::vector<std::uint64_t> unmatched_;
  std::vector<std::uint64_t> sends_;
};

}  // namespace cdc::tool
