// Shared configuration of the record/replay tool.
#pragma once

#include <cstddef>
#include <cstdint>

#include "compress/deflate.h"

namespace cdc::tool {

/// The recording codecs compared in Figure 13.
enum class RecordCodec : std::uint8_t {
  kBaselineRaw,   ///< traditional 162-bit rows, no compression
  kBaselineGzip,  ///< gzip over the traditional rows
  kCdcRe,         ///< redundancy elimination only, then gzip ("CDC (RE)")
  kCdcFull,       ///< RE + permutation + LP + epoch, then gzip ("CDC")
};

[[nodiscard]] constexpr const char* codec_name(RecordCodec codec) noexcept {
  switch (codec) {
    case RecordCodec::kBaselineRaw: return "w/o Compression";
    case RecordCodec::kBaselineGzip: return "gzip";
    case RecordCodec::kCdcRe: return "CDC (RE)";
    case RecordCodec::kCdcFull: return "CDC";
  }
  return "?";
}

struct ToolOptions {
  RecordCodec codec = RecordCodec::kCdcFull;
  /// §4.4 MF identification: when false, all callsites share one record
  /// table — the "CDC (RE + PE + LPE)" variant of Figure 13.
  bool identify_callsites = true;
  /// Matched receives per chunk flush attempt (§3.5 epoch enforcement may
  /// defer past this).
  std::size_t chunk_target = 4096;
  compress::DeflateLevel level = compress::DeflateLevel::kDefault;
  /// Rank whose received-clock series is captured (Figure 1); -1 = none.
  std::int32_t clock_trace_rank = -1;
  /// Advance the Lamport clock on unmatched Test results as well as on
  /// sends/receives. Unmatched tests are themselves replayed, so this
  /// clock is still replayable (the paper's §4.3 invites such refined
  /// clock definitions); it keeps rank clocks advancing at poll rate,
  /// which greatly increases observed/reference order similarity for
  /// polling applications like MCB.
  bool tick_on_unmatched_test = true;
  /// Epoch-checkpoint interval: after every `checkpoint_interval` chunk
  /// flushes the recorder issues a store durability barrier
  /// (RecordStore::sync), so a killed recorder loses at most the chunks of
  /// one checkpoint window — one epoch, at the default of 1 — instead of
  /// everything since the last OS writeback. 0 disables checkpoints (the
  /// seed behaviour). With an asynchronous sink the barrier covers every
  /// frame the compression service has committed so far (best effort);
  /// the inline path gets the exact ≤ interval guarantee.
  std::uint32_t checkpoint_interval = 1;
  /// Replay a *partial* record — e.g. one salvaged from a crashed
  /// recorder's container (store/container_reader.h repack). The record is
  /// a prefix of the original run, not a causally consistent cut, so the
  /// moment any stream exhausts its record the replayer releases ALL
  /// streams to passthrough at once: per-stream gating beyond that point
  /// would mix replayed and free-run Lamport clocks and mis-identify
  /// messages. Events surfaced before the release are a faithful per-stream
  /// prefix of the recorded order (checked by support/oracle.h
  /// check_prefix); events after it are ordinary free-run non-determinism.
  bool partial_record = false;
};

}  // namespace cdc::tool
