#include "tool/pipeline_inspect.h"

#include "record/chunk.h"
#include "store/container_reader.h"
#include "support/binary.h"
#include "tool/frame.h"
#include "tool/options.h"

namespace cdc::tool {

bool fill_container_section(const std::string& path,
                            obs::PipelineReport& report,
                            std::string* error) {
  const auto reader = store::ContainerReader::open(path, error);
  if (reader == nullptr) return false;

  report.container_file_bytes = reader->file_bytes();
  report.container_sealed = reader->index_ok();

  for (const store::ContainerReader::GoodFrame& good :
       reader->scan_good_frames()) {
    // One container frame carries exactly one tool frame (the FrameSink
    // contract), so the container payload size IS the framed byte count
    // the encoder reported through record.frame.bytes_out.
    ++report.container_frames;
    report.container_stored_bytes += good.payload.size();

    support::ByteReader frame_reader(good.payload);
    auto frame = read_frame(frame_reader);
    if (!frame) continue;  // foreign or truncated payload: count bytes only
    report.container_raw_bytes += frame->payload.size();

    const auto codec = static_cast<RecordCodec>(frame->codec);
    ++report.container_codec_frames[codec_name(codec)];

    if (codec == RecordCodec::kCdcFull) {
      support::ByteReader payload(frame->payload);
      if (const auto chunk = record::read_chunk(payload)) {
        report.container_chunk_events += chunk->num_matched;
        report.container_chunk_values += chunk->value_count();
      }
    }
  }
  return true;
}

}  // namespace cdc::tool
