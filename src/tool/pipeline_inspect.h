// Container-side half of the pipeline report: decodes a record container
// frame by frame and fills the `container_*` section of an
// obs::PipelineReport, so the byte totals the live encoder claimed can be
// reconciled against what actually landed on disk. Lives in the tool
// layer because chunk decoding needs the codec headers; the report struct
// itself stays dependency-free in src/obs/.
#pragma once

#include <string>

#include "obs/report.h"

namespace cdc::tool {

/// Decodes the container at `path` and fills `report`'s container
/// section: file size, frame count, stored (tool-frame) bytes, raw
/// (decompressed chunk) bytes, per-codec frame counts, and — for CDC
/// chunks — the matched-event and stored-value accounting. Returns false
/// and sets *error when the file cannot be opened; damaged frames are
/// skipped (the salvage scan semantics of ContainerReader).
bool fill_container_section(const std::string& path,
                            obs::PipelineReport& report,
                            std::string* error = nullptr);

}  // namespace cdc::tool
