#include "tool/recorder.h"

#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/check.h"

namespace cdc::tool {

Recorder::Recorder(int num_ranks, runtime::RecordStore* store,
                   const ToolOptions& options, FrameSink* sink)
    : options_(options),
      store_(store),
      inline_sink_(store),
      sink_(sink != nullptr ? sink : &inline_sink_),
      clocks_(static_cast<std::size_t>(num_ranks)),
      digests_(static_cast<std::size_t>(num_ranks),
               0xcbf29ce484222325ull) {
  CDC_CHECK(store != nullptr && num_ranks >= 1);
}

namespace {
std::uint64_t fnv_mix(std::uint64_t digest, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    digest ^= (value >> (8 * i)) & 0xff;
    digest *= 0x100000001b3ull;
  }
  return digest;
}
}  // namespace

std::uint64_t Recorder::order_digest() const {
  std::uint64_t combined = 0;
  for (const std::uint64_t d : digests_) combined ^= d;
  return combined;
}

StreamRecorder& Recorder::stream(minimpi::Rank rank,
                                 minimpi::CallsiteId callsite) {
  const runtime::StreamKey key{
      rank, options_.identify_callsites ? callsite : 0};
  // Workers of the parallel executor race only on the map shape (each
  // stream is touched by its owning rank's worker alone); node-based map
  // iterators and the unique_ptr targets stay valid across rehash-free
  // inserts, so the lock covers exactly the lookup/insert.
  std::lock_guard<std::mutex> lock(streams_mu_);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    it = streams_
             .emplace(key, std::make_unique<StreamRecorder>(key, options_))
             .first;
  }
  return *it->second;
}

std::uint64_t Recorder::on_send(minimpi::Rank sender) {
  return clocks_[static_cast<std::size_t>(sender)].on_send();
}

minimpi::SelectResult Recorder::select(
    minimpi::Rank rank, minimpi::CallsiteId callsite, minimpi::MFKind kind,
    std::span<const minimpi::Candidate> candidates,
    std::size_t total_requests, bool blocking) {
  // Record mode: sight candidates for epoch enforcement, then pass the
  // matching decision through unchanged.
  StreamRecorder& rec = stream(rank, callsite);
  for (const minimpi::Candidate& c : candidates)
    if (c.fresh) rec.on_candidate(clock::MessageId{c.source, c.piggyback});
  return ToolHooks::select(rank, callsite, kind, candidates, total_requests,
                           blocking);
}

void Recorder::on_unmatched_test(minimpi::Rank rank,
                                 minimpi::CallsiteId callsite) {
  if (options_.tick_on_unmatched_test)
    clocks_[static_cast<std::size_t>(rank)].tick();
  stream(rank, callsite).on_unmatched_test();
}

void Recorder::on_deliver(minimpi::Rank rank, minimpi::CallsiteId callsite,
                          minimpi::MFKind /*kind*/,
                          std::span<const minimpi::Completion> events) {
  StreamRecorder& rec = stream(rank, callsite);
  auto& clock = clocks_[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const minimpi::Completion& e = events[i];
    clock.on_receive(e.piggyback);
    record::ReceiveEvent event;
    event.flag = true;
    event.with_next = i + 1 < events.size();
    event.rank = e.source;
    event.clock = e.piggyback;
    rec.on_delivered(event);
    auto& digest = digests_[static_cast<std::size_t>(rank)];
    digest = fnv_mix(digest, callsite);
    digest = fnv_mix(digest, static_cast<std::uint64_t>(e.source));
    digest = fnv_mix(digest, e.piggyback);
    if (rank == options_.clock_trace_rank)
      clock_trace_.push_back(e.piggyback);
  }
  if (staged_) return;  // deferred to on_window (coordinator, quiesced)
  const std::uint64_t chunks_before = rec.stats().chunks;
  rec.flush_if_due(*sink_);
  if (options_.checkpoint_interval > 0)
    checkpoint(rec.stats().chunks - chunks_before);
}

void Recorder::on_parallel_start(int /*workers*/) { staged_ = true; }

void Recorder::on_window(double /*horizon*/) {
  if (!staged_) return;
  // Every worker is quiesced at the window barrier: flush due chunks for
  // all streams in canonical key order. Window boundaries are worker-
  // count-invariant, so the chunk sequence — and the sealed container —
  // is too.
  std::uint64_t new_chunks = 0;
  for (auto& [key, rec] : streams_) {
    const std::uint64_t chunks_before = rec->stats().chunks;
    rec->flush_if_due(*sink_);
    new_chunks += rec->stats().chunks - chunks_before;
  }
  if (options_.checkpoint_interval > 0) checkpoint(new_chunks);
}

void Recorder::checkpoint(std::uint64_t new_chunks) {
  chunks_since_checkpoint_ += new_chunks;
  if (chunks_since_checkpoint_ < options_.checkpoint_interval) return;
  chunks_since_checkpoint_ = 0;
  obs::TraceSpan span("record.checkpoint", -1);
  try {
    store_->sync();
    obs::counter("record.checkpoints").add(1);
  } catch (const runtime::IoError& e) {
    // A failed durability barrier weakens the ≤ one-window loss guarantee
    // but must not kill the run — the appends themselves succeeded.
    // (RetryingStore never throws here; this guards bare fault stores.)
    ++checkpoint_failures_;
    obs::counter("record.checkpoint_failures").add(1);
    std::fprintf(stderr, "cdc record: checkpoint sync failed (%s)\n",
                 e.what());
  }
}

void Recorder::finalize() {
  obs::TraceSpan span("record.finalize", -1, "streams", streams_.size());
  for (auto& [key, rec] : streams_) rec->finalize(*sink_);
}

Recorder::Totals Recorder::totals() const {
  Totals totals;
  for (const auto& [key, rec] : streams_) {
    const auto& s = rec->stats();
    totals.matched_events += s.matched_events;
    totals.unmatched_events += s.unmatched_events;
    totals.moves += s.moves;
    totals.chunks += s.chunks;
    totals.stored_values += s.stored_values;
    totals.rows += s.rows;
  }
  return totals;
}

std::vector<double> Recorder::permutation_percentages() const {
  std::map<minimpi::Rank, std::pair<std::uint64_t, std::uint64_t>> by_rank;
  for (const auto& [key, rec] : streams_) {
    auto& [moves, matched] = by_rank[key.rank];
    moves += rec->stats().moves;
    matched += rec->stats().matched_events;
  }
  std::vector<double> out;
  out.reserve(by_rank.size());
  for (const auto& [rank, counts] : by_rank) {
    const auto& [moves, matched] = counts;
    out.push_back(matched > 0 ? static_cast<double>(moves) /
                                    static_cast<double>(matched)
                              : 0.0);
  }
  return out;
}

}  // namespace cdc::tool
