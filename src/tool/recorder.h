// The record-mode tool session (Figure 2, left; Figure 11 record path).
//
// Implements MiniMPI's interposition hooks: piggybacks Lamport clocks on
// sends, observes every application-level receive event, and feeds the
// per-(rank, callsite) stream recorders. Matching behaviour is passed
// through unchanged — recording never alters the run.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "clock/lamport.h"
#include "minimpi/hooks.h"
#include "runtime/storage.h"
#include "tool/frame_sink.h"
#include "tool/options.h"
#include "tool/stream_recorder.h"

namespace cdc::tool {

class Recorder : public minimpi::ToolHooks {
 public:
  /// `sink` routes sealed chunks to their encoder: null means encode
  /// inline into `store` (the seed path); pass an AsyncFrameSink to run
  /// the entropy stage on a store::CompressionService worker pool. The
  /// sink must outlive the recorder and commit into `store`.
  Recorder(int num_ranks, runtime::RecordStore* store,
           const ToolOptions& options = {}, FrameSink* sink = nullptr);

  // --- ToolHooks
  std::uint64_t on_send(minimpi::Rank sender) override;
  minimpi::SelectResult select(minimpi::Rank rank,
                               minimpi::CallsiteId callsite,
                               minimpi::MFKind kind,
                               std::span<const minimpi::Candidate> candidates,
                               std::size_t total_requests,
                               bool blocking) override;
  void on_unmatched_test(minimpi::Rank rank,
                         minimpi::CallsiteId callsite) override;
  void on_deliver(minimpi::Rank rank, minimpi::CallsiteId callsite,
                  minimpi::MFKind kind,
                  std::span<const minimpi::Completion> events) override;
  /// Parallel executor attached: switch to staged flushing. Per-rank state
  /// (clocks, digests, stream recorders) is owner-serialized by the
  /// executor's one-task-per-rank-per-window rule; the stream map itself
  /// takes a mutex on first-touch; and chunk flush/checkpoint I/O moves
  /// from on_deliver to on_window so it happens single-threaded, in
  /// canonical key order — which also makes the sealed container
  /// byte-identical for every worker count. Record byte-identity relies on
  /// the inline sink: do not pair a parallel record run with AsyncFrameSink
  /// when comparing container bytes.
  void on_parallel_start(int workers) override;
  /// Window quiesce point: flush every stream's due chunks in key order.
  void on_window(double horizon) override;

  /// Flushes every stream; call once after Simulator::run() returns.
  void finalize();

  /// Checkpoint syncs that threw IoError (see ToolOptions::
  /// checkpoint_interval; 0 with a retrying or fault-free store).
  [[nodiscard]] std::uint64_t checkpoint_failures() const noexcept {
    return checkpoint_failures_;
  }

  // --- Introspection for the evaluation harnesses.
  struct Totals {
    std::uint64_t matched_events = 0;
    std::uint64_t unmatched_events = 0;
    std::uint64_t moves = 0;
    std::uint64_t chunks = 0;
    std::uint64_t stored_values = 0;
    std::uint64_t rows = 0;
  };
  [[nodiscard]] Totals totals() const;

  /// Np / N per rank (Figure 14).
  [[nodiscard]] std::vector<double> permutation_percentages() const;

  /// Received-clock series of the clock_trace_rank (Figure 1).
  [[nodiscard]] const std::vector<std::uint64_t>& clock_trace() const {
    return clock_trace_;
  }

  /// Order-sensitive digest of every rank's receive-event stream, combined
  /// across ranks order-insensitively (per-rank order is the replayed
  /// property; cross-rank interleaving is not).
  [[nodiscard]] std::uint64_t order_digest() const;

  [[nodiscard]] const ToolOptions& options() const noexcept {
    return options_;
  }

 private:
  StreamRecorder& stream(minimpi::Rank rank, minimpi::CallsiteId callsite);
  /// Issues a store durability barrier once enough chunks have flushed.
  void checkpoint(std::uint64_t new_chunks);

  ToolOptions options_;
  runtime::RecordStore* store_;
  InlineFrameSink inline_sink_;
  FrameSink* sink_;  ///< &inline_sink_ unless the caller provided one
  /// True between on_parallel_start and finalize: flushes are deferred to
  /// on_window.
  bool staged_ = false;
  std::vector<clock::LamportClock> clocks_;
  std::mutex streams_mu_;  ///< guards the map shape only, not the streams
  std::map<runtime::StreamKey, std::unique_ptr<StreamRecorder>> streams_;
  std::vector<std::uint64_t> clock_trace_;
  std::vector<std::uint64_t> digests_;
  std::uint64_t chunks_since_checkpoint_ = 0;
  std::uint64_t checkpoint_failures_ = 0;
};

}  // namespace cdc::tool
