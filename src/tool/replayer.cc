#include "tool/replayer.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/check.h"

namespace cdc::tool {

Replayer::Replayer(int num_ranks, const runtime::RecordStore* store,
                   const ToolOptions& options)
    : options_(options),
      store_(store),
      clocks_(static_cast<std::size_t>(num_ranks)),
      digests_(static_cast<std::size_t>(num_ranks),
               0xcbf29ce484222325ull) {
  CDC_CHECK(store != nullptr && num_ranks >= 1);
  CDC_CHECK_MSG(options.codec == RecordCodec::kCdcFull,
                "replay is implemented for the CDC codec");
  // Structural identification needs per-callsite streams: within one
  // callsite, per-sender sightings are clock-ordered arrival prefixes;
  // merged streams interleave request classes and break that property.
  CDC_CHECK_MSG(options.identify_callsites,
                "replay requires MF identification (identify_callsites)");
}

namespace {
std::uint64_t fnv_mix(std::uint64_t digest, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    digest ^= (value >> (8 * i)) & 0xff;
    digest *= 0x100000001b3ull;
  }
  return digest;
}
}  // namespace

std::uint64_t Replayer::order_digest() const {
  std::uint64_t combined = 0;
  for (const std::uint64_t d : digests_) combined ^= d;
  return combined;
}

StreamReplayer& Replayer::stream(minimpi::Rank rank,
                                 minimpi::CallsiteId callsite) {
  const runtime::StreamKey key{
      rank, options_.identify_callsites ? callsite : 0};
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    // Windowed replay reads only epochs [0, hi): an epoch-indexed store
    // seeks and never touches the bytes past the window.
    auto bytes = windowed_ ? store_->read_prefix(key, window_hi_)
                           : store_->read(key);
    it = streams_
             .emplace(key, std::make_unique<StreamReplayer>(
                               key, std::move(bytes), window_hi_))
             .first;
  }
  return *it->second;
}

void Replayer::replay_window(std::uint64_t epoch_lo,
                             std::uint64_t epoch_hi) {
  CDC_CHECK_MSG(streams_.empty(),
                "replay_window must be configured before the run starts");
  CDC_CHECK_MSG(epoch_lo < epoch_hi, "empty replay window");
  windowed_ = true;
  window_lo_ = epoch_lo;
  window_hi_ = epoch_hi;
  // A truncated record is a partial record: the first stream to hit its
  // window boundary must release the rest (see select()), so windowed
  // replay implies the partial-record machinery.
  options_.partial_record = true;
}

std::map<runtime::StreamKey, Replayer::WindowSlice> Replayer::window_slices()
    const {
  CDC_CHECK_MSG(windowed_, "window_slices without replay_window");
  std::map<runtime::StreamKey, WindowSlice> slices;
  for (const auto& [key, rep] : streams_) {
    WindowSlice slice;
    slice.end = rep->confirmed_events();
    slice.begin = std::min(rep->events_loaded_before(window_lo_), slice.end);
    slices.emplace(key, slice);
  }
  return slices;
}

std::uint64_t Replayer::on_send(minimpi::Rank sender) {
  return clocks_[static_cast<std::size_t>(sender)].on_send();
}

minimpi::SelectResult Replayer::select(
    minimpi::Rank rank, minimpi::CallsiteId callsite, minimpi::MFKind kind,
    std::span<const minimpi::Candidate> candidates,
    std::size_t total_requests, bool blocking) {
  if (released_)
    return ToolHooks::select(rank, callsite, kind, candidates,
                             total_requests, blocking);
  StreamReplayer& rep = stream(rank, callsite);

  // Sight newly visible candidates (Definition 8's observed set B).
  for (const minimpi::Candidate& c : candidates)
    if (c.fresh) rep.sight(clock::MessageId{c.source, c.piggyback});

  const StreamReplayer::Decision decision = rep.decide(kind, candidates);
  minimpi::SelectResult result;
  switch (decision.kind) {
    case StreamReplayer::Decision::Kind::kPassthrough:
      // A partial record is a prefix, not a causally consistent cut: the
      // first stream to run dry releases EVERY stream to passthrough.
      // Gating the others further would compare free-running Lamport
      // clocks against recorded ones and mis-identify messages.
      if (options_.partial_record && !released_) {
        released_ = true;
        obs::trace_instant("replay.release_passthrough", rank);
      }
      return ToolHooks::select(rank, callsite, kind, candidates,
                               total_requests, blocking);
    case StreamReplayer::Decision::Kind::kNoMatch:
      result.action = minimpi::SelectResult::Action::kNoMatch;
      return result;
    case StreamReplayer::Decision::Kind::kBlock: {
      // Even Test-family calls wait for the recorded message (§3.6).
      static obs::Counter& obs_gated = obs::counter("replay.gated_blocks");
      obs_gated.add(1);
      result.action = minimpi::SelectResult::Action::kBlock;
      return result;
    }
    case StreamReplayer::Decision::Kind::kDeliver: {
      static obs::Counter& obs_delivers =
          obs::counter("replay.ordered_deliveries");
      obs_delivers.add(decision.messages.size());
      result.action = minimpi::SelectResult::Action::kDeliver;
      result.indices.reserve(decision.messages.size());
      for (const clock::MessageId& id : decision.messages) {
        std::size_t index = candidates.size();
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          if (candidates[i].source == id.sender &&
              candidates[i].piggyback == id.clock) {
            index = i;
            break;
          }
        }
        CDC_CHECK_MSG(index < candidates.size(),
                      "selected message vanished from the candidate list");
        result.indices.push_back(index);
      }
      return result;
    }
  }
  return result;
}

void Replayer::on_unmatched_test(minimpi::Rank rank,
                                 minimpi::CallsiteId callsite) {
  // Unmatched tests are replayed events, so ticking here keeps the clock
  // replayable and identical to record mode.
  if (options_.tick_on_unmatched_test)
    clocks_[static_cast<std::size_t>(rank)].tick();
  if (released_) return;
  StreamReplayer& rep = stream(rank, callsite);
  // In passthrough mode (record exhausted) there is nothing to confirm.
  if (!rep.exhausted()) rep.confirm_unmatched();
}

void Replayer::on_deliver(minimpi::Rank rank, minimpi::CallsiteId callsite,
                          minimpi::MFKind /*kind*/,
                          std::span<const minimpi::Completion> events) {
  auto& clock = clocks_[static_cast<std::size_t>(rank)];
  auto& digest = digests_[static_cast<std::size_t>(rank)];
  for (const minimpi::Completion& e : events) {
    clock.on_receive(e.piggyback);
    digest = fnv_mix(digest, callsite);
    digest = fnv_mix(digest, static_cast<std::uint64_t>(e.source));
    digest = fnv_mix(digest, e.piggyback);
  }
  if (released_) return;
  StreamReplayer& rep = stream(rank, callsite);
  if (!rep.exhausted()) rep.confirm_delivered(events);
}

void Replayer::on_deadlock() {
  std::fprintf(stderr, "cdc replayer state at deadlock:\n");
  for (const auto& [key, rep] : streams_)
    if (!rep->exhausted()) rep->dump_state();
}

bool Replayer::on_stall() {
  if (!options_.partial_record || released_) return false;
  // The recorded next message of some stream will never arrive (killed
  // sender / truncated record). Every gated prefix delivered so far is
  // verified; release the rest to passthrough so survivors finish.
  released_ = true;
  obs::counter("replay.stall_releases").add(1);
  obs::trace_instant("replay.stall_release", -1);
  return true;
}

Replayer::Totals Replayer::totals() const {
  Totals totals;
  for (const auto& [key, rep] : streams_) {
    totals.replayed_events += rep->stats().replayed_events;
    totals.replayed_unmatched += rep->stats().replayed_unmatched;
    totals.chunks += rep->stats().chunks;
  }
  return totals;
}

std::map<runtime::StreamKey, StreamReplayer::Stats> Replayer::stream_totals()
    const {
  std::map<runtime::StreamKey, StreamReplayer::Stats> totals;
  for (const auto& [key, rep] : streams_) totals.emplace(key, rep->stats());
  return totals;
}

bool Replayer::fully_replayed() const {
  for (const auto& [key, rep] : streams_)
    if (!rep->exhausted()) return false;
  return true;
}

}  // namespace cdc::tool
