// The replay-mode tool session (Figure 2, right; Figure 11 replay path).
//
// Gates MiniMPI's matching functions so that every MF call at every rank
// surfaces exactly the receive events of the recorded run, in the recorded
// order — regardless of the replay run's own message timing. Lamport
// clocks are maintained identically to record mode, which (Theorem 2)
// makes piggybacked clocks — and hence the reconstructed reference
// orders — identical between the two runs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "clock/lamport.h"
#include "minimpi/hooks.h"
#include "runtime/storage.h"
#include "tool/options.h"
#include "tool/stream_replayer.h"

namespace cdc::tool {

class Replayer : public minimpi::ToolHooks {
 public:
  Replayer(int num_ranks, const runtime::RecordStore* store,
           const ToolOptions& options = {});

  std::uint64_t on_send(minimpi::Rank sender) override;
  minimpi::SelectResult select(minimpi::Rank rank,
                               minimpi::CallsiteId callsite,
                               minimpi::MFKind kind,
                               std::span<const minimpi::Candidate> candidates,
                               std::size_t total_requests,
                               bool blocking) override;
  void on_unmatched_test(minimpi::Rank rank,
                         minimpi::CallsiteId callsite) override;
  void on_deliver(minimpi::Rank rank, minimpi::CallsiteId callsite,
                  minimpi::MFKind kind,
                  std::span<const minimpi::Completion> events) override;
  void on_deadlock() override;
  /// Degraded-mode gap bridging: when the simulator stalls (a recorded
  /// next message that will never arrive — its sender was killed, or the
  /// record is truncated mid-epoch), a partial-record replayer releases
  /// all gating so the surviving ranks run to completion in passthrough.
  /// Returns true exactly once; full replay keeps the deadlock abort.
  bool on_stall() override;

  /// Configures windowed replay of epochs [epoch_lo, epoch_hi). Must be
  /// called before the run starts (before any hook fires). Every stream's
  /// record is truncated at its epoch_hi-th chunk; when the first stream
  /// exhausts its window, the partial-record release machinery frees the
  /// whole run to passthrough (gating past a truncation point is unsound —
  /// see select()). The run still executes the application from the start;
  /// what the window buys is that no stream decodes frames past epoch_hi —
  /// with an epoch-indexed container the bytes past the window need not
  /// even be read — and window_slices() afterwards names the verified
  /// [lo, hi) portion of each stream's trace.
  void replay_window(std::uint64_t epoch_lo, std::uint64_t epoch_hi);

  /// The half-open event-index range of one stream's trace that windowed
  /// replay verified against the record (events [begin, end) of the trace
  /// are the recorded order). begin corresponds to epoch_lo; end is capped
  /// by the global release — the stream that triggered it covers its full
  /// window, later streams a prefix of theirs.
  struct WindowSlice {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };
  [[nodiscard]] std::map<runtime::StreamKey, WindowSlice> window_slices()
      const;

  struct Totals {
    std::uint64_t replayed_events = 0;
    std::uint64_t replayed_unmatched = 0;
    std::uint64_t chunks = 0;
  };
  [[nodiscard]] Totals totals() const;

  /// True when every stream has consumed its record completely.
  [[nodiscard]] bool fully_replayed() const;

  /// True once a partial-record replay has released every stream to
  /// passthrough (see ToolOptions::partial_record). Always false otherwise.
  [[nodiscard]] bool released() const noexcept { return released_; }

  /// Per-stream replay progress — in partial-record mode, the verified
  /// prefix length of each stream (events gated by the record before the
  /// global release), the input to support/oracle.h check_prefix.
  [[nodiscard]] std::map<runtime::StreamKey, StreamReplayer::Stats>
  stream_totals() const;

  /// Same digest as Recorder::order_digest(): equal digests mean the
  /// replay surfaced identical per-rank receive-event streams.
  [[nodiscard]] std::uint64_t order_digest() const;

 private:
  StreamReplayer& stream(minimpi::Rank rank, minimpi::CallsiteId callsite);

  ToolOptions options_;
  const runtime::RecordStore* store_;
  std::vector<clock::LamportClock> clocks_;
  std::map<runtime::StreamKey, std::unique_ptr<StreamReplayer>> streams_;
  std::vector<std::uint64_t> digests_;
  bool released_ = false;  ///< partial-record global release fired
  std::uint64_t window_lo_ = 0;
  std::uint64_t window_hi_ = StreamReplayer::kNoChunkLimit;
  bool windowed_ = false;
};

}  // namespace cdc::tool
