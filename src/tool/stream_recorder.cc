#include "tool/stream_recorder.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "record/baseline.h"
#include "record/chunk.h"
#include "record/epoch.h"
#include "tool/frame.h"

namespace cdc::tool {

namespace {

// Raw footprint of one receive event before any codec runs: the five
// per-row values of the Figure 4 baseline format, 8 bytes each.
constexpr std::uint64_t kRawEventBytes = 5 * 8;

/// Handle bundle for one codec stage's counters; resolved once per stage
/// (registration takes a lock, recording does not).
struct StageMetrics {
  obs::Counter& calls;
  obs::Counter& ns;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& values;

  explicit StageMetrics(const std::string& prefix)
      : calls(obs::counter(prefix + ".calls")),
        ns(obs::counter(prefix + ".ns")),
        bytes_in(obs::counter(prefix + ".bytes_in")),
        bytes_out(obs::counter(prefix + ".bytes_out")),
        values(obs::counter(prefix + ".values")) {}

  void add(std::uint64_t t_ns, std::uint64_t in, std::uint64_t out,
           std::uint64_t vals = 0) noexcept {
    calls.add(1);
    ns.add(t_ns);
    bytes_in.add(in);
    bytes_out.add(out);
    if (vals > 0) values.add(vals);
  }
};

StageMetrics& stage_re() {
  static StageMetrics s("record.stage.re");
  return s;
}
StageMetrics& stage_pe() {
  static StageMetrics s("record.stage.pe");
  return s;
}
StageMetrics& stage_lp() {
  static StageMetrics s("record.stage.lp");
  return s;
}

}  // namespace

void StreamRecorder::flush(FrameSink& sink, std::size_t max_matched,
                           bool force_all) {
  static obs::Counter& obs_chunks = obs::counter("record.chunks");
  static obs::Counter& obs_matched = obs::counter("record.events.matched");
  static obs::Counter& obs_unmatched =
      obs::counter("record.events.unmatched");
  static obs::Histogram& obs_flush_events =
      obs::histogram("record.epoch.flush_events");
  static obs::Histogram& obs_flush_ns =
      obs::histogram("record.epoch.flush_ns");
  const obs::Stopwatch flush_timer;
  obs::TraceSpan flush_span("record.flush", key_.rank, "callsite",
                            key_.callsite);
  std::uint64_t flushed_matched = 0;

  // Epoch enforcement: only cut where the per-sender clock frontier is
  // clean; CDC variants defer otherwise. The baseline codecs have no epoch
  // machinery (a traditional tool flushes blindly), but cutting them at
  // the same points keeps the Figure 13 size comparison apples-to-apples.
  record::PendingMins pending_min;
  for (const auto& [sender, clocks] : pending_)
    if (!clocks.empty()) pending_min.emplace(sender, *clocks.begin());

  while (true) {
    std::size_t cut =
        record::find_clean_cut(buffer_, pending_min, max_matched);
    std::size_t cut_matched = cut;
    if (force_all) {
      // Take every buffered event, matched or not.
      cut_matched = 0;
      for (const auto& e : buffer_) cut_matched += e.flag;
      cut = cut_matched;
      if (buffer_.empty()) break;
    } else if (cut == 0) {
      break;  // no clean cut yet — keep buffering
    }

    std::vector<record::ReceiveEvent> events =
        record::take_cut(buffer_, cut_matched);
    buffered_matched_ -= cut_matched;
    if (force_all && !buffer_.empty()) {
      // take_cut leaves trailing unmatched events; fold them in.
      events.insert(events.end(), buffer_.begin(), buffer_.end());
      buffer_.clear();
    }
    if (events.empty()) break;

    obs_matched.add(cut_matched);
    obs_unmatched.add(events.size() - cut_matched);
    obs_flush_events.record(cut_matched);
    flushed_matched += cut_matched;
    const std::uint64_t raw_bytes = events.size() * kRawEventBytes;

    // Build the raw chunk payload; the sink decides where and on which
    // thread the entropy stage runs.
    FrameJob job;
    job.codec = static_cast<std::uint8_t>(options_.codec);
    job.level = options_.level;
    job.epoch = runtime::EpochMeta{cut_matched,
                                   events.size() - cut_matched};
    switch (options_.codec) {
      case RecordCodec::kBaselineRaw:
      case RecordCodec::kBaselineGzip: {
        const auto rows = record::to_rows(events);
        stats_.rows += rows.size();
        stats_.stored_values += 5 * rows.size();
        job.meta = rows.size();
        job.compress = options_.codec != RecordCodec::kBaselineRaw;
        job.payload = record::baseline_serialize(rows);
        break;
      }
      case RecordCodec::kCdcRe: {
        const obs::Stopwatch sw_re;
        const auto tables = record::build_tables(events);
        const std::uint64_t re_values = tables.value_count();
        stage_re().add(sw_re.ns(), raw_bytes, re_values * 8, re_values);
        stats_.stored_values += re_values;
        const obs::Stopwatch sw_lp;
        support::ByteWriter payload;
        record::write_tables_re(payload, tables);
        job.payload = std::move(payload).take();
        stage_lp().add(sw_lp.ns(), re_values * 8, job.payload.size());
        break;
      }
      case RecordCodec::kCdcFull: {
        const obs::Stopwatch sw_re;
        const auto tables = record::build_tables(events);
        const std::uint64_t re_values = tables.value_count();
        stage_re().add(sw_re.ns(), raw_bytes, re_values * 8, re_values);
        const obs::Stopwatch sw_pe;
        const auto chunk = record::encode_chunk(tables);
        const std::uint64_t pe_values = chunk.value_count();
        stage_pe().add(sw_pe.ns(), re_values * 8, pe_values * 8,
                       pe_values);
        stats_.moves += chunk.moves.size();
        stats_.stored_values += pe_values;
        const obs::Stopwatch sw_lp;
        support::ByteWriter payload;
        record::write_chunk(payload, chunk);
        job.payload = std::move(payload).take();
        stage_lp().add(sw_lp.ns(), pe_values * 8, job.payload.size());
        break;
      }
    }
    sink.submit(key_, std::move(job));
    ++stats_.chunks;
    obs_chunks.add(1);

    if (force_all) break;
    if (buffered_matched_ < options_.chunk_target) break;
  }

  obs_flush_ns.record(flush_timer.ns());
  flush_span.set_arg(flushed_matched);
}

}  // namespace cdc::tool
