#include "tool/stream_recorder.h"

#include "record/baseline.h"
#include "record/chunk.h"
#include "record/epoch.h"
#include "tool/frame.h"

namespace cdc::tool {

void StreamRecorder::flush(FrameSink& sink, std::size_t max_matched,
                           bool force_all) {
  // Epoch enforcement: only cut where the per-sender clock frontier is
  // clean; CDC variants defer otherwise. The baseline codecs have no epoch
  // machinery (a traditional tool flushes blindly), but cutting them at
  // the same points keeps the Figure 13 size comparison apples-to-apples.
  record::PendingMins pending_min;
  for (const auto& [sender, clocks] : pending_)
    if (!clocks.empty()) pending_min.emplace(sender, *clocks.begin());

  while (true) {
    std::size_t cut =
        record::find_clean_cut(buffer_, pending_min, max_matched);
    std::size_t cut_matched = cut;
    if (force_all) {
      // Take every buffered event, matched or not.
      cut_matched = 0;
      for (const auto& e : buffer_) cut_matched += e.flag;
      cut = cut_matched;
      if (buffer_.empty()) return;
    } else if (cut == 0) {
      return;  // no clean cut yet — keep buffering
    }

    std::vector<record::ReceiveEvent> events =
        record::take_cut(buffer_, cut_matched);
    buffered_matched_ -= cut_matched;
    if (force_all && !buffer_.empty()) {
      // take_cut leaves trailing unmatched events; fold them in.
      events.insert(events.end(), buffer_.begin(), buffer_.end());
      buffer_.clear();
    }
    if (events.empty()) return;

    // Build the raw chunk payload; the sink decides where and on which
    // thread the entropy stage runs.
    FrameJob job;
    job.codec = static_cast<std::uint8_t>(options_.codec);
    job.level = options_.level;
    switch (options_.codec) {
      case RecordCodec::kBaselineRaw:
      case RecordCodec::kBaselineGzip: {
        const auto rows = record::to_rows(events);
        stats_.rows += rows.size();
        stats_.stored_values += 5 * rows.size();
        job.meta = rows.size();
        job.compress = options_.codec != RecordCodec::kBaselineRaw;
        job.payload = record::baseline_serialize(rows);
        break;
      }
      case RecordCodec::kCdcRe: {
        const auto tables = record::build_tables(events);
        stats_.stored_values += tables.value_count();
        support::ByteWriter payload;
        record::write_tables_re(payload, tables);
        job.payload = std::move(payload).take();
        break;
      }
      case RecordCodec::kCdcFull: {
        const auto tables = record::build_tables(events);
        const auto chunk = record::encode_chunk(tables);
        stats_.moves += chunk.moves.size();
        stats_.stored_values += chunk.value_count();
        support::ByteWriter payload;
        record::write_chunk(payload, chunk);
        job.payload = std::move(payload).take();
        break;
      }
    }
    sink.submit(key_, std::move(job));
    ++stats_.chunks;

    if (force_all) return;
    if (buffered_matched_ < options_.chunk_target) return;
  }
}

}  // namespace cdc::tool
