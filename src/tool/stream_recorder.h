// Per-(rank, callsite) record stream: event buffering, pending-message
// tracking for epoch enforcement, chunk flushing, and codec selection.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "clock/lamport.h"
#include "record/event.h"
#include "runtime/storage.h"
#include "tool/frame_sink.h"
#include "tool/options.h"

namespace cdc::tool {

class StreamRecorder {
 public:
  struct Stats {
    std::uint64_t matched_events = 0;
    std::uint64_t unmatched_events = 0;
    std::uint64_t moves = 0;      ///< permutated messages Np (Figure 14)
    std::uint64_t chunks = 0;
    std::uint64_t stored_values = 0;  ///< paper's value accounting
    std::uint64_t rows = 0;           ///< Figure 4 rows written (baselines)
  };

  StreamRecorder(runtime::StreamKey key, const ToolOptions& options)
      : key_(key), options_(options) {}

  /// A Test-family call at this callsite reported flag = false.
  void on_unmatched_test() {
    buffer_.push_back(record::ReceiveEvent{false, false, -1, 0});
    ++stats_.unmatched_events;
  }

  /// A message was delivered at this callsite.
  void on_delivered(const record::ReceiveEvent& event) {
    buffer_.push_back(event);
    ++buffered_matched_;
    ++stats_.matched_events;
    // The message is no longer pending.
    const auto it = pending_.find(event.rank);
    if (it != pending_.end()) {
      it->second.erase(event.clock);
      if (it->second.empty()) pending_.erase(it);
    }
  }

  /// A matched-but-undelivered message was observed at an MF poll.
  /// Per-sender sightings arrive in clock order within one callsite
  /// stream, so anything at or below the last sighted clock is a
  /// re-sighting and is skipped without touching the pending set.
  void on_candidate(const clock::MessageId& id) {
    auto [it, inserted] = last_sighted_.emplace(id.sender, id.clock);
    if (!inserted) {
      if (id.clock <= it->second) return;
      it->second = id.clock;
    }
    pending_[id.sender].insert(id.clock);
  }

  /// Flushes a chunk if enough matched events are buffered and a clean
  /// epoch cut exists (§3.5).
  void flush_if_due(FrameSink& sink) {
    if (buffered_matched_ < options_.chunk_target) return;
    flush(sink, options_.chunk_target, /*force_all=*/false);
  }

  /// Convenience overload: encode inline into `store` (the seed path).
  void flush_if_due(runtime::RecordStore& store) {
    InlineFrameSink sink(&store);
    flush_if_due(sink);
  }

  /// Flushes everything remaining (end of run: pending messages will never
  /// be delivered and no longer constrain the cut).
  void finalize(FrameSink& sink) {
    pending_.clear();
    flush(sink, buffer_.size(), /*force_all=*/true);
  }

  void finalize(runtime::RecordStore& store) {
    InlineFrameSink sink(&store);
    finalize(sink);
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const runtime::StreamKey& key() const noexcept { return key_; }

 private:
  void flush(FrameSink& sink, std::size_t max_matched, bool force_all);

  runtime::StreamKey key_;
  ToolOptions options_;
  std::vector<record::ReceiveEvent> buffer_;
  std::size_t buffered_matched_ = 0;
  std::map<std::int32_t, std::set<std::uint64_t>> pending_;
  std::map<std::int32_t, std::uint64_t> last_sighted_;
  Stats stats_;
};

}  // namespace cdc::tool
