#include "tool/stream_replayer.h"

#include <algorithm>
#include <cstdio>

#include "support/check.h"
#include "tool/frame.h"
#include "tool/options.h"

namespace cdc::tool {

StreamReplayer::StreamReplayer(runtime::StreamKey key,
                               std::vector<std::uint8_t> bytes,
                               std::uint64_t max_chunks)
    : key_(key), bytes_(std::move(bytes)), max_chunks_(max_chunks) {
  frames_done_ = bytes_.empty();
  load_next_chunk_if_needed();
}

void StreamReplayer::load_next_chunk_if_needed() {
  while (chunk_done_ && !frames_done_) {
    if (stats_.chunks >= max_chunks_) {
      // Window boundary: the record continues, but the replay's view of it
      // ends here — identical to a record that stops at this epoch.
      frames_done_ = true;
      break;
    }
    if (cursor_ == bytes_.size()) {
      frames_done_ = true;
      break;
    }
    support::ByteReader reader(
        std::span<const std::uint8_t>{bytes_}.subspan(cursor_));
    auto frame = read_frame(reader);
    CDC_CHECK_MSG(frame.has_value(), "corrupt record frame during replay");
    cursor_ += reader.position();
    CDC_CHECK_MSG(frame->codec ==
                      static_cast<std::uint8_t>(RecordCodec::kCdcFull),
                  "replay requires CDC-encoded record data");
    support::ByteReader payload(frame->payload);
    auto parsed = record::read_chunk(payload);
    CDC_CHECK_MSG(parsed.has_value(), "corrupt CDC chunk during replay");
    chunk_ = std::move(*parsed);
    observed_ = record::observed_reference_indices(chunk_);
    with_next_.clear();
    with_next_.insert(chunk_.with_next.begin(), chunk_.with_next.end());
    runs_.assign(chunk_.unmatched.begin(), chunk_.unmatched.end());
    run_consumed_ = 0;
    next_pos_ = 0;
    chunk_done_ = observed_.empty() && runs_.empty();
    epoch_.clear();
    for (const auto& entry : chunk_.epoch)
      epoch_.emplace(entry.sender, entry.clock);
    ++stats_.chunks;
    std::uint64_t chunk_events = chunk_.num_matched;
    for (const record::UnmatchedRun& run : chunk_.unmatched)
      chunk_events += run.count;
    chunk_events_.push_back(chunk_events);

    // Reference index -> (sender, per-sender occurrence).
    CDC_CHECK_MSG(chunk_.ref_senders.size() == chunk_.num_matched,
                  "chunk sender column length mismatch");
    ref_occurrence_.clear();
    ref_occurrence_.reserve(chunk_.ref_senders.size());
    std::map<std::int32_t, std::uint32_t> occurrence;
    for (const std::int32_t sender : chunk_.ref_senders)
      ref_occurrence_.emplace_back(sender, occurrence[sender]++);

    // Re-classify messages that ran off earlier epoch lines.
    chunk_arrivals_.clear();
    auto pool = std::move(holdover_);
    holdover_.clear();
    for (const clock::MessageId& id : pool) classify(id);
  }
  if (chunk_done_ && frames_done_) {
    CDC_CHECK_MSG(runs_.empty() && next_pos_ >= observed_.size(),
                  "record stream ended mid-chunk");
  }
}

void StreamReplayer::classify(const clock::MessageId& id) {
  const auto epoch_it = epoch_.find(id.sender);
  if (!chunk_done_ && epoch_it != epoch_.end() &&
      id.clock <= epoch_it->second) {
    auto& clocks = chunk_arrivals_[id.sender];
    // Per-sender sightings arrive in clock order (channel monotonicity).
    CDC_CHECK_MSG(clocks.empty() || clocks.back() < id.clock,
                  "out-of-order sighting within a sender channel");
    clocks.push_back(id.clock);
  } else {
    holdover_.insert(id);
  }
}

void StreamReplayer::sight(const clock::MessageId& id) {
  auto [it, inserted] = last_sighted_.emplace(id.sender, id.clock);
  if (!inserted) {
    if (id.clock <= it->second) return;  // already sighted
    it->second = id.clock;
  }
  classify(id);
}

bool StreamReplayer::identify(std::uint32_t ref_index,
                              clock::MessageId& out) const {
  const auto& [sender, occurrence] = ref_occurrence_[ref_index];
  const auto it = chunk_arrivals_.find(sender);
  if (it == chunk_arrivals_.end() || it->second.size() <= occurrence)
    return false;
  out = clock::MessageId{sender, it->second[occurrence]};
  return true;
}

StreamReplayer::Decision StreamReplayer::decide(
    minimpi::MFKind kind, std::span<const minimpi::Candidate> candidates) {
  const auto available = [&](const clock::MessageId& id) {
    for (const minimpi::Candidate& c : candidates)
      if (c.source == id.sender && c.piggyback == id.clock) return true;
    return false;
  };
  load_next_chunk_if_needed();
  Decision decision;
  if (exhausted()) {
    decision.kind = Decision::Kind::kPassthrough;
    return decision;
  }

  // A recorded run of unmatched tests at this position?
  if (!runs_.empty() && runs_.front().index == next_pos_) {
    CDC_CHECK_MSG(!minimpi::is_blocking(kind),
                  "replay divergence: record expects an unmatched test but "
                  "the application issued a Wait-family call");
    decision.kind = Decision::Kind::kNoMatch;
    return decision;
  }

  CDC_CHECK_MSG(next_pos_ < observed_.size(),
                "replay position ran past the chunk");

  // The with_next group starting at the current position.
  std::vector<std::uint64_t> group = {next_pos_};
  while (with_next_.contains(group.back())) group.push_back(group.back() + 1);
  CDC_CHECK_MSG(group.size() == 1 || minimpi::is_multi_delivery(kind),
                "replay divergence: recorded message group cannot be "
                "delivered by a single-delivery MF call");

  decision.messages.reserve(group.size());
  for (const std::uint64_t pos : group) {
    CDC_CHECK_MSG(pos < observed_.size(),
                  "with_next group exceeds chunk bounds");
    clock::MessageId id;
    if (!identify(observed_[pos], id) || !available(id)) {
      decision.kind = Decision::Kind::kBlock;
      decision.messages.clear();
      return decision;
    }
    decision.messages.push_back(id);
  }
  decision.kind = Decision::Kind::kDeliver;
  return decision;
}

void StreamReplayer::confirm_unmatched() {
  CDC_CHECK(!runs_.empty() && runs_.front().index == next_pos_);
  ++run_consumed_;
  ++stats_.replayed_unmatched;
  if (run_consumed_ == runs_.front().count) {
    runs_.pop_front();
    run_consumed_ = 0;
  }
  if (next_pos_ >= observed_.size() && runs_.empty()) {
    chunk_done_ = true;
    load_next_chunk_if_needed();
  }
}

void StreamReplayer::confirm_delivered(
    std::span<const minimpi::Completion> events) {
  for (const minimpi::Completion& e : events) {
    CDC_CHECK_MSG(next_pos_ < observed_.size(),
                  "delivery past the end of the recorded chunk");
    clock::MessageId expected;
    CDC_CHECK_MSG(identify(observed_[next_pos_], expected),
                  "delivered message was never identified");
    CDC_CHECK_MSG(expected.sender == e.source &&
                      expected.clock == e.piggyback,
                  "replay delivered a message that differs from the record");
    ++next_pos_;
    ++stats_.replayed_events;
  }
  if (next_pos_ >= observed_.size() && runs_.empty()) {
    chunk_done_ = true;
    load_next_chunk_if_needed();
  }
}

void StreamReplayer::dump_state() const {
  std::fprintf(stderr,
               "  stream(rank=%d, cs=%u): chunk#%llu pos=%llu/%zu runs=%zu "
               "run_consumed=%llu holdover=%zu%s%s\n",
               key_.rank, key_.callsite,
               static_cast<unsigned long long>(stats_.chunks),
               static_cast<unsigned long long>(next_pos_), observed_.size(),
               runs_.size(), static_cast<unsigned long long>(run_consumed_),
               holdover_.size(), chunk_done_ ? " chunk_done" : "",
               frames_done_ ? " frames_done" : "");
  if (next_pos_ < observed_.size()) {
    const std::uint32_t ref = observed_[next_pos_];
    const auto& [sender, occurrence] = ref_occurrence_[ref];
    const auto it = chunk_arrivals_.find(sender);
    const std::size_t have =
        it != chunk_arrivals_.end() ? it->second.size() : 0;
    std::fprintf(stderr,
                 "    next ref %u = occurrence %u of sender %d "
                 "(%zu sighted)\n",
                 ref, occurrence, sender, have);
  }
}

}  // namespace cdc::tool
