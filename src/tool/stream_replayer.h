// Per-(rank, callsite) replay stream (§3.6, §5).
//
// The record stores no message clocks — replay identifies each recorded
// receive structurally: reference index j of the current chunk means "the
// k-th chunk message from sender s" (k, s from the chunk's reference-order
// sender column). Because per-channel clocks are strictly increasing, the
// sighted messages from a sender always form a prefix of that sender's
// chunk messages, so the k-th sighted arrival IS the k-th chunk message —
// identification needs no clock-frontier reasoning. A release therefore
// waits only for the arrival of the specific messages it delivers
// (Axiom 1 (ii)), which Theorem 1's induction guarantees will happen; the
// epoch line classifies each sighted message into the current chunk
// (clock <= epoch[sender]) or a later one ("runs off the epoch line",
// §3.5).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "clock/lamport.h"
#include "minimpi/types.h"
#include "record/chunk.h"
#include "runtime/storage.h"
#include "support/binary.h"

namespace cdc::tool {

class StreamReplayer {
 public:
  /// What the current MF call should do at this callsite.
  struct Decision {
    enum class Kind : std::uint8_t {
      kDeliver,      ///< release `messages` in that order
      kNoMatch,      ///< a recorded unmatched test: report flag = false
      kBlock,        ///< recorded next message not arrived yet — wait
      kPassthrough,  ///< record exhausted: default MPI behaviour
    };
    Kind kind = Kind::kPassthrough;
    std::vector<clock::MessageId> messages;
  };

  /// No chunk limit: replay the record to its end.
  static constexpr std::uint64_t kNoChunkLimit = ~std::uint64_t{0};

  /// `max_chunks` truncates the record at a chunk (= epoch) boundary: the
  /// replayer gates the first `max_chunks` chunks and then reports
  /// exhaustion, exactly as if the record ended there — the seam windowed
  /// replay uses to stop gating at epoch `hi` without decoding beyond it.
  StreamReplayer(runtime::StreamKey key, std::vector<std::uint8_t> bytes,
                 std::uint64_t max_chunks = kNoChunkLimit);

  /// Reports a matched-but-undelivered message observed at an MF poll.
  /// Idempotent across polls (per-sender sightings arrive in clock order).
  void sight(const clock::MessageId& id);

  /// Decides the current MF call's outcome given the candidates of this
  /// specific call (linear membership scans: recorded groups are small).
  Decision decide(minimpi::MFKind kind,
                  std::span<const minimpi::Candidate> candidates);

  /// Confirms that a flag=false result was surfaced to the application.
  void confirm_unmatched();

  /// Confirms deliveries in order; verifies them against the record.
  void confirm_delivered(std::span<const minimpi::Completion> events);

  [[nodiscard]] bool exhausted() const noexcept {
    return chunk_done_ && frames_done_;
  }

  struct Stats {
    std::uint64_t replayed_events = 0;
    std::uint64_t replayed_unmatched = 0;
    std::uint64_t chunks = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Application-visible events (deliveries + unmatched tests) in the
  /// first min(`chunk`, chunks loaded so far) chunks — the event-index
  /// origin of a replay window. Counts decoded chunk headers, so it is
  /// exact for every chunk the replayer has reached.
  [[nodiscard]] std::uint64_t events_loaded_before(std::uint64_t chunk) const {
    std::uint64_t total = 0;
    for (std::uint64_t c = 0; c < chunk && c < chunk_events_.size(); ++c)
      total += chunk_events_[c];
    return total;
  }
  /// Events confirmed against the record so far (the verified prefix of
  /// the stream's trace, in trace order).
  [[nodiscard]] std::uint64_t confirmed_events() const noexcept {
    return stats_.replayed_events + stats_.replayed_unmatched;
  }

  /// Writes a short progress diagnostic to stderr (deadlock dumps).
  void dump_state() const;

 private:
  void load_next_chunk_if_needed();
  void classify(const clock::MessageId& id);
  /// The message at reference index j, if its arrival has been sighted.
  [[nodiscard]] bool identify(std::uint32_t ref_index,
                              clock::MessageId& out) const;

  runtime::StreamKey key_;
  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;  ///< parse position within bytes_
  bool frames_done_ = false;
  std::uint64_t max_chunks_ = kNoChunkLimit;
  /// Trace events (matched + unmatched) per loaded chunk.
  std::vector<std::uint64_t> chunk_events_;

  // Current chunk.
  record::CdcChunk chunk_;
  std::vector<std::uint32_t> observed_;  ///< B: observed -> reference index
  /// Per reference index: (sender, per-sender occurrence).
  std::vector<std::pair<std::int32_t, std::uint32_t>> ref_occurrence_;
  std::set<std::uint64_t> with_next_;
  std::deque<record::UnmatchedRun> runs_;
  std::uint64_t run_consumed_ = 0;
  std::uint64_t next_pos_ = 0;
  bool chunk_done_ = true;
  std::map<std::int32_t, std::uint64_t> epoch_;

  // Arrival tracking.
  std::map<std::int32_t, std::uint64_t> last_sighted_;  ///< stream-global
  /// Sighted current-chunk clocks per sender, ascending (always a prefix
  /// of the sender's chunk messages).
  std::map<std::int32_t, std::vector<std::uint64_t>> chunk_arrivals_;
  /// Sighted messages that ran off the current epoch line.
  std::set<clock::MessageId, clock::ReferenceOrderLess> holdover_;

  Stats stats_;
};

}  // namespace cdc::tool
