#include <gtest/gtest.h>

#include <cmath>

#include "apps/jacobi.h"
#include "apps/mcb.h"
#include "apps/taskfarm.h"
#include "minimpi/simulator.h"

namespace cdc::apps {
namespace {

minimpi::Simulator::Config sim_config(int ranks, std::uint64_t seed) {
  minimpi::Simulator::Config c;
  c.num_ranks = ranks;
  c.noise_seed = seed;
  return c;
}

TEST(Mcb, ConservesParticleWork) {
  McbConfig config;
  config.grid_x = 2;
  config.grid_y = 2;
  config.particles_per_rank = 50;
  config.segments_per_particle = 6;

  minimpi::Simulator sim(sim_config(4, 1), nullptr);
  const McbResult result = run_mcb(sim, config);
  // Every particle is tracked for its full segment budget, independent of
  // which rank processes it.
  EXPECT_GT(result.total_tracks, 0u);
  EXPECT_GT(result.global_tally, 0.0);
  EXPECT_GT(result.tracks_per_sec, 0.0);
  EXPECT_GT(result.messages, 0u);
}

TEST(Mcb, TrackCountIndependentOfNoise) {
  McbConfig config;
  config.grid_x = 3;
  config.grid_y = 2;
  config.particles_per_rank = 30;
  config.segments_per_particle = 5;

  minimpi::Simulator sim_a(sim_config(6, 10), nullptr);
  minimpi::Simulator sim_b(sim_config(6, 20), nullptr);
  const auto a = run_mcb(sim_a, config);
  const auto b = run_mcb(sim_b, config);
  // Physics (total segments) is noise-independent; only ordering varies.
  EXPECT_EQ(a.total_tracks, b.total_tracks);
  EXPECT_NEAR(a.global_tally, b.global_tally, 1e-6 * a.global_tally);
}

TEST(Mcb, SingleRankHasNoMessagesButCompletes) {
  McbConfig config;
  config.grid_x = 1;
  config.grid_y = 1;
  config.particles_per_rank = 20;
  config.segments_per_particle = 4;

  minimpi::Simulator sim(sim_config(1, 1), nullptr);
  const auto result = run_mcb(sim, config);
  EXPECT_GT(result.total_tracks, 0u);
}

TEST(Mcb, WeakScalingIncreasesWork) {
  McbConfig small;
  small.grid_x = 2;
  small.grid_y = 1;
  small.particles_per_rank = 30;
  small.segments_per_particle = 4;
  McbConfig big = small;
  big.grid_x = 2;
  big.grid_y = 2;

  minimpi::Simulator sim_small(sim_config(2, 1), nullptr);
  minimpi::Simulator sim_big(sim_config(4, 1), nullptr);
  const auto a = run_mcb(sim_small, small);
  const auto b = run_mcb(sim_big, big);
  EXPECT_GT(b.total_tracks, a.total_tracks);
}

TEST(Jacobi, ResidualDecreasesWithIterations) {
  JacobiConfig short_run;
  short_run.grid_x = 2;
  short_run.grid_y = 2;
  short_run.local_nx = 8;
  short_run.local_ny = 8;
  short_run.iterations = 5;
  JacobiConfig long_run = short_run;
  long_run.iterations = 200;

  minimpi::Simulator sim_a(sim_config(4, 1), nullptr);
  minimpi::Simulator sim_b(sim_config(4, 1), nullptr);
  const auto a = run_jacobi(sim_a, short_run);
  const auto b = run_jacobi(sim_b, long_run);
  EXPECT_GT(a.residual, 0.0);
  EXPECT_LT(b.residual, a.residual);  // converging
}

TEST(Jacobi, MessageCountMatchesHaloStructure) {
  JacobiConfig config;
  config.grid_x = 3;
  config.grid_y = 3;
  config.local_nx = 4;
  config.local_ny = 4;
  config.iterations = 10;

  minimpi::Simulator sim(sim_config(9, 1), nullptr);
  const auto result = run_jacobi(sim, config);
  // 3x3 grid: 12 interior edges, 2 messages per edge per iteration.
  EXPECT_EQ(result.messages, 12u * 2u * 10u);
}

TEST(Jacobi, SingleColumnGrid) {
  JacobiConfig config;
  config.grid_x = 1;
  config.grid_y = 4;
  config.local_nx = 4;
  config.local_ny = 4;
  config.iterations = 8;

  minimpi::Simulator sim(sim_config(4, 2), nullptr);
  const auto result = run_jacobi(sim, config);
  EXPECT_GT(result.residual, 0.0);
}

TEST(TaskFarm, CompletesAllTasks) {
  TaskFarmConfig config;
  config.tasks = 100;
  minimpi::Simulator sim(sim_config(5, 1), nullptr);
  const auto result = run_taskfarm(sim, config);
  EXPECT_EQ(result.completed, 100u);
  EXPECT_GT(result.accumulated, 0.0);
  // Each task: one item message + one result message; plus stop markers.
  EXPECT_EQ(result.messages, 2u * 100u + 4u);
}

TEST(TaskFarm, WorkIsNoiseIndependent) {
  TaskFarmConfig config;
  config.tasks = 150;
  minimpi::Simulator sim_a(sim_config(6, 5), nullptr);
  minimpi::Simulator sim_b(sim_config(6, 6), nullptr);
  const auto a = run_taskfarm(sim_a, config);
  const auto b = run_taskfarm(sim_b, config);
  EXPECT_EQ(a.completed, b.completed);
  // Same multiset of values folded in a different order: near-equal.
  EXPECT_NEAR(a.accumulated, b.accumulated, 1e-6 * a.accumulated);
}

TEST(TaskFarm, FewerTasksThanWorkers) {
  TaskFarmConfig config;
  config.tasks = 2;
  minimpi::Simulator sim(sim_config(8, 1), nullptr);
  const auto result = run_taskfarm(sim, config);
  EXPECT_EQ(result.completed, 2u);
}

TEST(TaskFarm, SingleWorker) {
  TaskFarmConfig config;
  config.tasks = 25;
  minimpi::Simulator sim(sim_config(2, 1), nullptr);
  const auto result = run_taskfarm(sim, config);
  EXPECT_EQ(result.completed, 25u);
}

TEST(TaskFarm, ZeroTasks) {
  TaskFarmConfig config;
  config.tasks = 0;
  minimpi::Simulator sim(sim_config(4, 1), nullptr);
  const auto result = run_taskfarm(sim, config);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_DOUBLE_EQ(result.accumulated, 0.0);
}

}  // namespace
}  // namespace cdc::apps
