#include "clock/lamport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace cdc::clock {
namespace {

TEST(LamportClock, SendAttachesThenIncrements) {
  LamportClock c;
  EXPECT_EQ(c.on_send(), 0u);  // attaches current value
  EXPECT_EQ(c.value(), 1u);    // then increments (Definition 4.i)
  EXPECT_EQ(c.on_send(), 1u);
  EXPECT_EQ(c.value(), 2u);
}

TEST(LamportClock, ReceiveTakesMaxThenIncrements) {
  LamportClock c;
  c.on_receive(10);  // max(10, 0) + 1
  EXPECT_EQ(c.value(), 11u);
  c.on_receive(5);  // max(5, 11) + 1
  EXPECT_EQ(c.value(), 12u);
}

TEST(LamportClock, SuccessiveSendsCarryStrictlyIncreasingClocks) {
  // This is the property that makes (sender, clock) a unique message id.
  LamportClock c;
  ClockValue prev = c.on_send();
  for (int i = 0; i < 100; ++i) {
    c.on_receive(static_cast<ClockValue>(i % 7));
    const ClockValue next = c.on_send();
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(LamportClock, HappensBeforeImpliesSmallerClock) {
  // A send and the matching receive: fc(send) < fc(anything after recv).
  LamportClock sender;
  LamportClock receiver;
  const ClockValue attached = sender.on_send();
  receiver.on_receive(attached);
  EXPECT_GT(receiver.value(), attached);
  const ClockValue forwarded = receiver.on_send();
  EXPECT_GT(forwarded, attached);
}

TEST(ReferenceOrder, ClockFirstThenSenderRank) {
  // Definition 6: fm orders by clock, tie-broken by sender rank.
  const MessageId a{0, 2};
  const MessageId b{2, 8};
  const MessageId c{1, 8};
  const MessageId d{0, 13};
  std::vector<MessageId> ids = {d, b, a, c};
  std::sort(ids.begin(), ids.end(), ReferenceOrderLess{});
  EXPECT_EQ(ids[0], a);  // clock 2
  EXPECT_EQ(ids[1], c);  // clock 8, rank 1
  EXPECT_EQ(ids[2], b);  // clock 8, rank 2
  EXPECT_EQ(ids[3], d);  // clock 13
}

TEST(ReferenceOrder, IsStrictWeakOrder) {
  const MessageId a{1, 5};
  const MessageId b{1, 5};
  ReferenceOrderLess less;
  EXPECT_FALSE(less(a, b));
  EXPECT_FALSE(less(b, a));
  const MessageId c{2, 5};
  EXPECT_TRUE(less(a, c));
  EXPECT_FALSE(less(c, a));
}

TEST(LamportClock, ResetReturnsToZero) {
  LamportClock c;
  c.on_receive(100);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace cdc::clock
