#include "clock/vector_clock.h"

#include <gtest/gtest.h>

#include "clock/lamport.h"

namespace cdc::clock {
namespace {

TEST(VectorClock, SendAdvancesOwnComponentOnly) {
  VectorClock c(1, 3);
  const auto attached = c.on_send();
  EXPECT_EQ(attached, (std::vector<std::uint64_t>{0, 1, 0}));
  EXPECT_EQ(c.value()[1], 1u);
  EXPECT_EQ(c.value()[0], 0u);
}

TEST(VectorClock, ReceiveTakesComponentwiseMax) {
  VectorClock c(0, 3);
  const std::vector<std::uint64_t> received = {0, 5, 2};
  c.on_receive(received);
  EXPECT_EQ(c.value()[0], 1u);  // own component incremented
  EXPECT_EQ(c.value()[1], 5u);
  EXPECT_EQ(c.value()[2], 2u);
}

TEST(VectorClock, HappensBeforeIsExact) {
  // The property Lamport clocks lack: VC(a) < VC(b) iff a ≺ b.
  VectorClock a(0, 2);
  VectorClock b(1, 2);
  const auto send_a = a.on_send();    // a's event 1
  b.on_receive(send_a);               // b's event 1, after a's
  const auto send_b = b.on_send();    // b's event 2

  EXPECT_TRUE(VectorClock::happens_before(send_a, send_b));
  EXPECT_FALSE(VectorClock::happens_before(send_b, send_a));
}

TEST(VectorClock, DetectsConcurrency) {
  VectorClock a(0, 2);
  VectorClock b(1, 2);
  const auto send_a = a.on_send();
  const auto send_b = b.on_send();  // no communication between them
  EXPECT_TRUE(VectorClock::concurrent(send_a, send_b));
  // Lamport clocks cannot distinguish this case: both attach clock 0.
  LamportClock la;
  LamportClock lb;
  EXPECT_EQ(la.on_send(), lb.on_send());
}

TEST(VectorClock, PiggybackSizeGrowsWithRanks) {
  // §4.3's scalability argument, as numbers: at the paper's 3,072
  // processes a vector clock piggybacks 24 KiB per message, vs 8 bytes
  // for the Lamport clock CDC uses.
  EXPECT_EQ(VectorClock(0, 48).piggyback_bytes(), 384u);
  EXPECT_EQ(VectorClock(0, 3072).piggyback_bytes(), 24576u);
  EXPECT_EQ(sizeof(ClockValue), 8u);
}

TEST(VectorClock, LamportIsConsistentWithVectorOrder) {
  // fc(e) < fc(f) whenever e ≺ f (the one direction Lamport guarantees).
  VectorClock va(0, 2);
  VectorClock vb(1, 2);
  LamportClock la;
  LamportClock lb;

  const auto vsend = va.on_send();
  const auto lsend = la.on_send();
  vb.on_receive(vsend);
  lb.on_receive(lsend);
  const auto vreply = vb.on_send();
  const auto lreply = lb.on_send();

  ASSERT_TRUE(VectorClock::happens_before(vsend, vreply));
  EXPECT_LT(lsend, lreply);
}

}  // namespace
}  // namespace cdc::clock
