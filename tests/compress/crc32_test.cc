#include "compress/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace cdc::compress {
namespace {

std::span<const std::uint8_t> bytes_of(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s), std::strlen(s)};
}

TEST(Crc32, KnownVectors) {
  // Standard CRC-32 check values.
  EXPECT_EQ(crc32(bytes_of("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytes_of("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::vector<std::uint8_t> data(1000, 0x5a);
  const std::uint32_t oneshot = crc32(data);
  std::uint32_t incremental = 0;
  const std::span<const std::uint8_t> view{data};
  incremental = crc32_update(incremental, view.subspan(0, 137));
  incremental = crc32_update(incremental, view.subspan(137, 400));
  incremental = crc32_update(incremental, view.subspan(537));
  EXPECT_EQ(incremental, oneshot);
}

TEST(Crc32, SensitiveToSingleBitFlips) {
  std::vector<std::uint8_t> data(64, 0);
  const std::uint32_t base = crc32(data);
  for (int bit = 0; bit < 8; ++bit) {
    data[32] = static_cast<std::uint8_t>(1u << bit);
    EXPECT_NE(crc32(data), base);
  }
}

}  // namespace
}  // namespace cdc::compress
