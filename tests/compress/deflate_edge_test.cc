// Edge cases the LZ77/DEFLATE fast path could plausibly break: matches at
// the 32 KiB window boundary, far distances that take the 13-extra-bit
// code 29, overlapping copies (distance < length), the incompressible →
// stored-block fallback, empty input, and cross-thread determinism of the
// thread-local codec workspaces.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "compress/deflate.h"
#include "compress/lz77.h"
#include "support/rng.h"

namespace cdc::compress {
namespace {

constexpr DeflateLevel kAllLevels[] = {
    DeflateLevel::kStored, DeflateLevel::kFast, DeflateLevel::kDefault,
    DeflateLevel::kBest};

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.bounded(256));
  return out;
}

void expect_roundtrip_all_levels(const std::vector<std::uint8_t>& input) {
  for (const DeflateLevel level : kAllLevels) {
    const auto decoded = deflate_decompress(deflate_compress(input, level));
    ASSERT_TRUE(decoded.has_value())
        << "level " << to_string(level) << ", " << input.size() << " bytes";
    EXPECT_EQ(*decoded, input) << "level " << to_string(level);
    const auto gunzipped = gzip_decompress(gzip_compress(input, level));
    ASSERT_TRUE(gunzipped.has_value()) << "level " << to_string(level);
    EXPECT_EQ(*gunzipped, input) << "level " << to_string(level);
  }
}

// A repeat exactly one window back: distance 32768 is the largest legal
// distance, so the matcher's `pos - kWindowSize` history limit is an
// inclusive bound. Any off-by-one here either loses the match (ratio) or
// emits distance 32769 (corruption).
TEST(DeflateEdge, MatchAtExactWindowBoundary) {
  const std::vector<std::uint8_t> block = random_bytes(300, 7);
  std::vector<std::uint8_t> input = block;
  const std::vector<std::uint8_t> filler = random_bytes(32768 - 300, 8);
  input.insert(input.end(), filler.begin(), filler.end());
  input.insert(input.end(), block.begin(), block.end());  // at offset 32768

  const auto tokens = lz77_tokenize(input, lz77_params_for(DeflateLevel::kBest));
  EXPECT_EQ(lz77_expand(tokens), input);
  for (const Lz77Token& t : tokens) {
    if (t.length > 0) {
      ASSERT_LE(t.distance, 32768u);
    }
  }
  expect_roundtrip_all_levels(input);
}

// A repeat one byte beyond the window must NOT be matched at distance
// 32769 — the stream would be unrepresentable/corrupt — but the input must
// still round-trip (as literals or shorter matches).
TEST(DeflateEdge, RepeatJustOutsideWindowIsNotMatched) {
  const std::vector<std::uint8_t> block = random_bytes(300, 9);
  std::vector<std::uint8_t> input = block;
  const std::vector<std::uint8_t> filler = random_bytes(32769 - 300, 10);
  input.insert(input.end(), filler.begin(), filler.end());
  input.insert(input.end(), block.begin(), block.end());  // at offset 32769

  const auto tokens = lz77_tokenize(input, lz77_params_for(DeflateLevel::kBest));
  EXPECT_EQ(lz77_expand(tokens), input);
  for (const Lz77Token& t : tokens) {
    if (t.length > 0) {
      ASSERT_LE(t.distance, 32768u);
    }
  }
  expect_roundtrip_all_levels(input);
}

// Distances >= 24577 use distance code 29 (13 extra bits) — the widest
// fields in both the encoder's batched token emit and the distance-bucket
// table's second half.
TEST(DeflateEdge, FarDistanceCode29IsExercised) {
  const std::vector<std::uint8_t> block = random_bytes(600, 11);
  std::vector<std::uint8_t> input = block;
  const std::vector<std::uint8_t> filler = random_bytes(26000 - 600, 12);
  input.insert(input.end(), filler.begin(), filler.end());
  input.insert(input.end(), block.begin(), block.end());  // distance ~26000

  const auto tokens = lz77_tokenize(input, lz77_params_for(DeflateLevel::kBest));
  EXPECT_EQ(lz77_expand(tokens), input);
  bool saw_far_match = false;
  for (const Lz77Token& t : tokens) {
    if (t.length > 0 && t.distance >= 24577) saw_far_match = true;
  }
  EXPECT_TRUE(saw_far_match)
      << "expected at least one match with distance >= 24577";
  expect_roundtrip_all_levels(input);
}

// Overlapping copies: distance < length means inflate must copy bytes it
// has only just written (RLE-style). Cover distance 1 (pure run) and a
// short period that isn't a divisor of the match length.
TEST(DeflateEdge, OverlappingCopies) {
  expect_roundtrip_all_levels(std::vector<std::uint8_t>(10000, 0xAB));

  std::vector<std::uint8_t> period7;
  for (int i = 0; i < 9000; ++i)
    period7.push_back(static_cast<std::uint8_t>("acegikm"[i % 7]));
  const auto tokens =
      lz77_tokenize(period7, lz77_params_for(DeflateLevel::kDefault));
  EXPECT_EQ(lz77_expand(tokens), period7);
  bool saw_overlap = false;
  for (const Lz77Token& t : tokens) {
    if (t.length > 0 && t.distance < static_cast<std::uint32_t>(t.length))
      saw_overlap = true;
  }
  EXPECT_TRUE(saw_overlap) << "expected a match overlapping its own output";
  expect_roundtrip_all_levels(period7);
}

// Incompressible input must fall back to stored blocks: bounded expansion
// (5 bytes of header per <= 65535-byte stored block, plus the gzip
// wrapper) rather than a fixed-Huffman stream that inflates random bytes.
TEST(DeflateEdge, IncompressibleFallsBackToStored) {
  const std::vector<std::uint8_t> input = random_bytes(200000, 13);
  for (const DeflateLevel level : kAllLevels) {
    const auto compressed = deflate_compress(input, level);
    // 5 bytes per stored-block header; the encoder may split on its
    // token-batch granularity rather than the 65535-byte maximum, so
    // allow one extra header per 32 KiB plus trailer slack.
    const std::size_t stored_bound =
        input.size() + 5 * (input.size() / 32768 + 2) + 16;
    EXPECT_LE(compressed.size(), stored_bound) << "level " << to_string(level);
    const auto decoded = deflate_decompress(compressed);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, input);
  }
}

TEST(DeflateEdge, EmptyInput) {
  expect_roundtrip_all_levels({});
  for (const DeflateLevel level : kAllLevels) {
    // An empty gzip member is still a full header + trailer.
    EXPECT_GE(gzip_compress({}, level).size(), 18u);
  }
}

// The compressor keeps per-thread workspaces (hash chains, token buffers,
// bit writers). Determinism contract: the output bytes depend only on
// (input, level) — never on which thread ran, what it compressed before,
// or how its workspace was warmed. This is what lets the parallel
// compression service produce bit-identical containers to the inline path.
TEST(DeflateEdge, EightThreadsProduceIdenticalBytesPerLevel) {
  // Record-like corpus: mostly zeros with small values, moderately long.
  support::Xoshiro256 rng(14);
  std::vector<std::uint8_t> input(262144);
  for (auto& b : input)
    b = rng.bounded(100) < 85 ? 0 : static_cast<std::uint8_t>(rng.bounded(6));

  for (const DeflateLevel level : kAllLevels) {
    const auto expected_deflate = deflate_compress(input, level);
    const auto expected_gzip = gzip_compress(input, level);
    std::vector<std::vector<std::uint8_t>> deflate_out(8), gzip_out(8);
    {
      std::vector<std::jthread> threads;
      for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
          // Warm this thread's workspace with unrelated data first, so the
          // test also catches state leaking across compressions.
          (void)deflate_compress(random_bytes(4096, 100 + t), level);
          deflate_out[t] = deflate_compress(input, level);
          gzip_out[t] = gzip_compress(input, level);
        });
      }
    }
    for (int t = 0; t < 8; ++t) {
      EXPECT_EQ(deflate_out[t], expected_deflate)
          << "level " << to_string(level) << ", thread " << t;
      EXPECT_EQ(gzip_out[t], expected_gzip)
          << "level " << to_string(level) << ", thread " << t;
    }
  }
}

}  // namespace
}  // namespace cdc::compress
