// DEFLATE/gzip fuzz seam: seeded random, all-zero, and RLE-hostile buffers
// up to 8 MiB through every compression level, plus decoder robustness on
// corrupted and truncated streams (record files may be damaged; the
// decoder must return nullopt, never crash or over-read).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <span>
#include <vector>

#include "compress/deflate.h"
#include "support/rng.h"

namespace cdc::compress {
namespace {

std::uint64_t base_seed() {
  const char* value = std::getenv("CDC_FUZZ_BASE_SEED");
  return value != nullptr ? std::strtoull(value, nullptr, 10) : 1;
}

constexpr DeflateLevel kLevels[] = {DeflateLevel::kStored,
                                    DeflateLevel::kFast,
                                    DeflateLevel::kDefault,
                                    DeflateLevel::kBest};

void roundtrip(const std::vector<std::uint8_t>& input, DeflateLevel level) {
  const auto packed = deflate_compress(input, level);
  const auto unpacked = deflate_decompress(packed);
  ASSERT_TRUE(unpacked.has_value()) << "input size " << input.size();
  ASSERT_EQ(*unpacked, input) << "input size " << input.size();

  const auto gz = gzip_compress(input, level);
  const auto gunzipped = gzip_decompress(gz);
  ASSERT_TRUE(gunzipped.has_value()) << "input size " << input.size();
  ASSERT_EQ(*gunzipped, input) << "input size " << input.size();
}

std::vector<std::uint8_t> random_bytes(support::Xoshiro256& rng,
                                       std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
  return bytes;
}

/// RLE-hostile: period-259 ramp. Never two equal adjacent bytes, and the
/// period exceeds the 258-byte maximum match length, so naive run handling
/// gets no help while the LZ77 window still finds distant matches —
/// stressing the length/distance edge cases (258-byte matches, lazy
/// deferrals across boundaries).
std::vector<std::uint8_t> rle_hostile(std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  std::uint32_t x = 0;
  for (auto& b : bytes) {
    b = static_cast<std::uint8_t>(x % 251 + (x / 251) % 5);
    x = (x + 1) % 259;
  }
  return bytes;
}

TEST(fuzz_deflate, RandomBuffersEveryLevel) {
  support::Xoshiro256 rng(base_seed() * 53);
  for (const std::size_t n : {0u, 1u, 2u, 257u, 4096u, 70000u})
    for (const DeflateLevel level : kLevels)
      roundtrip(random_bytes(rng, n), level);
}

TEST(fuzz_deflate, AllZeroBuffersEveryLevel) {
  // Maximum-redundancy inputs: one long run. Exercises the longest-match
  // clamp (258) and distance-1 self-referential matches.
  for (const std::size_t n : {1u, 258u, 259u, 65536u, 1u << 23})
    for (const DeflateLevel level : kLevels)
      roundtrip(std::vector<std::uint8_t>(n, 0), level);
}

TEST(fuzz_deflate, RleHostileBuffersEveryLevel) {
  for (const std::size_t n : {259u, 518u, 65535u, 1u << 23})
    for (const DeflateLevel level : kLevels) roundtrip(rle_hostile(n), level);
}

TEST(fuzz_deflate, EightMebibyteRandomBuffer) {
  // The headline bound from the issue: 8 MiB of incompressible input.
  // Incompressible data forces stored-block fallbacks and exercises the
  // 65535-byte stored-block splitting; one level is enough at this size.
  support::Xoshiro256 rng(base_seed() * 59);
  roundtrip(random_bytes(rng, 8u << 20), DeflateLevel::kDefault);
}

TEST(fuzz_deflate, MixedEntropyBuffer) {
  // Alternating compressible / incompressible regions force block-type
  // switches (stored vs fixed vs dynamic Huffman) mid-stream.
  support::Xoshiro256 rng(base_seed() * 61);
  std::vector<std::uint8_t> bytes;
  while (bytes.size() < (1u << 21)) {
    const auto zeros = std::vector<std::uint8_t>(4096, 0x42);
    bytes.insert(bytes.end(), zeros.begin(), zeros.end());
    const auto noise = random_bytes(rng, 4096);
    bytes.insert(bytes.end(), noise.begin(), noise.end());
  }
  for (const DeflateLevel level : kLevels) roundtrip(bytes, level);
}

TEST(fuzz_deflate, TruncatedStreamsNeverCrash) {
  support::Xoshiro256 rng(base_seed() * 67);
  const auto input = random_bytes(rng, 4096);
  const auto packed = deflate_compress(input, DeflateLevel::kDefault);
  for (std::size_t keep = 0; keep < packed.size(); ++keep) {
    const std::span<const std::uint8_t> prefix(packed.data(), keep);
    const auto result = deflate_decompress(prefix);
    // Truncation must surface as nullopt or a short (prefix) output —
    // never a crash, hang, or fabricated tail.
    if (result.has_value()) {
      ASSERT_LE(result->size(), input.size());
      ASSERT_TRUE(std::equal(result->begin(), result->end(), input.begin()));
    }
  }
}

TEST(fuzz_deflate, BitFlippedStreamsNeverCrash) {
  support::Xoshiro256 rng(base_seed() * 71);
  const auto input = rle_hostile(4096);
  for (const DeflateLevel level : kLevels) {
    const auto packed = deflate_compress(input, level);
    for (int trial = 0; trial < 200; ++trial) {
      auto corrupt = packed;
      const std::size_t byte = rng.bounded(corrupt.size());
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
      // Any outcome except a crash/sanitizer fault is acceptable; a single
      // bit flip may or may not be detectable in raw DEFLATE.
      (void)deflate_decompress(corrupt);
    }
  }
}

TEST(fuzz_deflate, GzipRejectsCorruptPayloads) {
  // Unlike raw DEFLATE, gzip carries CRC32 + ISIZE: every payload
  // corruption that still parses as DEFLATE must be caught by the check.
  support::Xoshiro256 rng(base_seed() * 73);
  const auto input = random_bytes(rng, 8192);
  const auto gz = gzip_compress(input, DeflateLevel::kDefault);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupt = gz;
    const std::size_t byte = rng.bounded(corrupt.size());
    corrupt[byte] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    const auto result = gzip_decompress(corrupt);
    if (result.has_value()) {
      ASSERT_EQ(*result, input);  // flip was harmless?
    }
  }
}

}  // namespace
}  // namespace cdc::compress
