// Exhaustive check of the encoder's constexpr symbol maps against the
// seed's reverse linear scans. The fast maps index precomputed tables
// (length directly, distance through a log2-style two-part bucket), so
// every representable input is cheap to sweep — and any off-by-one at a
// code-range boundary would silently emit wrong DEFLATE symbols.
#include "compress/deflate.h"

#include <gtest/gtest.h>

namespace cdc::compress {
namespace {

TEST(DeflateTables, LengthMapMatchesReferenceExhaustively) {
  for (int length = 3; length <= 258; ++length) {
    EXPECT_EQ(detail::length_to_code(length),
              detail::length_to_code_reference(length))
        << "length " << length;
  }
}

TEST(DeflateTables, DistanceMapMatchesReferenceExhaustively) {
  for (int distance = 1; distance <= 32768; ++distance) {
    ASSERT_EQ(detail::dist_to_code(distance),
              detail::dist_to_code_reference(distance))
        << "distance " << distance;
  }
}

// RFC 1951 pins a handful of exact assignments; spot-check them so a bug
// shared by map and reference (both derive from the same base tables)
// cannot slip through the equivalence sweep. Both maps return 0-based
// indices: length code i is litlen symbol 257 + i.
TEST(DeflateTables, KnownCodeAssignments) {
  EXPECT_EQ(detail::length_to_code(3), 0);     // symbol 257
  EXPECT_EQ(detail::length_to_code(10), 7);    // symbol 264
  EXPECT_EQ(detail::length_to_code(11), 8);    // first length with extra bits
  EXPECT_EQ(detail::length_to_code(257), 27);  // symbol 284
  EXPECT_EQ(detail::length_to_code(258), 28);  // dedicated max-length code

  EXPECT_EQ(detail::dist_to_code(1), 0);
  EXPECT_EQ(detail::dist_to_code(4), 3);
  EXPECT_EQ(detail::dist_to_code(5), 4);  // first distance with extra bits
  EXPECT_EQ(detail::dist_to_code(24576), 28);
  EXPECT_EQ(detail::dist_to_code(24577), 29);  // last code's base
  EXPECT_EQ(detail::dist_to_code(32768), 29);
}

}  // namespace
}  // namespace cdc::compress
