#include "compress/deflate.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "support/rng.h"

namespace cdc::compress {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

class DeflateRoundTrip : public ::testing::TestWithParam<DeflateLevel> {};

TEST_P(DeflateRoundTrip, Empty) {
  const auto compressed = deflate_compress({}, GetParam());
  const auto decoded = deflate_decompress(compressed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST_P(DeflateRoundTrip, ShortText) {
  const auto input = bytes_of("hello, hello, hello world");
  const auto decoded = deflate_decompress(deflate_compress(input, GetParam()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, input);
}

TEST_P(DeflateRoundTrip, RandomBinary) {
  support::Xoshiro256 rng(31);
  for (const std::size_t size : {1u, 255u, 65536u, 300000u}) {
    std::vector<std::uint8_t> input(size);
    for (auto& b : input) b = static_cast<std::uint8_t>(rng.bounded(256));
    const auto decoded =
        deflate_decompress(deflate_compress(input, GetParam()));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, input);
  }
}

TEST_P(DeflateRoundTrip, HighlyCompressible) {
  std::vector<std::uint8_t> input(200000, 0);
  const auto compressed = deflate_compress(input, GetParam());
  const auto decoded = deflate_decompress(compressed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, input);
  if (GetParam() != DeflateLevel::kStored) {
    EXPECT_LT(compressed.size(), input.size() / 100);
  }
}

TEST_P(DeflateRoundTrip, StructuredRecordLikeData) {
  // Near-zero varint-style values, like a CDC chunk stream.
  support::Xoshiro256 rng(32);
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 100000; ++i)
    input.push_back(static_cast<std::uint8_t>(
        rng.uniform() < 0.9 ? 0 : rng.bounded(5)));
  const auto compressed = deflate_compress(input, GetParam());
  const auto decoded = deflate_decompress(compressed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, input);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, DeflateRoundTrip,
                         ::testing::Values(DeflateLevel::kStored,
                                           DeflateLevel::kFast,
                                           DeflateLevel::kDefault,
                                           DeflateLevel::kBest),
                         [](const auto& info) {
                           switch (info.param) {
                             case DeflateLevel::kStored: return "Stored";
                             case DeflateLevel::kFast: return "Fast";
                             case DeflateLevel::kDefault: return "Default";
                             case DeflateLevel::kBest: return "Best";
                           }
                           return "?";
                         });

TEST(Deflate, CompressesTextBelowHalf) {
  std::string text;
  for (int i = 0; i < 500; ++i)
    text += "the quick brown fox jumps over the lazy dog. ";
  const auto input = bytes_of(text);
  const auto compressed = deflate_compress(input);
  EXPECT_LT(compressed.size(), input.size() / 10);
}

TEST(Deflate, RejectsTruncatedStream) {
  const auto input = bytes_of("some data worth compressing, repeated twice; "
                              "some data worth compressing, repeated twice");
  auto compressed = deflate_compress(input);
  compressed.resize(compressed.size() / 2);
  EXPECT_FALSE(deflate_decompress(compressed).has_value());
}

TEST(Deflate, RejectsGarbage) {
  std::vector<std::uint8_t> garbage(100);
  std::iota(garbage.begin(), garbage.end(), std::uint8_t{7});
  // BTYPE == 3 is invalid; craft it directly.
  garbage[0] = 0b110;  // BFINAL=0, BTYPE=11
  EXPECT_FALSE(deflate_decompress(garbage).has_value());
}

TEST(Deflate, RejectsEmptyInputStream) {
  EXPECT_FALSE(deflate_decompress({}).has_value());
}

TEST(Gzip, RoundTrip) {
  const auto input = bytes_of("gzip container round trip payload payload");
  const auto compressed = gzip_compress(input);
  // RFC 1952 magic.
  ASSERT_GE(compressed.size(), 18u);
  EXPECT_EQ(compressed[0], 0x1f);
  EXPECT_EQ(compressed[1], 0x8b);
  EXPECT_EQ(compressed[2], 0x08);
  const auto decoded = gzip_decompress(compressed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, input);
}

TEST(Gzip, DetectsCorruptCrc) {
  const auto input = bytes_of("payload protected by crc32");
  auto compressed = gzip_compress(input);
  compressed[compressed.size() - 5] ^= 0xff;  // flip a CRC byte
  EXPECT_FALSE(gzip_decompress(compressed).has_value());
}

TEST(Gzip, DetectsCorruptBody) {
  std::vector<std::uint8_t> input(10000, 'q');
  auto compressed = gzip_compress(input);
  compressed[compressed.size() / 2] ^= 0x10;
  EXPECT_FALSE(gzip_decompress(compressed).has_value());
}

TEST(Gzip, RejectsWrongMagic) {
  auto compressed = gzip_compress(bytes_of("x"));
  compressed[0] = 0x00;
  EXPECT_FALSE(gzip_decompress(compressed).has_value());
}

TEST(Gzip, InterchangeWithSystemGzipFormat) {
  // Our gzip output is a valid single-member stream decodable by the
  // reference tool; here we at least verify trailer fields match RFC 1952.
  const auto input = bytes_of("abcdabcdabcd");
  const auto compressed = gzip_compress(input);
  const std::size_t n = compressed.size();
  const std::uint32_t isize = compressed[n - 4] |
                              (compressed[n - 3] << 8) |
                              (compressed[n - 2] << 16) |
                              (static_cast<std::uint32_t>(compressed[n - 1])
                               << 24);
  EXPECT_EQ(isize, input.size());
}

}  // namespace
}  // namespace cdc::compress
