#include "compress/huffman.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "support/rng.h"

namespace cdc::compress {
namespace {

double kraft_sum(std::span<const std::uint8_t> lengths) {
  double sum = 0.0;
  for (const std::uint8_t len : lengths)
    if (len > 0) sum += std::ldexp(1.0, -len);
  return sum;
}

TEST(PackageMerge, TwoSymbols) {
  const std::uint64_t freqs[] = {5, 1};
  const auto lengths = package_merge_lengths(freqs, 15);
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[1], 1);
}

TEST(PackageMerge, SingleSymbolGetsLengthOne) {
  const std::uint64_t freqs[] = {0, 42, 0};
  const auto lengths = package_merge_lengths(freqs, 15);
  EXPECT_EQ(lengths[0], 0);
  EXPECT_EQ(lengths[1], 1);
  EXPECT_EQ(lengths[2], 0);
}

TEST(PackageMerge, SkewedFrequenciesGetShortCodesForCommonSymbols) {
  const std::uint64_t freqs[] = {1000, 100, 10, 1};
  const auto lengths = package_merge_lengths(freqs, 15);
  EXPECT_LE(lengths[0], lengths[1]);
  EXPECT_LE(lengths[1], lengths[2]);
  EXPECT_LE(lengths[2], lengths[3]);
  EXPECT_DOUBLE_EQ(kraft_sum(lengths), 1.0);
}

TEST(PackageMerge, RespectsLengthLimit) {
  // Fibonacci-like frequencies force deep unbounded Huffman trees.
  std::vector<std::uint64_t> freqs = {1, 1};
  while (freqs.size() < 24)
    freqs.push_back(freqs[freqs.size() - 1] + freqs[freqs.size() - 2]);
  for (const int limit : {7, 10, 15}) {
    const auto lengths = package_merge_lengths(freqs, limit);
    for (const std::uint8_t len : lengths) EXPECT_LE(len, limit);
    EXPECT_LE(kraft_sum(lengths), 1.0 + 1e-12);
  }
}

TEST(PackageMerge, KraftEqualityHolds) {
  support::Xoshiro256 rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> freqs(2 + rng.bounded(200));
    for (auto& f : freqs) f = rng.bounded(10000);
    std::size_t nonzero = 0;
    for (const auto f : freqs) nonzero += f > 0;
    if (nonzero < 2) continue;
    const auto lengths = package_merge_lengths(freqs, 15);
    EXPECT_NEAR(kraft_sum(lengths), 1.0, 1e-12);
  }
}

TEST(PackageMerge, IsOptimalAtGenerousLimit) {
  // Against entropy bound: average length within 1 bit of entropy.
  support::Xoshiro256 rng(12);
  std::vector<std::uint64_t> freqs(64);
  for (auto& f : freqs) f = 1 + rng.bounded(1000);
  const auto lengths = package_merge_lengths(freqs, 15);
  const double total = static_cast<double>(
      std::accumulate(freqs.begin(), freqs.end(), std::uint64_t{0}));
  double entropy = 0.0;
  double avg_len = 0.0;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    const double p = static_cast<double>(freqs[s]) / total;
    entropy -= p * std::log2(p);
    avg_len += p * lengths[s];
  }
  EXPECT_GE(avg_len, entropy - 1e-9);
  EXPECT_LE(avg_len, entropy + 1.0);
}

TEST(CanonicalCodes, Rfc1951Example) {
  // RFC 1951 §3.2.2 worked example: lengths (3,3,3,3,3,2,4,4) →
  // codes (010,011,100,101,110,00,1110,1111).
  const std::uint8_t lengths[] = {3, 3, 3, 3, 3, 2, 4, 4};
  const auto codes = canonical_codes(lengths);
  const std::uint32_t expected[] = {0b010, 0b011, 0b100, 0b101,
                                    0b110, 0b00,  0b1110, 0b1111};
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(codes[i], expected[i]);
}

TEST(HuffmanDecoder, DecodesCanonicalCodes) {
  const std::uint8_t lengths[] = {3, 3, 3, 3, 3, 2, 4, 4};
  const auto codes = canonical_codes(lengths);
  HuffmanDecoder decoder{std::span<const std::uint8_t>{lengths}};
  ASSERT_TRUE(decoder.ok());

  for (int sym = 0; sym < 8; ++sym) {
    decoder.reset();
    int result = -1;
    for (int bit = lengths[sym] - 1; bit >= 0; --bit) {
      result = decoder.feed((codes[static_cast<std::size_t>(sym)] >> bit) & 1);
    }
    EXPECT_EQ(result, sym);
  }
}

TEST(HuffmanDecoder, RejectsOversubscribedLengths) {
  const std::uint8_t lengths[] = {1, 1, 1};  // Kraft sum 1.5
  HuffmanDecoder decoder;
  EXPECT_FALSE(decoder.init(lengths));
}

TEST(HuffmanDecoder, RejectsIncompleteMultiSymbolLengths) {
  const std::uint8_t lengths[] = {2, 2, 2};  // Kraft sum 0.75
  HuffmanDecoder decoder;
  EXPECT_FALSE(decoder.init(lengths));
}

TEST(HuffmanDecoder, AcceptsDegenerateSingleCode) {
  const std::uint8_t lengths[] = {0, 1, 0};
  HuffmanDecoder decoder;
  ASSERT_TRUE(decoder.init(lengths));
  decoder.reset();
  EXPECT_EQ(decoder.feed(0), 1);
}

TEST(HuffmanDecoder, RoundTripRandomAlphabets) {
  support::Xoshiro256 rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> freqs(2 + rng.bounded(280));
    for (auto& f : freqs) f = rng.bounded(500);
    freqs[0] = 1;
    freqs[1] = 1;  // at least two coded symbols
    const auto lengths = package_merge_lengths(freqs, 15);
    const auto codes = canonical_codes(lengths);
    HuffmanDecoder decoder{std::span<const std::uint8_t>{lengths}};
    ASSERT_TRUE(decoder.ok());
    for (std::size_t sym = 0; sym < freqs.size(); ++sym) {
      if (lengths[sym] == 0) continue;
      decoder.reset();
      int result = -1;
      for (int bit = lengths[sym] - 1; bit >= 0; --bit)
        result = decoder.feed((codes[sym] >> bit) & 1);
      EXPECT_EQ(result, static_cast<int>(sym));
    }
  }
}

}  // namespace
}  // namespace cdc::compress
