// Differential decode battery: the batched inflate (deflate_decompress)
// against the seed's bit-serial decoder (deflate_decompress_reference).
// The two must agree byte-for-byte on every accepted stream and make the
// identical accept/reject decision on truncated and bit-flipped streams —
// the fast path may change decode speed, never the trust model.
#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "compress/deflate.h"
#include "support/rng.h"

namespace cdc::compress {
namespace {

std::uint64_t base_seed() {
  const char* value = std::getenv("CDC_FUZZ_BASE_SEED");
  return value != nullptr ? std::strtoull(value, nullptr, 10) : 1;
}

constexpr DeflateLevel kLevels[] = {DeflateLevel::kStored,
                                    DeflateLevel::kFast,
                                    DeflateLevel::kDefault,
                                    DeflateLevel::kBest};

std::vector<std::uint8_t> random_bytes(support::Xoshiro256& rng,
                                       std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
  return bytes;
}

/// Period-259 ramp: no adjacent repeats, period past the 258-byte match
/// cap (see deflate_fuzz_test.cc).
std::vector<std::uint8_t> rle_hostile(std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  std::uint32_t x = 0;
  for (auto& b : bytes) {
    b = static_cast<std::uint8_t>(x % 251 + (x / 251) % 5);
    x = (x + 1) % 259;
  }
  return bytes;
}

/// Text-like: small alphabet with word-ish repetition, the shape that
/// produces deep dynamic Huffman tables and long matches together.
std::vector<std::uint8_t> text_like(support::Xoshiro256& rng,
                                    std::size_t n) {
  static constexpr const char* kWords[] = {
      "clock", "delta", "epoch", "order", "replay", "rank",
      "matched", "stream", " ",    "\n",    "record", "chunk"};
  std::vector<std::uint8_t> bytes;
  bytes.reserve(n + 8);
  while (bytes.size() < n) {
    const char* w = kWords[rng.bounded(std::size(kWords))];
    while (*w != '\0') bytes.push_back(static_cast<std::uint8_t>(*w++));
  }
  bytes.resize(n);
  return bytes;
}

/// Mixed entropy: alternating constant and random pages, forcing block
/// type switches (stored vs fixed vs dynamic) inside one stream.
std::vector<std::uint8_t> mixed_entropy(support::Xoshiro256& rng,
                                        std::size_t n) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(n);
  bool noisy = false;
  while (bytes.size() < n) {
    const std::size_t page =
        std::min<std::size_t>(512 + rng.bounded(1024), n - bytes.size());
    if (noisy) {
      for (std::size_t i = 0; i < page; ++i)
        bytes.push_back(static_cast<std::uint8_t>(rng()));
    } else {
      bytes.insert(bytes.end(), page, static_cast<std::uint8_t>(rng()));
    }
    noisy = !noisy;
  }
  return bytes;
}

/// The seeded corpus: 64+ payloads covering sizes from empty through tens
/// of KiB and four structural shapes.
std::vector<std::vector<std::uint8_t>> build_corpus(std::uint64_t seed) {
  support::Xoshiro256 rng(seed * 101);
  std::vector<std::vector<std::uint8_t>> corpus;
  const std::size_t sizes[] = {0,   1,    2,    3,     257,  258,
                               259, 1024, 4096, 16384, 65536};
  for (const std::size_t n : sizes) corpus.push_back(random_bytes(rng, n));
  for (const std::size_t n : sizes)
    corpus.push_back(std::vector<std::uint8_t>(n, 0));
  for (const std::size_t n : sizes) corpus.push_back(rle_hostile(n));
  for (const std::size_t n : sizes) corpus.push_back(text_like(rng, n));
  for (const std::size_t n : sizes) corpus.push_back(mixed_entropy(rng, n));
  for (int extra = 0; extra < 12; ++extra)
    corpus.push_back(random_bytes(rng, 100 + rng.bounded(9000)));
  return corpus;  // 11 * 5 + 12 = 67 payloads
}

/// Both decoders over one stream: same decision, same bytes.
void expect_identical(std::span<const std::uint8_t> stream,
                      const std::string& what) {
  const auto fast = deflate_decompress(stream);
  const auto reference = deflate_decompress_reference(stream);
  ASSERT_EQ(fast.has_value(), reference.has_value()) << what;
  if (fast.has_value()) {
    ASSERT_EQ(*fast, *reference) << what;
  }
}

TEST(fuzz_inflate_differential, CorpusEveryLevelByteForByte) {
  const auto corpus = build_corpus(base_seed());
  ASSERT_GE(corpus.size(), 64u);
  std::size_t idx = 0;
  for (const auto& payload : corpus) {
    for (const DeflateLevel level : kLevels) {
      const auto packed = deflate_compress(payload, level);
      const auto fast = deflate_decompress(packed);
      const auto reference = deflate_decompress_reference(packed);
      const std::string what = "payload " + std::to_string(idx) + " level " +
                               std::string(to_string(level));
      ASSERT_TRUE(fast.has_value()) << what;
      ASSERT_TRUE(reference.has_value()) << what;
      ASSERT_EQ(*fast, payload) << what;
      ASSERT_EQ(*reference, payload) << what;
    }
    ++idx;
  }
}

TEST(fuzz_inflate_differential, ReusedBufferIsEquivalent) {
  // The pooled-output seam: a dirty donated buffer must not leak into the
  // result, and repeated decodes through one buffer stay correct.
  const auto corpus = build_corpus(base_seed() * 3);
  std::vector<std::uint8_t> reuse(512, 0xEE);
  for (const auto& payload : corpus) {
    const auto packed = deflate_compress(payload, DeflateLevel::kDefault);
    auto decoded = deflate_decompress(packed, std::move(reuse));
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, payload);
    reuse = std::move(*decoded);
  }
}

TEST(fuzz_inflate_differential, TruncatedStreamsRejectedIdentically) {
  support::Xoshiro256 rng(base_seed() * 103);
  for (const DeflateLevel level : kLevels) {
    const auto payload = mixed_entropy(rng, 6000);
    const auto packed = deflate_compress(payload, level);
    for (std::size_t keep = 0; keep < packed.size(); ++keep) {
      expect_identical({packed.data(), keep},
                       "level " + std::string(to_string(level)) +
                           " truncated to " + std::to_string(keep));
    }
  }
}

TEST(fuzz_inflate_differential, BitFlippedStreamsRejectedIdentically) {
  support::Xoshiro256 rng(base_seed() * 107);
  for (const DeflateLevel level : kLevels) {
    const auto payload = text_like(rng, 4096);
    const auto packed = deflate_compress(payload, level);
    // Exhaustive single-bit sweep over the header region (block headers
    // and Huffman tables live here — the decode paths most sensitive to
    // divergence), then seeded flips over the whole stream.
    const std::size_t header_bytes = std::min<std::size_t>(packed.size(), 64);
    for (std::size_t byte = 0; byte < header_bytes; ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto corrupt = packed;
        corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
        expect_identical(corrupt, "level " + std::string(to_string(level)) +
                                      " flip byte " + std::to_string(byte) +
                                      " bit " + std::to_string(bit));
      }
    }
    for (int trial = 0; trial < 400; ++trial) {
      auto corrupt = packed;
      const std::size_t byte = rng.bounded(corrupt.size());
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
      expect_identical(corrupt, "level " + std::string(to_string(level)) +
                                    " trial " + std::to_string(trial));
    }
  }
}

TEST(fuzz_inflate_differential, GarbageStreamsRejectedIdentically) {
  support::Xoshiro256 rng(base_seed() * 109);
  for (int trial = 0; trial < 128; ++trial) {
    const auto garbage = random_bytes(rng, rng.bounded(512));
    expect_identical(garbage, "garbage trial " + std::to_string(trial));
  }
}

}  // namespace
}  // namespace cdc::compress
