// Interoperability with reference zlib output: our inflate must decode
// streams produced by the canonical implementation (vectors generated with
// CPython's zlib at level 9, raw deflate / wbits=-15). This pins the
// bit-level DEFLATE details (LSB-first packing, fixed/dynamic trees,
// code-length RLE) against an independent implementation.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "compress/deflate.h"

namespace cdc::compress {
namespace {

// generated with python zlib (see test header)
const std::vector<std::uint8_t> kZlibEmpty = {0x03, 0x00};
const std::vector<std::uint8_t> kZlibText = {
    0xcb, 0x48, 0xcd, 0xc9, 0xc9, 0xd7, 0x51, 0xc8, 0x40,
    0xa2, 0x14, 0xca, 0xf3, 0x8b, 0x72, 0x52, 0x00};
const std::vector<std::uint8_t> kZlibRepeats = {
    0x4b, 0x4c, 0x4a, 0x4e, 0x1c, 0x45, 0xc4, 0x21, 0x00};
const std::vector<std::uint8_t> kZlibZeros = {
    0x63, 0x60, 0x18, 0x05, 0x23, 0x0d, 0x30, 0x32, 0x31,
    0x0f, 0x42, 0x04, 0x00};

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(ZlibInterop, DecodesEmptyStream) {
  const auto decoded = deflate_decompress(kZlibEmpty);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(ZlibInterop, DecodesFixedHuffmanText) {
  const auto decoded = deflate_decompress(kZlibText);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bytes_of("hello, hello, hello world"));
}

TEST(ZlibInterop, DecodesOverlappingMatches) {
  std::vector<std::uint8_t> expected;
  for (int i = 0; i < 10; ++i) {
    const auto part = bytes_of("abcabcabcabcabcabcabcabcabcabc");
    expected.insert(expected.end(), part.begin(), part.end());
  }
  const auto decoded = deflate_decompress(kZlibRepeats);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, expected);
}

TEST(ZlibInterop, DecodesLongZeroRuns) {
  std::vector<std::uint8_t> expected(500, 0);
  for (int i = 0; i < 50; ++i)
    for (std::uint8_t v : {1, 2, 3}) expected.push_back(v);
  const auto decoded = deflate_decompress(kZlibZeros);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, expected);
}

TEST(ZlibInterop, DecodesStoredBlockFromZlib) {
  // zlib emits a stored block for incompressible data (0..255).
  // Reconstruct the reference stream: 01 (BFINAL+stored) LEN NLEN data.
  std::vector<std::uint8_t> stream = {0x01, 0x00, 0x01, 0xff, 0xfe};
  for (int i = 0; i < 256; ++i)
    stream.push_back(static_cast<std::uint8_t>(i));
  const auto decoded = deflate_decompress(stream);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 256u);
  for (int i = 0; i < 256; ++i)
    EXPECT_EQ((*decoded)[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace cdc::compress
