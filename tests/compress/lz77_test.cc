#include "compress/lz77.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "support/rng.h"

namespace cdc::compress {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Lz77, EmptyInput) {
  EXPECT_TRUE(lz77_tokenize({}).empty());
}

TEST(Lz77, AllLiteralsForIncompressibleShortInput) {
  const auto input = bytes_of("abcdefg");
  const auto tokens = lz77_tokenize(input);
  EXPECT_EQ(tokens.size(), input.size());
  for (const auto& t : tokens) EXPECT_TRUE(t.is_literal());
}

TEST(Lz77, FindsRepeats) {
  const auto input = bytes_of("abcabcabcabcabcabc");
  const auto tokens = lz77_tokenize(input);
  EXPECT_LT(tokens.size(), input.size());
  EXPECT_EQ(lz77_expand(tokens), input);
}

TEST(Lz77, OverlappingMatchRunLengthStyle) {
  // "aaaa..." compresses to one literal + one overlapping match.
  const std::vector<std::uint8_t> input(300, 'a');
  const auto tokens = lz77_tokenize(input);
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].is_literal());
  EXPECT_FALSE(tokens[1].is_literal());
  EXPECT_EQ(tokens[1].distance, 1);
  EXPECT_EQ(lz77_expand(tokens), input);
}

TEST(Lz77, MatchLengthCapped) {
  const std::vector<std::uint8_t> input(10000, 'x');
  const auto tokens = lz77_tokenize(input);
  for (const auto& t : tokens) {
    if (!t.is_literal()) {
      EXPECT_LE(t.length, kMaxMatch);
    }
  }
  EXPECT_EQ(lz77_expand(tokens), input);
}

TEST(Lz77, RoundTripRandomData) {
  support::Xoshiro256 rng(21);
  for (const std::size_t size : {1u, 10u, 1000u, 100000u}) {
    std::vector<std::uint8_t> input(size);
    for (auto& b : input) b = static_cast<std::uint8_t>(rng.bounded(256));
    EXPECT_EQ(lz77_expand(lz77_tokenize(input)), input);
  }
}

TEST(Lz77, RoundTripStructuredData) {
  // Low-entropy data with long-range repeats (like record tables).
  support::Xoshiro256 rng(22);
  std::vector<std::uint8_t> input;
  for (int block = 0; block < 50; ++block) {
    const std::uint8_t fill = static_cast<std::uint8_t>(rng.bounded(4));
    input.insert(input.end(), 500 + rng.bounded(500), fill);
  }
  const auto tokens = lz77_tokenize(input);
  EXPECT_LT(tokens.size(), input.size() / 20);
  EXPECT_EQ(lz77_expand(tokens), input);
}

TEST(Lz77, RoundTripAcrossWindowBoundary) {
  // Repeats separated by more than the 32 KiB window must not match.
  std::vector<std::uint8_t> input = bytes_of("unique-prefix-0123456789");
  input.resize(40000, 0);
  const auto suffix = bytes_of("unique-prefix-0123456789");
  input.insert(input.end(), suffix.begin(), suffix.end());
  const auto tokens = lz77_tokenize(input);
  for (const auto& t : tokens) {
    if (!t.is_literal()) {
      EXPECT_LE(t.distance, kWindowSize);
    }
  }
  EXPECT_EQ(lz77_expand(tokens), input);
}

TEST(Lz77, GreedyVsLazyBothRoundTrip) {
  support::Xoshiro256 rng(23);
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 5000; ++i)
    input.push_back(static_cast<std::uint8_t>(rng.bounded(8)));
  Lz77Params greedy{.max_chain = 32, .nice_length = 64, .lazy = false};
  Lz77Params lazy{.max_chain = 32, .nice_length = 64, .lazy = true};
  EXPECT_EQ(lz77_expand(lz77_tokenize(input, greedy)), input);
  EXPECT_EQ(lz77_expand(lz77_tokenize(input, lazy)), input);
}

}  // namespace
}  // namespace cdc::compress
