// Bidirectional interop with the system zlib (test-only dependency): every
// stream our encoder produces must inflate correctly under the reference
// implementation, for all levels and a range of data shapes.
#include <gtest/gtest.h>
#include <zlib.h>

#include <vector>

#include "compress/deflate.h"
#include "support/rng.h"

namespace cdc::compress {
namespace {

std::vector<std::uint8_t> zlib_inflate_raw(
    std::span<const std::uint8_t> compressed, std::size_t expected_size) {
  std::vector<std::uint8_t> out(std::max<std::size_t>(expected_size, 1));
  z_stream stream{};
  EXPECT_EQ(inflateInit2(&stream, -15), Z_OK);  // raw deflate
  stream.next_in = const_cast<Bytef*>(compressed.data());
  stream.avail_in = static_cast<uInt>(compressed.size());
  stream.next_out = out.data();
  stream.avail_out = static_cast<uInt>(out.size());
  const int rc = inflate(&stream, Z_FINISH);
  EXPECT_EQ(rc, Z_STREAM_END) << "zlib rejected our deflate stream";
  out.resize(stream.total_out);
  inflateEnd(&stream);
  return out;
}

class ZlibAcceptsOurOutput
    : public ::testing::TestWithParam<DeflateLevel> {};

TEST_P(ZlibAcceptsOurOutput, RandomBinary) {
  support::Xoshiro256 rng(55);
  for (const std::size_t size : {1u, 100u, 65536u, 200000u}) {
    std::vector<std::uint8_t> input(size);
    for (auto& b : input) b = static_cast<std::uint8_t>(rng.bounded(256));
    const auto compressed = deflate_compress(input, GetParam());
    EXPECT_EQ(zlib_inflate_raw(compressed, input.size()), input);
  }
}

TEST_P(ZlibAcceptsOurOutput, StructuredData) {
  support::Xoshiro256 rng(56);
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 120000; ++i)
    input.push_back(static_cast<std::uint8_t>(
        rng.uniform() < 0.8 ? 0 : rng.bounded(7)));
  const auto compressed = deflate_compress(input, GetParam());
  EXPECT_EQ(zlib_inflate_raw(compressed, input.size()), input);
}

TEST_P(ZlibAcceptsOurOutput, Empty) {
  const auto compressed = deflate_compress({}, GetParam());
  EXPECT_TRUE(zlib_inflate_raw(compressed, 0).empty());
}

INSTANTIATE_TEST_SUITE_P(AllLevels, ZlibAcceptsOurOutput,
                         ::testing::Values(DeflateLevel::kStored,
                                           DeflateLevel::kFast,
                                           DeflateLevel::kDefault,
                                           DeflateLevel::kBest));

TEST(ZlibInterop, WeDecodeZlibAcrossLevels) {
  support::Xoshiro256 rng(57);
  std::vector<std::uint8_t> input(50000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.bounded(16));
  for (const int level : {1, 6, 9}) {
    std::vector<std::uint8_t> compressed(compressBound(input.size()) + 64);
    z_stream stream{};
    ASSERT_EQ(deflateInit2(&stream, level, Z_DEFLATED, -15, 8,
                           Z_DEFAULT_STRATEGY),
              Z_OK);
    stream.next_in = input.data();
    stream.avail_in = static_cast<uInt>(input.size());
    stream.next_out = compressed.data();
    stream.avail_out = static_cast<uInt>(compressed.size());
    ASSERT_EQ(deflate(&stream, Z_FINISH), Z_STREAM_END);
    compressed.resize(stream.total_out);
    deflateEnd(&stream);

    const auto decoded = deflate_decompress(compressed);
    ASSERT_TRUE(decoded.has_value()) << "level " << level;
    EXPECT_EQ(*decoded, input);
  }
}

}  // namespace
}  // namespace cdc::compress
