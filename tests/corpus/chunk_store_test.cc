// Content-addressed chunk table: intern/dedup semantics, refcounts,
// ordinal stability, and the byte-compare guard behind the strong hash.
#include <gtest/gtest.h>

#include <vector>

#include "corpus/chunk_store.h"
#include "support/rng.h"

namespace cdc::corpus {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.bounded(256));
  return bytes;
}

TEST(ChunkId, SameContentSameIdDifferentContentDifferentId) {
  const auto a = random_bytes(1000, 1);
  auto b = a;
  EXPECT_EQ(chunk_id(a), chunk_id(b));
  b[500] ^= 1;
  EXPECT_NE(chunk_id(a), chunk_id(b));
  // Length participates: a prefix must not collide with the whole.
  EXPECT_NE(chunk_id(a), chunk_id(std::span(a).first(999)));
}

TEST(ChunkStore, InternDeduplicatesAndCountsReferences) {
  ChunkStore store;
  const auto a = random_bytes(512, 2);
  const auto b = random_bytes(512, 3);

  const auto first = store.intern(a);
  EXPECT_TRUE(first.inserted);
  const auto again = store.intern(a);
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.ordinal, first.ordinal);
  const auto other = store.intern(b);
  EXPECT_TRUE(other.inserted);
  EXPECT_NE(other.ordinal, first.ordinal);

  EXPECT_EQ(store.count(), 2u);
  EXPECT_EQ(store.ref_count(first.ordinal), 2u);  // one per intern call
  EXPECT_EQ(store.ref_count(other.ordinal), 1u);
  EXPECT_EQ(store.stored_bytes(), 1024u);       // unique content only
  EXPECT_EQ(store.presented_bytes(), 1536u);    // all three calls

  const auto chunk = store.chunk(first.ordinal);
  EXPECT_TRUE(std::equal(chunk.begin(), chunk.end(), a.begin(), a.end()));
}

TEST(ChunkStore, OrdinalsAreDenseAndInternOrdered) {
  ChunkStore store;
  for (std::uint32_t i = 0; i < 16; ++i)
    EXPECT_EQ(store.intern(random_bytes(64 + i, 100 + i)).ordinal, i);
}

TEST(ChunkStore, PeekIsSideEffectFree) {
  ChunkStore store;
  const auto a = random_bytes(256, 4);
  EXPECT_FALSE(store.peek(a).has_value());
  EXPECT_EQ(store.count(), 0u);
  const auto interned = store.intern(a);
  const auto hit = store.peek(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, interned.ordinal);
  EXPECT_EQ(store.ref_count(interned.ordinal), 1u);  // peek added nothing
  EXPECT_EQ(store.presented_bytes(), a.size());
}

TEST(ChunkStore, AdoptRebuildsWithZeroRefsAndAddReferenceRestores) {
  // The container-load path: chunk frames are re-admitted refcount-free,
  // then member manifests re-add their references.
  ChunkStore store;
  const auto a = random_bytes(300, 5);
  const std::uint32_t ordinal = store.adopt(a);
  EXPECT_EQ(store.ref_count(ordinal), 0u);
  store.add_reference(ordinal);
  store.add_reference(ordinal);
  EXPECT_EQ(store.ref_count(ordinal), 2u);
  // Interning adopted content is a hit, not a new chunk.
  EXPECT_FALSE(store.intern(a).inserted);
  EXPECT_EQ(store.count(), 1u);
}

TEST(ChunkStore, EmptyChunkIsAValidChunk) {
  ChunkStore store;
  const auto result = store.intern({});
  EXPECT_TRUE(result.inserted);
  EXPECT_TRUE(store.chunk(result.ordinal).empty());
  EXPECT_FALSE(store.intern({}).inserted);
}

}  // namespace
}  // namespace cdc::corpus
