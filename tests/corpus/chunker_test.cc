// Content-defined chunking properties: deterministic cuts, enforced
// [min, max] bounds, seed sensitivity, and — the property dedup rests
// on — boundary resynchronization after a prefix edit.
//
// fuzz_chunker suites are selected by the nightly `ctest -R fuzz` job and
// honour CDC_FUZZ_BASE_SEED / CDC_FUZZ_SEEDS.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "corpus/chunker.h"
#include "support/rng.h"

namespace cdc::corpus {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.bounded(256));
  return bytes;
}

// Checks the boundary contract: ascending cuts ending at size, every
// chunk but the last in [min, max], the last in (0, max].
void expect_valid_boundaries(const std::vector<std::size_t>& cuts,
                             std::size_t size, const ChunkerConfig& config,
                             std::uint64_t seed) {
  ASSERT_FALSE(cuts.empty()) << "seed=" << seed;
  EXPECT_EQ(cuts.back(), size) << "seed=" << seed;
  std::size_t prev = 0;
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    ASSERT_GT(cuts[i], prev) << "seed=" << seed << " cut " << i;
    const std::size_t len = cuts[i] - prev;
    EXPECT_LE(len, config.max_size) << "seed=" << seed << " chunk " << i;
    if (i + 1 < cuts.size()) {
      EXPECT_GE(len, config.min_size) << "seed=" << seed << " chunk " << i;
    }
    prev = cuts[i];
  }
}

TEST(Chunker, EmptyInputHasNoChunks) {
  EXPECT_TRUE(chunk_boundaries({}, ChunkerConfig{}).empty());
  EXPECT_TRUE(chunk_spans({}, ChunkerConfig{}).empty());
}

TEST(Chunker, ShortInputIsOneChunk) {
  const std::vector<std::uint8_t> bytes = random_bytes(50, 3);
  const auto cuts = chunk_boundaries(bytes, ChunkerConfig{});
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], bytes.size());
}

TEST(Chunker, CutsAreDeterministic) {
  const std::vector<std::uint8_t> bytes = random_bytes(64 * 1024, 11);
  const ChunkerConfig config;
  EXPECT_EQ(chunk_boundaries(bytes, config), chunk_boundaries(bytes, config));
}

TEST(Chunker, SpansReassembleTheInput) {
  const std::vector<std::uint8_t> bytes = random_bytes(20000, 5);
  std::vector<std::uint8_t> glued;
  for (const auto& span : chunk_spans(bytes, ChunkerConfig{}))
    glued.insert(glued.end(), span.begin(), span.end());
  EXPECT_EQ(glued, bytes);
}

TEST(fuzz_chunker, BoundsHoldForRandomAndRepetitiveInputs) {
  // The acceptance sweep: >= 64 seeds, random and low-entropy content,
  // every chunk inside [min, max].
  const std::uint64_t base_seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  const std::uint64_t num_seeds = env_u64("CDC_FUZZ_SEEDS", 64);
  for (std::uint64_t s = 0; s < num_seeds; ++s) {
    const std::uint64_t seed = base_seed + s;
    support::Xoshiro256 rng(seed);
    ChunkerConfig config;
    config.seed = seed;
    const std::size_t size = 4096 + rng.bounded(60000);

    std::vector<std::uint8_t> bytes = random_bytes(size, seed ^ 0xabcd);
    expect_valid_boundaries(chunk_boundaries(bytes, config), bytes.size(),
                            config, seed);

    // Low-entropy adversary: long constant runs never match a boundary
    // pattern naturally, so only the max_size forcing keeps bounds.
    std::fill(bytes.begin() + bytes.size() / 4,
              bytes.begin() + bytes.size() / 2,
              static_cast<std::uint8_t>(seed & 0xff));
    expect_valid_boundaries(chunk_boundaries(bytes, config), bytes.size(),
                            config, seed);
  }
}

TEST(fuzz_chunker, BoundariesResyncAfterAPrefixInsert) {
  // THE content-defined property: inserting bytes at the front shifts
  // every byte position, yet after at most a few chunks the cut points
  // land on the same content again — so most chunks of the edited stream
  // dedup against the original's.
  const std::uint64_t base_seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  const std::uint64_t num_seeds = env_u64("CDC_FUZZ_SEEDS", 64);
  std::uint64_t resynced = 0;
  for (std::uint64_t s = 0; s < num_seeds; ++s) {
    const std::uint64_t seed = base_seed + s;
    ChunkerConfig config;
    config.seed = seed;
    const std::vector<std::uint8_t> original = random_bytes(48 * 1024, seed);

    support::Xoshiro256 rng(seed ^ 0x51ed);
    std::vector<std::uint8_t> edited =
        random_bytes(1 + rng.bounded(300), seed + 1);  // the inserted prefix
    edited.insert(edited.end(), original.begin(), original.end());

    const auto a = chunk_boundaries(original, config);
    const auto b = chunk_boundaries(edited, config);
    const std::size_t shift = edited.size() - original.size();

    // Count trailing cuts of the edited stream that are original cuts
    // shifted by the insert length — identical content positions.
    std::size_t common = 0;
    while (common < a.size() && common < b.size() &&
           a[a.size() - 1 - common] + shift == b[b.size() - 1 - common])
      ++common;
    ASSERT_GE(a.size(), 6u) << "seed=" << seed;  // enough chunks to resync in
    if (common + 4 >= a.size()) ++resynced;  // resynced within ~4 chunks
    EXPECT_GE(common, 1u) << "seed=" << seed << " never resynchronized";
  }
  // The overwhelming majority of seeds must resync almost immediately.
  EXPECT_GE(resynced * 10, num_seeds * 9)
      << resynced << "/" << num_seeds << " resynced within 4 chunks";
}

TEST(Chunker, DifferentSeedsCutDifferently) {
  const std::vector<std::uint8_t> bytes = random_bytes(64 * 1024, 17);
  ChunkerConfig a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(chunk_boundaries(bytes, a), chunk_boundaries(bytes, b));
}

TEST(Chunker, AverageChunkSizeTracksTheConfiguredAverage) {
  // Statistical sanity, not a tight bound: random input should cut near
  // avg_size, well inside [min, max].
  ChunkerConfig config;
  config.min_size = 128;
  config.avg_size = 1024;
  config.max_size = 8192;  // roomy max: observe the content-defined rate
  const std::vector<std::uint8_t> bytes = random_bytes(512 * 1024, 23);
  const auto cuts = chunk_boundaries(bytes, config);
  const double mean =
      static_cast<double>(bytes.size()) / static_cast<double>(cuts.size());
  EXPECT_GT(mean, 256.0);
  EXPECT_LT(mean, 4096.0);
}

}  // namespace
}  // namespace cdc::corpus
