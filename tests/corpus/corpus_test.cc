// Corpus end-to-end: members round-trip bit-identically through every
// encoding (raw / gzip / chunks / delta, fresh and in-place), reference
// election and pinning, cross-member dedup, the RecordStore ingest
// adapter, and the salvage contract (crash -> repack -> degraded open).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "runtime/storage.h"
#include "store/container_reader.h"
#include "support/rng.h"

namespace cdc::corpus {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.bounded(256));
  return bytes;
}

class CorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cdc_corpus_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

using StreamMap =
    std::map<runtime::StreamKey, std::vector<std::uint8_t>>;

// A member record as plain bytes: `streams` keys, `bytes` bytes each.
StreamMap make_streams(int streams, std::size_t bytes, std::uint64_t seed) {
  StreamMap map;
  for (int i = 0; i < streams; ++i) {
    const runtime::StreamKey key{i, static_cast<std::uint32_t>(i) * 7 + 1};
    map[key] = random_bytes(bytes, seed * 100 + static_cast<std::uint64_t>(i));
  }
  return map;
}

void fill_store(runtime::MemoryStore& store, const StreamMap& streams) {
  for (const auto& [key, bytes] : streams) store.append(key, bytes);
}

// MemoryStore is immovable; tests that need "a record" keep the StreamMap
// and materialize a store on demand.
void make_record_into(runtime::MemoryStore& store, int streams,
                      std::size_t bytes, std::uint64_t seed) {
  fill_store(store, make_streams(streams, bytes, seed));
}

// Verifies `member` of the reopened corpus equals `expected`, via
// read_stream (both apply paths) and load_member.
void expect_member_equals(const CorpusReader& reader, std::uint32_t member,
                          const StreamMap& expected) {
  std::vector<runtime::StreamKey> keys;
  for (const auto& [key, bytes] : expected) keys.push_back(key);
  EXPECT_EQ(reader.member_keys(member), keys);
  for (const auto& [key, bytes] : expected) {
    const auto fresh = reader.read_stream(member, key);
    ASSERT_TRUE(fresh.has_value()) << "member " << member;
    EXPECT_EQ(*fresh, bytes) << "member " << member;
    const auto in_place = reader.read_stream(member, key, /*in_place=*/true);
    ASSERT_TRUE(in_place.has_value()) << "member " << member;
    EXPECT_EQ(*in_place, *fresh) << "member " << member << " (in place)";
  }
  runtime::MemoryStore loaded;
  ASSERT_TRUE(reader.load_member(member, loaded));
  for (const auto& [key, bytes] : expected)
    EXPECT_EQ(loaded.read(key), bytes);
}

TEST_F(CorpusTest, NearIdenticalMembersRoundTripAndDedup) {
  const std::string file = path("family.cdcc");
  constexpr int kMembers = 6;
  std::vector<StreamMap> originals;

  Corpus corpus(file);
  for (int m = 0; m < kMembers; ++m) {
    // Same base content for every member (seed 1), then a few per-member
    // point edits — the near-identical corpus shape of repeated runs.
    StreamMap streams = make_streams(/*streams=*/3, /*bytes=*/32 * 1024,
                                     /*seed=*/1);
    if (m > 0) {
      support::Xoshiro256 rng(static_cast<std::uint64_t>(m));
      for (auto& [key, bytes] : streams)
        for (int e = 0; e < 5; ++e)
          bytes[rng.bounded(bytes.size())] ^=
              static_cast<std::uint8_t>(1 + rng.bounded(255));
    }
    runtime::MemoryStore record;
    fill_store(record, streams);
    EXPECT_EQ(corpus.add_member("taskfarm", "seed-" + std::to_string(m),
                                record),
              static_cast<std::uint32_t>(m));
    originals.push_back(std::move(streams));
  }
  EXPECT_EQ(corpus.stats().members, static_cast<std::uint64_t>(kMembers));
  // Followers are tiny deltas: the corpus must be far smaller than the sum
  // of its members' raw bytes.
  EXPECT_GT(corpus.stats().dedup_ratio(), 3.0);
  corpus.seal();

  std::string error;
  const auto reader = CorpusReader::open(file, &error);
  ASSERT_NE(reader, nullptr) << error;
  ASSERT_EQ(reader->members().size(), static_cast<std::size_t>(kMembers));
  EXPECT_TRUE(reader->members()[0].is_reference);
  for (int m = 0; m < kMembers; ++m) {
    const CorpusReader::Member& member = reader->members()[m];
    EXPECT_TRUE(member.readable) << member.damage;
    EXPECT_EQ(member.family, "taskfarm");
    EXPECT_EQ(member.delta_ref, 0u);  // all point at the elected reference
    expect_member_equals(*reader, static_cast<std::uint32_t>(m),
                         originals[m]);
  }
  EXPECT_GT(reader->stats().dedup_ratio(), 3.0);
  EXPECT_GT(reader->file_bytes(), 0u);
}

TEST_F(CorpusTest, EncodingSelectionPicksTheCheapestForm) {
  const std::string file = path("encodings.cdcc");
  Corpus corpus(file);
  const runtime::StreamKey key{0, 1};
  std::vector<StreamMap> originals;
  auto add = [&](const std::string& family,
                 std::vector<std::uint8_t> bytes) {
    StreamMap streams;
    streams[key] = std::move(bytes);
    runtime::MemoryStore record;
    fill_store(record, streams);
    corpus.add_member(family, "t" + std::to_string(originals.size()), record);
    originals.push_back(std::move(streams));
  };

  // Tiny stream: every header loses to the bytes themselves -> raw.
  add("tiny", {1, 2, 3, 4});

  // Low-entropy stream: gzip crushes it, chunking cannot -> gzip.
  add("text", std::vector<std::uint8_t>(10 * 1024, 'a'));

  // A 48 KiB block repeated 4 times: repeats sit far beyond DEFLATE's
  // 32 KiB window, but content-defined chunks dedup them -> chunks.
  const std::vector<std::uint8_t> block = random_bytes(48 * 1024, 9);
  std::vector<std::uint8_t> repeated;
  for (int i = 0; i < 4; ++i)
    repeated.insert(repeated.end(), block.begin(), block.end());
  add("far-repeat", repeated);

  // Second member of a family, near-identical -> delta vs the reference.
  std::vector<std::uint8_t> base = random_bytes(32 * 1024, 21);
  add("family", base);
  std::vector<std::uint8_t> edited = base;
  edited[100] ^= 0xff;
  add("family", edited);

  const CorpusStats& stats = corpus.stats();
  using E = MemberEncoding;
  EXPECT_GE(stats.by_encoding[static_cast<std::size_t>(E::kRaw)], 1u);
  EXPECT_GE(stats.by_encoding[static_cast<std::size_t>(E::kSelfGzip)], 1u);
  EXPECT_GE(stats.by_encoding[static_cast<std::size_t>(E::kChunks)], 1u);
  EXPECT_GE(stats.by_encoding[static_cast<std::size_t>(E::kDeltaCorrecting)],
            1u);

  corpus.seal();
  std::string error;
  const auto reader = CorpusReader::open(file, &error);
  ASSERT_NE(reader, nullptr) << error;
  for (std::uint32_t m = 0; m < originals.size(); ++m)
    expect_member_equals(*reader, m, originals[m]);
}

TEST_F(CorpusTest, ChunksDedupAcrossFamilies) {
  // Family A's member is chunk-encoded (far repeats); family B's member
  // carries one copy of the same block, which must intern as pure hits.
  const std::string file = path("crossfam.cdcc");
  Corpus corpus(file);
  const runtime::StreamKey key{0, 1};
  const std::vector<std::uint8_t> block = random_bytes(48 * 1024, 31);
  std::vector<std::uint8_t> repeated;
  for (int i = 0; i < 4; ++i)
    repeated.insert(repeated.end(), block.begin(), block.end());
  StreamMap a{{key, repeated}};
  StreamMap b{{key, block}};
  runtime::MemoryStore store_a;
  fill_store(store_a, a);
  corpus.add_member("fam-a", "m0", store_a);
  const std::uint64_t stored_before = corpus.stats().stored_bytes;

  runtime::MemoryStore store_b;
  fill_store(store_b, b);
  corpus.add_member("fam-b", "m0", store_b);

  EXPECT_GT(corpus.stats().chunk_hits, 0u);
  // The second member added almost nothing: its chunks already existed.
  EXPECT_LT(corpus.stats().stored_bytes - stored_before, block.size() / 8);

  corpus.seal();
  std::string error;
  const auto reader = CorpusReader::open(file, &error);
  ASSERT_NE(reader, nullptr) << error;
  expect_member_equals(*reader, 0, a);
  expect_member_equals(*reader, 1, b);
}

TEST_F(CorpusTest, PinningReElectsTheReferenceForLaterMembers) {
  const std::string file = path("pinning.cdcc");
  Corpus corpus(file);
  std::vector<StreamMap> originals;
  for (int m = 0; m < 4; ++m) {
    StreamMap streams =
        make_streams(1, 16 * 1024, 40 + static_cast<std::uint64_t>(m));
    runtime::MemoryStore record;
    fill_store(record, streams);
    // Member 2 is pinned: members 0-1 delta against 0, member 3 against 2.
    corpus.add_member("fam", "m" + std::to_string(m), record,
                      /*pin_reference=*/m == 2);
    originals.push_back(std::move(streams));
  }
  corpus.seal();

  std::string error;
  const auto reader = CorpusReader::open(file, &error);
  ASSERT_NE(reader, nullptr) << error;
  ASSERT_EQ(reader->members().size(), 4u);
  EXPECT_TRUE(reader->members()[0].is_reference);
  EXPECT_FALSE(reader->members()[1].is_reference);
  EXPECT_TRUE(reader->members()[2].is_reference);
  EXPECT_FALSE(reader->members()[3].is_reference);
  EXPECT_EQ(reader->members()[1].delta_ref, 0u);
  EXPECT_EQ(reader->members()[3].delta_ref, 2u);
  for (std::uint32_t m = 0; m < 4; ++m)
    expect_member_equals(*reader, m, originals[m]);
}

TEST_F(CorpusTest, CorpusStoreAdaptsTheRecordStoreInterface) {
  const std::string file = path("adapter.cdcc");
  Corpus corpus(file);
  CorpusStore store(&corpus, "fam", "m0");

  const std::vector<std::uint8_t> bytes = random_bytes(1000, 50);
  store.append({2, 9}, bytes);
  store.append({2, 9}, bytes);  // appends concatenate, like any store
  EXPECT_EQ(store.total_bytes(), 2000u);
  EXPECT_EQ(store.read({2, 9}).size(), 2000u);
  EXPECT_EQ(store.keys().size(), 1u);
  EXPECT_EQ(store.rank_bytes(2), 2000u);
  store.sync();  // must not commit the member

  EXPECT_EQ(store.seal_member(), 0u);
  EXPECT_EQ(store.total_bytes(), 0u);  // buffer cleared for the next member
  store.append({2, 9}, bytes);
  EXPECT_EQ(store.seal_member(), 1u);
  EXPECT_EQ(corpus.stats().members, 2u);
  corpus.seal();

  std::string error;
  const auto reader = CorpusReader::open(file, &error);
  ASSERT_NE(reader, nullptr) << error;
  const auto first = reader->read_stream(0, {2, 9});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->size(), 2000u);
}

TEST_F(CorpusTest, CrashedCorpusRequiresRepackThenReopens) {
  const std::string file = path("crashed.cdcc");
  const StreamMap streams = make_streams(2, 8 * 1024, 60);
  {
    Corpus corpus(file);
    runtime::MemoryStore record;
    fill_store(record, streams);
    corpus.add_member("fam", "m0", record);
    corpus.flush();  // m0's frames are durable
    runtime::MemoryStore extra;
    make_record_into(extra, 2, 8 * 1024, 61);
    corpus.add_member("fam", "m1", extra);
    corpus.abandon();  // crash: no index, m1 may be lost in the tail
  }

  std::string error;
  EXPECT_EQ(CorpusReader::open(file, &error), nullptr);
  EXPECT_NE(error.find("repack"), std::string::npos) << error;

  const std::string repacked = path("repacked.cdcc");
  const store::RepackResult result = store::repack_container(file, repacked);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.frames_kept, 0u);

  const auto reader = CorpusReader::open(repacked, &error);
  ASSERT_NE(reader, nullptr) << error;
  ASSERT_GE(reader->members().size(), 1u);  // the flushed member survived
  EXPECT_TRUE(reader->members()[0].readable) << reader->members()[0].damage;
  expect_member_equals(*reader, 0, streams);
}

TEST_F(CorpusTest, LostChunkDegradesOnlyTheMembersUsingIt) {
  const std::string file = path("degraded.cdcc");
  // fam-a: chunk-encoded member (the distinctive block content lives only
  // in its chunk frames). fam-b: small independent member.
  const runtime::StreamKey key{0, 1};
  const std::vector<std::uint8_t> block = random_bytes(48 * 1024, 70);
  std::vector<std::uint8_t> repeated;
  for (int i = 0; i < 4; ++i)
    repeated.insert(repeated.end(), block.begin(), block.end());
  const StreamMap a{{key, repeated}};
  const StreamMap b{{key, random_bytes(512, 71)}};
  {
    Corpus corpus(file);
    runtime::MemoryStore store_a;
    fill_store(store_a, a);
    corpus.add_member("fam-a", "m0", store_a);
    runtime::MemoryStore store_b;
    fill_store(store_b, b);
    corpus.add_member("fam-b", "m0", store_b);
    corpus.seal();
    ASSERT_GT(
        corpus.stats().by_encoding[static_cast<std::size_t>(
            MemberEncoding::kChunks)],
        0u);
  }

  // Corrupt the first chunk frame: its payload starts with the block's
  // first bytes, which appear nowhere else in the file.
  std::vector<char> bytes;
  {
    std::ifstream in(file, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const auto hit = std::search(
      bytes.begin(), bytes.end(),
      reinterpret_cast<const char*>(block.data()),
      reinterpret_cast<const char*>(block.data()) + 64);
  ASSERT_NE(hit, bytes.end());
  *hit ^= 0x5a;
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Repack drops the damaged frame; the corpus reopens with fam-a's
  // member flagged unreadable and fam-b's member intact.
  const std::string repacked = path("degraded_repacked.cdcc");
  const store::RepackResult result = store::repack_container(file, repacked);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GE(result.frames_dropped, 1u);

  std::string error;
  const auto reader = CorpusReader::open(repacked, &error);
  ASSERT_NE(reader, nullptr) << error;
  ASSERT_EQ(reader->members().size(), 2u);
  EXPECT_FALSE(reader->members()[0].readable);
  EXPECT_FALSE(reader->members()[0].damage.empty());
  EXPECT_FALSE(reader->read_stream(0, key).has_value());
  runtime::MemoryStore sink;
  EXPECT_FALSE(reader->load_member(0, sink));
  EXPECT_TRUE(reader->members()[1].readable);
  expect_member_equals(*reader, 1, b);
}

TEST_F(CorpusTest, ReaderStatsMatchTheWriterView) {
  const std::string file = path("stats.cdcc");
  runtime::MemoryStore record;
  make_record_into(record, 2, 4 * 1024, 80);
  CorpusStats written;
  {
    Corpus corpus(file);
    corpus.add_member("fam", "m0", record);
    corpus.add_member("fam", "m1", record);  // identical: maximal dedup
    corpus.seal();
    written = corpus.stats();
  }
  std::string error;
  const auto reader = CorpusReader::open(file, &error);
  ASSERT_NE(reader, nullptr) << error;
  EXPECT_EQ(reader->stats().members, written.members);
  EXPECT_EQ(reader->stats().streams, written.streams);
  EXPECT_EQ(reader->stats().raw_bytes, written.raw_bytes);
  EXPECT_EQ(reader->stats().families, written.families);
}

}  // namespace
}  // namespace cdc::corpus
