// Differential compression round-trips: onepass and correcting encoders
// (JACM 49(3), 2002) against both apply paths — fresh-buffer and the
// TKDE'03 in-place reconstruction — plus malformed-delta rejection.
//
// fuzz_delta suites run under the nightly `ctest -R fuzz` matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "corpus/delta.h"
#include "support/rng.h"

namespace cdc::corpus {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.bounded(256));
  return bytes;
}

constexpr DeltaAlgorithm kBoth[] = {DeltaAlgorithm::kOnepass,
                                    DeltaAlgorithm::kCorrecting};

// Encodes version against reference and checks BOTH reconstruction paths
// produce the version bit-for-bit. Returns the serialized delta size.
std::size_t expect_roundtrip(const std::vector<std::uint8_t>& reference,
                             const std::vector<std::uint8_t>& version,
                             DeltaAlgorithm algorithm,
                             DeltaStats* stats = nullptr) {
  const std::vector<std::uint8_t> delta =
      encode_delta(reference, version, algorithm, {}, stats);

  const auto fresh = apply_delta(reference, delta);
  EXPECT_TRUE(fresh.has_value()) << to_string(algorithm);
  if (fresh) {
    EXPECT_EQ(*fresh, version) << to_string(algorithm);
  }

  std::vector<std::uint8_t> buffer = reference;  // in-place: ref -> version
  EXPECT_TRUE(apply_delta_in_place(buffer, delta)) << to_string(algorithm);
  EXPECT_EQ(buffer, version) << to_string(algorithm) << " (in place)";
  return delta.size();
}

TEST(Delta, IdenticalInputsCollapseToCopies) {
  const std::vector<std::uint8_t> bytes = random_bytes(8 * 1024, 1);
  for (const DeltaAlgorithm algorithm : kBoth) {
    DeltaStats stats;
    const std::size_t size = expect_roundtrip(bytes, bytes, algorithm, &stats);
    EXPECT_EQ(stats.copied_bytes, bytes.size()) << to_string(algorithm);
    EXPECT_EQ(stats.literal_bytes, 0u) << to_string(algorithm);
    EXPECT_LT(size, 64u) << to_string(algorithm);  // header + one copy
  }
}

TEST(Delta, EdgeShapesRoundTrip) {
  const std::vector<std::uint8_t> some = random_bytes(4096, 2);
  const std::vector<std::uint8_t> empty;
  for (const DeltaAlgorithm algorithm : kBoth) {
    expect_roundtrip(empty, some, algorithm);   // all literals
    expect_roundtrip(some, empty, algorithm);   // version shrinks to nothing
    expect_roundtrip(empty, empty, algorithm);
    expect_roundtrip(some, {some.begin(), some.begin() + 100}, algorithm);
    std::vector<std::uint8_t> grown = some;     // version longer than ref
    const std::vector<std::uint8_t> tail = random_bytes(2048, 3);
    grown.insert(grown.end(), tail.begin(), tail.end());
    expect_roundtrip(some, grown, algorithm);
  }
}

TEST(Delta, InsertionKeepsMostBytesAsCopies) {
  const std::vector<std::uint8_t> reference = random_bytes(32 * 1024, 4);
  std::vector<std::uint8_t> version = reference;
  const std::vector<std::uint8_t> insert = random_bytes(200, 5);
  version.insert(version.begin() + 10000, insert.begin(), insert.end());
  for (const DeltaAlgorithm algorithm : kBoth) {
    DeltaStats stats;
    const std::size_t size =
        expect_roundtrip(reference, version, algorithm, &stats);
    EXPECT_GT(stats.copied_bytes, reference.size() * 9 / 10)
        << to_string(algorithm);
    EXPECT_LT(size, version.size() / 10) << to_string(algorithm);
  }
}

TEST(Delta, SwappedHalvesForceAnInPlaceCycle) {
  // version = B | A where reference = A | B: each copy reads the region
  // the other writes, an irreducible 2-cycle the in-place ordering must
  // break by materializing one copy as a literal (TKDE'03 §4). Onepass
  // cannot match B at all (its rp <= vp constraint), so only correcting
  // produces the two-copy cycle.
  const std::size_t half = 4096;
  const std::vector<std::uint8_t> reference = random_bytes(2 * half, 6);
  std::vector<std::uint8_t> version;
  version.insert(version.end(), reference.begin() + half, reference.end());
  version.insert(version.end(), reference.begin(), reference.begin() + half);
  for (const DeltaAlgorithm algorithm : kBoth)
    expect_roundtrip(reference, version, algorithm);
  DeltaStats stats;
  expect_roundtrip(reference, version, DeltaAlgorithm::kCorrecting, &stats);
  EXPECT_GE(stats.cycles_broken, 1u);
}

TEST(Delta, CorrectingRecoversAMatchOnepassCommitsPast) {
  // The corrective step's reason to exist: content that appears EARLIER
  // in the version than in the reference. Onepass only matches footprints
  // at reference offsets it has already passed (rp <= vp), so a block
  // moved toward the front defeats it; correcting checkpoints the whole
  // reference up front and recovers it. The moved block is the LARGE
  // piece: the two recovered copies form an in-place cycle, and the break
  // must sacrifice the cheap one, keeping the big copy correcting found.
  const std::vector<std::uint8_t> head = random_bytes(8 * 1024, 7);
  const std::vector<std::uint8_t> moved = random_bytes(24 * 1024, 8);
  std::vector<std::uint8_t> reference = head;
  reference.insert(reference.end(), moved.begin(), moved.end());
  std::vector<std::uint8_t> version = moved;  // block moved to the front
  version.insert(version.end(), head.begin(), head.end());

  DeltaStats onepass, correcting;
  expect_roundtrip(reference, version, DeltaAlgorithm::kOnepass, &onepass);
  expect_roundtrip(reference, version, DeltaAlgorithm::kCorrecting,
                   &correcting);
  EXPECT_GT(correcting.copied_bytes, onepass.copied_bytes);
  EXPECT_GE(correcting.cycles_broken, 1u);
}

TEST(Delta, HeaderRecordsAlgorithmAndSizes) {
  const std::vector<std::uint8_t> reference = random_bytes(1000, 9);
  const std::vector<std::uint8_t> version = random_bytes(1500, 10);
  const std::vector<std::uint8_t> delta =
      encode_delta(reference, version, DeltaAlgorithm::kCorrecting);
  const auto header = read_delta_header(delta);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->algorithm,
            static_cast<std::uint8_t>(DeltaAlgorithm::kCorrecting));
  EXPECT_EQ(header->ref_len, reference.size());
  EXPECT_EQ(header->ver_len, version.size());
}

TEST(Delta, MalformedDeltasAreRejectedNotFatal) {
  const std::vector<std::uint8_t> reference = random_bytes(2048, 11);
  std::vector<std::uint8_t> version = reference;
  version[100] ^= 0xff;
  const std::vector<std::uint8_t> good =
      encode_delta(reference, version, DeltaAlgorithm::kOnepass);
  ASSERT_TRUE(apply_delta(reference, good).has_value());

  auto rejects = [&](std::vector<std::uint8_t> bad, const char* what) {
    EXPECT_FALSE(apply_delta(reference, bad).has_value()) << what;
    std::vector<std::uint8_t> buffer = reference;
    EXPECT_FALSE(apply_delta_in_place(buffer, bad)) << what;
  };

  rejects({}, "empty");
  rejects({'X'}, "bad magic");
  {
    std::vector<std::uint8_t> bad = good;
    bad[0] = 'E';
    rejects(std::move(bad), "wrong magic byte");
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad[1] = 99;  // unknown format version
    rejects(std::move(bad), "unknown version");
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad.resize(bad.size() / 2);  // truncated mid-command
    rejects(std::move(bad), "truncated");
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad.push_back(0x7f);  // bytes after the end marker
    rejects(std::move(bad), "trailing garbage");
  }
  {
    // A copy that reads past the reference: serialize it by hand.
    DeltaCommand copy;
    copy.kind = DeltaCommand::Kind::kCopy;
    copy.write_off = 0;
    copy.read_off = reference.size();  // out of bounds
    copy.length = 64;
    const std::vector<DeltaCommand> commands{copy};
    rejects(serialize_delta(commands, reference.size(), 64,
                            DeltaAlgorithm::kOnepass),
            "copy past reference end");
  }
  {
    // A write past the declared version length.
    DeltaCommand add;
    add.kind = DeltaCommand::Kind::kAdd;
    add.write_off = 100;
    add.length = 8;
    add.bytes = random_bytes(8, 12);
    const std::vector<DeltaCommand> commands{add};
    rejects(serialize_delta(commands, reference.size(), 10,
                            DeltaAlgorithm::kOnepass),
            "write past version end");
  }
}

TEST(Delta, InPlaceRequiresTheReferenceSizedBuffer) {
  const std::vector<std::uint8_t> reference = random_bytes(1024, 13);
  const std::vector<std::uint8_t> version = random_bytes(900, 14);
  const std::vector<std::uint8_t> delta =
      encode_delta(reference, version, DeltaAlgorithm::kCorrecting);
  std::vector<std::uint8_t> wrong = reference;
  wrong.pop_back();  // size != ref_len: cannot be the reference
  EXPECT_FALSE(apply_delta_in_place(wrong, delta));
}

TEST(fuzz_delta, RandomEditScriptsRoundTripBothAlgorithms) {
  // Property sweep: random references mutated by random edit scripts
  // (overwrites, inserts, deletes, block moves); both algorithms, both
  // apply paths, every seed.
  const std::uint64_t base_seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  const std::uint64_t num_seeds = env_u64("CDC_FUZZ_SEEDS", 64);
  for (std::uint64_t s = 0; s < num_seeds; ++s) {
    const std::uint64_t seed = base_seed + s;
    support::Xoshiro256 rng(seed * 0x2545f4914f6cdd1dull + 3);
    std::vector<std::uint8_t> reference =
        random_bytes(512 + rng.bounded(24 * 1024), seed);
    std::vector<std::uint8_t> version = reference;
    const std::uint64_t edits = 1 + rng.bounded(8);
    for (std::uint64_t e = 0; e < edits && !version.empty(); ++e) {
      const std::size_t at = rng.bounded(version.size());
      switch (rng.bounded(4)) {
        case 0:  // overwrite a byte
          version[at] = static_cast<std::uint8_t>(rng.bounded(256));
          break;
        case 1: {  // insert a small random run
          const auto run = random_bytes(1 + rng.bounded(300), seed ^ e);
          version.insert(version.begin() + static_cast<std::ptrdiff_t>(at),
                         run.begin(), run.end());
          break;
        }
        case 2: {  // delete a span
          const std::size_t n = std::min<std::size_t>(
              1 + rng.bounded(300), version.size() - at);
          version.erase(version.begin() + static_cast<std::ptrdiff_t>(at),
                        version.begin() + static_cast<std::ptrdiff_t>(at + n));
          break;
        }
        default: {  // rotate: moves blocks, exercising correction + cycles
          std::rotate(version.begin(),
                      version.begin() + static_cast<std::ptrdiff_t>(at),
                      version.end());
          break;
        }
      }
    }
    for (const DeltaAlgorithm algorithm : kBoth) {
      SCOPED_TRACE(testing::Message()
                   << "seed=" << seed << " algorithm=" << to_string(algorithm));
      expect_roundtrip(reference, version, algorithm);
    }
  }
}

TEST(fuzz_delta, DeltaIsDeterministic) {
  const std::uint64_t seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  const std::vector<std::uint8_t> reference = random_bytes(16 * 1024, seed);
  std::vector<std::uint8_t> version = reference;
  version.erase(version.begin() + 5000, version.begin() + 6000);
  for (const DeltaAlgorithm algorithm : kBoth)
    EXPECT_EQ(encode_delta(reference, version, algorithm),
              encode_delta(reference, version, algorithm))
        << to_string(algorithm);
}

}  // namespace
}  // namespace cdc::corpus
