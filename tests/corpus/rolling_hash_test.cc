// Karp-Rabin property tests: the incremental roller must agree with the
// direct polynomial evaluation at every window offset — the invariant the
// content-defined chunker's determinism rests on (DESIGN.md §11).
//
// The fuzz_rolling suite carries the `fuzz_` prefix so the nightly
// `ctest -R fuzz` matrix re-runs it across seeds
// (CDC_FUZZ_BASE_SEED / CDC_FUZZ_SEEDS).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "corpus/rolling.h"
#include "support/rng.h"

namespace cdc::corpus {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.bounded(256));
  return bytes;
}

TEST(RollingHash, DirectHashMatchesHornerByHand) {
  // H("ab") = 'a' * base + 'b' mod p, small enough to check by hand.
  const std::uint8_t ab[] = {'a', 'b'};
  EXPECT_EQ(kr_hash(ab), kr_add(kr_mul('a', kKarpRabinBase), 'b'));
  EXPECT_EQ(kr_hash(std::span<const std::uint8_t>{}), 0u);
}

TEST(RollingHash, ModularArithmeticStaysInRange) {
  EXPECT_EQ(kr_mod(kKarpRabinPrime), 0u);
  EXPECT_EQ(kr_mod(kKarpRabinPrime + 5), 5u);
  EXPECT_EQ(kr_sub(3, 5), kKarpRabinPrime - 2);
  EXPECT_EQ(kr_add(kKarpRabinPrime - 1, 1), 0u);
  // kr_mul of maximal residues must not overflow or exceed the modulus.
  const std::uint64_t big = kKarpRabinPrime - 1;
  EXPECT_LT(kr_mul(big, big), kKarpRabinPrime);
}

TEST(RollingHash, PowMatchesRepeatedMultiplication) {
  std::uint64_t acc = 1;
  for (std::uint64_t e = 0; e < 70; ++e) {
    EXPECT_EQ(kr_pow(kKarpRabinBase, e), acc) << "exponent " << e;
    acc = kr_mul(acc, kKarpRabinBase);
  }
  EXPECT_EQ(kr_pow(0, 0), 1u);  // convention: x^0 == 1
}

TEST(RollingHash, RollEqualsDirectHashAtEveryOffset) {
  // The core property, deterministic case: slide a 16-byte window over a
  // fixed string and compare against kr_hash of the window at each offset.
  const std::size_t width = 16;
  const std::vector<std::uint8_t> bytes = random_bytes(512, /*seed=*/42);
  KarpRabinWindow window(width);
  for (std::size_t i = 0; i < width; ++i) window.push(bytes[i]);
  ASSERT_TRUE(window.full());
  for (std::size_t start = 0;; ++start) {
    const auto view =
        std::span<const std::uint8_t>(bytes).subspan(start, width);
    ASSERT_EQ(window.hash(), kr_hash(view)) << "offset " << start;
    if (start + width >= bytes.size()) break;
    window.roll(bytes[start], bytes[start + width]);
  }
}

TEST(fuzz_rolling, RollEqualsDirectHashForRandomWidthsAndBases) {
  // Property sweep: random strings, widths, and polynomial bases; the
  // incremental roll must equal the direct evaluation at every offset.
  const std::uint64_t base_seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  const std::uint64_t num_seeds = env_u64("CDC_FUZZ_SEEDS", 64);
  for (std::uint64_t s = 0; s < num_seeds; ++s) {
    const std::uint64_t seed = base_seed + s;
    support::Xoshiro256 rng(seed * 0x5851f42d4c957f2dull + 1);
    const std::size_t width = 1 + rng.bounded(48);
    const std::uint64_t base = 2 + rng.bounded(1u << 20);
    const std::size_t len = width + rng.bounded(384);
    const std::vector<std::uint8_t> bytes = random_bytes(len, seed);

    KarpRabinWindow window(width, base);
    for (std::size_t i = 0; i < width; ++i) window.push(bytes[i]);
    for (std::size_t start = 0;; ++start) {
      const auto view =
          std::span<const std::uint8_t>(bytes).subspan(start, width);
      ASSERT_EQ(window.hash(), kr_hash(view, base))
          << "seed=" << seed << " width=" << width << " base=" << base
          << " offset=" << start;
      if (start + width >= bytes.size()) break;
      window.roll(bytes[start], bytes[start + width]);
    }
  }
}

TEST(fuzz_rolling, ResetRestartsTheWindowCleanly) {
  const std::uint64_t seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  const std::vector<std::uint8_t> bytes = random_bytes(64, seed);
  KarpRabinWindow window(8);
  for (std::size_t i = 0; i < 8; ++i) window.push(bytes[i]);
  const std::uint64_t first = window.hash();
  window.reset();
  EXPECT_FALSE(window.full());
  for (std::size_t i = 0; i < 8; ++i) window.push(bytes[i]);
  EXPECT_TRUE(window.full());
  EXPECT_EQ(window.hash(), first);
}

TEST(RollingHash, DifferentBasesDisagreeOnTheSameContent) {
  // Two independent bases are what make ChunkId a 122-bit key; they must
  // not be trivially correlated.
  const std::vector<std::uint8_t> bytes = random_bytes(128, 7);
  EXPECT_NE(kr_hash(bytes, 263), kr_hash(bytes, 1000003));
}

}  // namespace
}  // namespace cdc::corpus
