// End-to-end tests of the new storage pipeline (src/store/): recording an
// MCB run through the sharded container store with the parallel
// compression service must store byte-for-byte what the seed's inline path
// stores, and a sealed container must replay the run bitwise.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "apps/mcb.h"
#include "minimpi/simulator.h"
#include "runtime/storage.h"
#include "store/compression_service.h"
#include "store/container_reader.h"
#include "store/container_store.h"
#include "store/sharded_store.h"
#include "tool/async_recorder.h"
#include "tool/frame_sink.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace cdc {
namespace {

class ContainerPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process scratch dir: ctest -j runs each test of this fixture as
    // its own process, and a shared directory would be remove_all'd by a
    // concurrent sibling mid-test.
    dir_ = std::filesystem::temp_directory_path() /
           ("cdc_pipeline_test." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

minimpi::Simulator::Config sim_config(int ranks, std::uint64_t noise_seed) {
  minimpi::Simulator::Config config;
  config.num_ranks = ranks;
  config.noise_seed = noise_seed;
  return config;
}

apps::McbConfig small_mcb() {
  apps::McbConfig config;
  config.grid_x = 3;
  config.grid_y = 3;
  config.particles_per_rank = 40;
  config.segments_per_particle = 8;
  config.tracks_per_poll = 16;
  return config;
}

apps::McbResult record_mcb(std::uint64_t noise_seed, tool::Recorder& rec) {
  minimpi::Simulator sim(sim_config(9, noise_seed), &rec);
  return apps::run_mcb(sim, small_mcb());
}

tool::ToolOptions chunked_options() {
  tool::ToolOptions options;
  options.chunk_target = 64;  // force many chunks through the service
  return options;
}

TEST_F(ContainerPipelineTest,
       ParallelContainerPipelineStoresBitIdenticalStreams) {
  const tool::ToolOptions options = chunked_options();

  // Seed path: inline encoding straight into a MemoryStore.
  runtime::MemoryStore inline_store;
  tool::Recorder inline_rec(9, &inline_store, options);
  const auto inline_run = record_mcb(11, inline_rec);
  inline_rec.finalize();
  ASSERT_GT(inline_store.total_bytes(), 0u);

  // New path: 4-worker compression service committing into the sharded,
  // checksummed container store.
  store::ContainerStore container(path("run.cdcc"));
  store::CompressionService::Config service_config;
  service_config.workers = 4;
  store::CompressionService service(&container, service_config);
  tool::AsyncFrameSink sink(&service);
  tool::Recorder parallel_rec(9, &container, options, &sink);
  const auto parallel_run = record_mcb(11, parallel_rec);
  parallel_rec.finalize();
  service.drain();

  EXPECT_EQ(inline_run.global_tally, parallel_run.global_tally);
  ASSERT_EQ(inline_store.keys().size(), container.keys().size());
  // The acceptance bar: every stream byte-for-byte identical.
  for (const runtime::StreamKey& key : inline_store.keys())
    EXPECT_EQ(inline_store.read(key), container.read(key))
        << "stream (" << key.rank << "," << key.callsite << ") diverged";
  EXPECT_GT(service.stats().jobs, 9u);  // the service really did the work
}

TEST_F(ContainerPipelineTest, SealedContainerReplaysTheRunBitwise) {
  const tool::ToolOptions options = chunked_options();
  const std::string file = path("replay.cdcc");

  apps::McbResult recorded{};
  {
    store::ContainerStore container(file);
    store::CompressionService::Config service_config;
    service_config.workers = 4;
    store::CompressionService service(&container, service_config);
    tool::AsyncFrameSink sink(&service);
    tool::Recorder recorder(9, &container, options, &sink);
    recorded = record_mcb(11, recorder);
    recorder.finalize();
    service.drain();
    container.seal();
  }

  // The container round-trips through disk verifiably clean...
  {
    const auto reader = store::ContainerReader::open(file);
    ASSERT_NE(reader, nullptr);
    EXPECT_TRUE(reader->verify().ok);
  }

  // ...and a replay fed from the reopened container reproduces the run
  // under a different noise seed.
  const auto reopened = store::ContainerStore::open(file);
  ASSERT_NE(reopened, nullptr);
  tool::Replayer replayer(9, reopened.get(), options);
  minimpi::Simulator sim(sim_config(9, 99), &replayer);
  const auto replayed = apps::run_mcb(sim, small_mcb());

  EXPECT_EQ(recorded.global_tally, replayed.global_tally);
  EXPECT_TRUE(replayer.fully_replayed());
}

TEST_F(ContainerPipelineTest, ShardedStoreIsADropInRecordStore) {
  const tool::ToolOptions options = chunked_options();

  runtime::MemoryStore memory_store;
  tool::Recorder memory_rec(9, &memory_store, options);
  record_mcb(11, memory_rec);
  memory_rec.finalize();

  store::ShardedStore sharded_store;
  tool::Recorder sharded_rec(9, &sharded_store, options);
  record_mcb(11, sharded_rec);
  sharded_rec.finalize();

  ASSERT_EQ(memory_store.keys(), sharded_store.keys());
  for (const runtime::StreamKey& key : memory_store.keys())
    EXPECT_EQ(memory_store.read(key), sharded_store.read(key));
  EXPECT_EQ(memory_store.total_bytes(), sharded_store.total_bytes());
}

TEST_F(ContainerPipelineTest, AsyncRecorderServicePathMatchesInlinePath) {
  // The §4.2 single-stream runtime: with compression workers the stored
  // bytes must not change, only who does the DEFLATE.
  auto record_events = [](std::size_t workers, runtime::RecordStore* store) {
    tool::AsyncRecorder::Config config;
    config.key = {0, 1};
    config.options.chunk_target = 64;
    config.compression_workers = workers;
    tool::AsyncRecorder recorder(config, store);
    for (std::uint64_t c = 1; c <= 20000; ++c) {
      if (c % 7 == 0)
        recorder.enqueue(record::ReceiveEvent{false, false, -1, 0});
      recorder.enqueue(record::ReceiveEvent{
          true, false, static_cast<std::int32_t>(c % 5), c});
    }
    recorder.finalize();
  };

  runtime::MemoryStore inline_store;
  record_events(/*workers=*/0, &inline_store);
  runtime::MemoryStore service_store;
  record_events(/*workers=*/2, &service_store);

  ASSERT_GT(inline_store.total_bytes(), 0u);
  EXPECT_EQ(inline_store.read({0, 1}), service_store.read({0, 1}));
}

}  // namespace
}  // namespace cdc
