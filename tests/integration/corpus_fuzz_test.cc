// Corpus-class fuzzing: N seeded record runs ingested as members of ONE
// CorpusStore, then every member is materialized back out of the corpus
// and replayed under a different noise seed — the replay-equivalence
// oracle plus the bitwise order-sensitive result must hold for each, with
// both reconstruction paths (fresh apply and TKDE'03 in-place). A second
// corpus is crashed mid-ingest and salvaged through repack_container; all
// surviving members must still replay bit-identically.
//
// Suite names carry the `fuzz_` prefix: the nightly CI matrix runs
// `ctest -R fuzz` across CDC_FUZZ_BASE_SEED / CDC_FUZZ_SEEDS.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "corpus/corpus.h"
#include "minimpi/schedule_fuzzer.h"
#include "minimpi/simulator.h"
#include "runtime/storage.h"
#include "store/container_reader.h"
#include "support/oracle.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace cdc {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

std::filesystem::path scratch_dir() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("cdc_corpus_fuzz_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return dir;
}

struct RecordedMember {
  std::uint64_t seed = 0;
  std::uint32_t ordinal = 0;
  double result = 0.0;      ///< order-sensitive FP tally (bitwise witness)
  support::Trace trace;     ///< the receive order the application saw
};

tool::ToolOptions corpus_tool_options() {
  tool::ToolOptions options;
  options.chunk_target = 64;  // small chunks: exercise epoch logic
  return options;
}

// Records one seeded run straight into the corpus via the RecordStore
// adapter and returns its witness data.
RecordedMember record_member(const fuzz::FuzzWorkload& workload,
                             corpus::Corpus& corpus, std::uint64_t seed) {
  corpus::CorpusStore store(&corpus, workload.name,
                            "seed-" + std::to_string(seed));
  const tool::ToolOptions options = corpus_tool_options();
  tool::Recorder recorder(workload.num_ranks, &store, options);
  support::OrderProbe probe(&recorder);
  minimpi::Simulator::Config config;
  config.num_ranks = workload.num_ranks;
  config.noise_seed = seed;
  minimpi::Simulator sim(config, &probe);
  RecordedMember member;
  member.seed = seed;
  member.result = workload.run(sim);
  recorder.finalize();
  member.ordinal = store.seal_member();
  member.trace = probe.trace();
  return member;
}

// Replays `member` out of the reopened corpus (fresh or in-place
// reconstruction) under a shifted noise seed and checks the oracle.
void expect_member_replays(const fuzz::FuzzWorkload& workload,
                           const corpus::CorpusReader& reader,
                           const RecordedMember& member, bool in_place) {
  SCOPED_TRACE(testing::Message()
               << "workload=" << workload.name << " seed=" << member.seed
               << " in_place=" << in_place);
  runtime::MemoryStore loaded;
  ASSERT_TRUE(reader.load_member(member.ordinal, loaded, in_place));

  const tool::ToolOptions options = corpus_tool_options();
  tool::Replayer replayer(workload.num_ranks, &loaded, options);
  support::OrderProbe probe(&replayer);
  minimpi::Simulator::Config config;
  config.num_ranks = workload.num_ranks;
  config.noise_seed = member.seed + 7777;  // different network timing
  minimpi::Simulator sim(config, &probe);
  const double replayed = workload.run(sim);

  EXPECT_EQ(replayed, member.result);  // bitwise: order reproduced
  EXPECT_TRUE(replayer.fully_replayed());
  const support::OracleReport report =
      support::check_equivalence(member.trace, probe.trace());
  EXPECT_TRUE(report.ok) << (report.mismatches.empty()
                                 ? "no detail"
                                 : report.mismatches.front());
}

TEST(fuzz_corpus, SeededRunsIngestDedupAndReplayBitIdentically) {
  const std::uint64_t base_seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  const std::uint64_t num_seeds = env_u64("CDC_FUZZ_SEEDS", 8);
  const fuzz::FuzzWorkload workload = fuzz::taskfarm_workload();
  const auto dir = scratch_dir();
  const std::string file = (dir / "corpus_ingest.cdcc").string();

  // Two families per seed: the CDC-coded record (replayable — replay is
  // implemented for the CDC codec only) and the same run's UNcompressed
  // baseline rows, where the corpus itself is the only compressor — the
  // shape the fig21 dedup bench measures.
  std::vector<RecordedMember> recorded;
  std::vector<std::pair<std::uint32_t,
                        std::map<runtime::StreamKey,
                                 std::vector<std::uint8_t>>>> raw_members;
  {
    corpus::Corpus corpus(file);
    for (std::uint64_t s = 0; s < num_seeds; ++s) {
      const std::uint64_t seed = base_seed + s;
      recorded.push_back(record_member(workload, corpus, seed));

      tool::ToolOptions raw_options = corpus_tool_options();
      raw_options.codec = tool::RecordCodec::kBaselineRaw;
      runtime::MemoryStore rows;
      tool::Recorder recorder(workload.num_ranks, &rows, raw_options);
      minimpi::Simulator::Config config;
      config.num_ranks = workload.num_ranks;
      config.noise_seed = seed;
      minimpi::Simulator sim(config, &recorder);
      workload.run(sim);
      recorder.finalize();
      const std::uint32_t ordinal = corpus.add_member(
          workload.name + "-raw", "seed-" + std::to_string(seed), rows);
      std::map<runtime::StreamKey, std::vector<std::uint8_t>> copy;
      for (const auto& key : rows.keys()) copy[key] = rows.read(key);
      raw_members.emplace_back(ordinal, std::move(copy));
    }
    EXPECT_EQ(corpus.stats().members, 2 * num_seeds);
    EXPECT_EQ(corpus.stats().families, 2u);
    corpus.seal();
  }

  std::string error;
  const auto reader = corpus::CorpusReader::open(file, &error);
  ASSERT_NE(reader, nullptr) << error;
  ASSERT_EQ(reader->members().size(), recorded.size() + raw_members.size());
  // Raw rows dominate the corpus' input bytes and share heavy structure
  // across seeds: gzip fallback + delta must shrink them well past raw.
  if (num_seeds >= 4) {
    EXPECT_GT(reader->stats().dedup_ratio(), 1.5);
  }

  for (std::size_t i = 0; i < recorded.size(); ++i) {
    ASSERT_TRUE(reader->members()[recorded[i].ordinal].readable)
        << reader->members()[recorded[i].ordinal].damage;
    // Alternate reconstruction paths across members; both must be exact.
    expect_member_replays(workload, *reader, recorded[i],
                          /*in_place=*/(i % 2) == 1);
  }
  // Raw-row members round-trip byte-identically through both paths.
  for (const auto& [ordinal, streams] : raw_members) {
    for (const auto& [key, bytes] : streams) {
      const auto fresh = reader->read_stream(ordinal, key, false);
      const auto in_place = reader->read_stream(ordinal, key, true);
      ASSERT_TRUE(fresh.has_value() && in_place.has_value());
      EXPECT_EQ(*fresh, bytes);
      EXPECT_EQ(*in_place, bytes);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(fuzz_corpus, CrashMidIngestSalvagesToReplayableMembers) {
  const std::uint64_t base_seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  const std::uint64_t num_seeds = std::max<std::uint64_t>(
      2, env_u64("CDC_FUZZ_SEEDS", 8) / 2);
  const fuzz::FuzzWorkload workload = fuzz::taskfarm_workload();
  const auto dir = scratch_dir();
  const std::string file = (dir / "corpus_crash.cdcc").string();
  const std::string repacked = (dir / "corpus_crash_repacked.cdcc").string();

  std::vector<RecordedMember> recorded;
  {
    corpus::Corpus corpus(file);
    for (std::uint64_t s = 0; s < num_seeds; ++s)
      recorded.push_back(record_member(workload, corpus, base_seed + s));
    corpus.flush();  // everything so far is durable
    // One more member rides the unflushed tail, then the "process dies".
    record_member(workload, corpus, base_seed + num_seeds);
    corpus.abandon();
  }

  // A crashed corpus refuses to open until salvaged.
  std::string error;
  EXPECT_EQ(corpus::CorpusReader::open(file, &error), nullptr);
  EXPECT_NE(error.find("repack"), std::string::npos) << error;

  const store::RepackResult repack = store::repack_container(file, repacked);
  ASSERT_TRUE(repack.ok) << repack.error;

  const auto reader = corpus::CorpusReader::open(repacked, &error);
  ASSERT_NE(reader, nullptr) << error;
  ASSERT_GE(reader->members().size(), recorded.size());

  // Every flushed member survived intact and still replays bitwise.
  for (std::size_t i = 0; i < recorded.size(); ++i) {
    ASSERT_TRUE(reader->members()[recorded[i].ordinal].readable)
        << reader->members()[recorded[i].ordinal].damage;
    expect_member_replays(workload, *reader, recorded[i],
                          /*in_place=*/(i % 2) == 0);
  }
  // Tail members may or may not have survived; any that did must be
  // internally consistent (readable implies CRC-verified streams).
  for (std::size_t m = recorded.size(); m < reader->members().size(); ++m) {
    if (!reader->members()[m].readable) continue;
    for (const auto& key : reader->member_keys(static_cast<std::uint32_t>(m)))
      EXPECT_TRUE(reader
                      ->read_stream(static_cast<std::uint32_t>(m), key)
                      .has_value());
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cdc
