// The survive-and-resume fuzz slice: rank kills and storage I/O faults
// (fuzz::kFailureFaultClasses) through record → survive → degraded
// replay, oracle-checked per case.
//
// Suite names carry the `fuzz_` prefix so the nightly seed-matrix job
// (`ctest -R fuzz`) and the dedicated degraded-replay CI job
// (`ctest -R fuzz_degraded`) pick them up. Env contract, as everywhere:
//   CDC_FUZZ_BASE_SEED=<seed> CDC_FUZZ_SEEDS=<n>
// plus CDC_GAP_REPORT_DIR=<dir> to keep each kill case's machine-readable
// gap report (the CI job uploads that directory as an artifact).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "minimpi/schedule_fuzzer.h"
#include "obs/json.h"

namespace cdc {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

fuzz::FuzzOptions degraded_options(std::uint32_t default_seeds) {
  fuzz::FuzzOptions options;
  options.base_seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  options.num_seeds = static_cast<std::uint32_t>(
      env_u64("CDC_FUZZ_SEEDS", default_seeds));
  options.classes.assign(fuzz::kFailureFaultClasses.begin(),
                         fuzz::kFailureFaultClasses.end());
  if (const char* dir = std::getenv("CDC_GAP_REPORT_DIR"); dir != nullptr)
    options.gap_report_dir = dir;
  return options;
}

TEST(fuzz_degraded, TaskfarmSurvivesKillAndIoFaultClasses) {
  // The CI slice: 8 seeds x {rank_kill, io_fault}. Every case must
  // complete without an abort and verify against the oracle — prefix
  // equivalence for kills, full bit-identity for retried I/O faults.
  const fuzz::FuzzOptions options = degraded_options(8);
  fuzz::ScheduleFuzzer fuzzer(fuzz::taskfarm_workload(), options);
  const fuzz::FuzzReport report = fuzzer.run();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.cases_run,
            static_cast<std::uint64_t>(options.num_seeds) *
                fuzz::kFailureFaultClasses.size());
  EXPECT_EQ(report.cases_passed, report.cases_run);
  EXPECT_GT(report.events_checked, 0u);
  EXPECT_GT(report.faults_injected, 0u);
}

TEST(fuzz_degraded, McbSurvivesIoFaults) {
  // MCB is not kill-tolerant (its completion count cannot shrink), but
  // its storage path must absorb I/O faults just the same.
  fuzz::FuzzOptions options = degraded_options(2);
  options.classes = {fuzz::FaultClass::kIoFault};
  fuzz::ScheduleFuzzer fuzzer(fuzz::mcb_workload(), options);
  const fuzz::FuzzReport report = fuzzer.run();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.cases_passed, report.cases_run);
}

TEST(fuzz_degraded, KillCaseWritesAWellFormedGapReport) {
  const std::uint64_t seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("cdc_gap_reports_" + std::to_string(::getpid()));
  fuzz::FuzzOptions options;
  options.base_seed = seed;
  options.gap_report_dir = dir.string();
  fuzz::ScheduleFuzzer fuzzer(fuzz::taskfarm_workload(), options);
  fuzz::FuzzReport report;
  EXPECT_EQ(fuzzer.run_case(fuzz::FaultClass::kRankKill, seed, &report),
            std::nullopt);

  const fuzz::FuzzWorkload workload = fuzz::taskfarm_workload();
  const auto path =
      dir / ("gaps_" + workload.name + "_" + std::to_string(seed) + ".json");
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing gap report " << path;
  std::ostringstream doc;
  doc << in.rdbuf();
  EXPECT_TRUE(obs::json_well_formed(doc.str()));
  EXPECT_NE(doc.str().find("\"coverage\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(fuzz_degraded, FailureCaseKeyIsBitReproducible) {
  // The reproduction contract extends to the failure classes: the same
  // (workload, class, seed) kills the same rank at the same time and
  // faults the same appends.
  const std::uint64_t seed = env_u64("CDC_FUZZ_BASE_SEED", 1) + 29;
  for (const fuzz::FaultClass cls : fuzz::kFailureFaultClasses) {
    fuzz::FuzzReport a, b;
    for (fuzz::FuzzReport* report : {&a, &b}) {
      fuzz::ScheduleFuzzer fuzzer(fuzz::taskfarm_workload());
      EXPECT_EQ(fuzzer.run_case(cls, seed, report), std::nullopt)
          << fuzz::fault_class_name(cls);
    }
    EXPECT_EQ(a.events_checked, b.events_checked)
        << fuzz::fault_class_name(cls);
    EXPECT_EQ(a.faults_injected, b.faults_injected)
        << fuzz::fault_class_name(cls);
  }
}

}  // namespace
}  // namespace cdc
