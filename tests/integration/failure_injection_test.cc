// Failure injection: corrupted, truncated, or mismatched record data must
// produce loud, early failures — never a silently diverged replay.
#include <gtest/gtest.h>

#include "apps/mcb.h"
#include "apps/taskfarm.h"
#include "minimpi/simulator.h"
#include "runtime/storage.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace cdc {
namespace {

minimpi::Simulator::Config sim_config(int ranks, std::uint64_t seed) {
  minimpi::Simulator::Config config;
  config.num_ranks = ranks;
  config.noise_seed = seed;
  return config;
}

apps::McbConfig small_mcb() {
  apps::McbConfig config;
  config.grid_x = 2;
  config.grid_y = 2;
  config.particles_per_rank = 30;
  config.segments_per_particle = 6;
  return config;
}

/// Records a small MCB run and returns the store.
std::unique_ptr<runtime::MemoryStore> record_small_mcb() {
  auto store = std::make_unique<runtime::MemoryStore>();
  tool::Recorder recorder(4, store.get());
  minimpi::Simulator sim(sim_config(4, 5), &recorder);
  apps::run_mcb(sim, small_mcb());
  recorder.finalize();
  return store;
}

/// A store wrapper that serves tampered bytes for every stream.
class TamperedStore final : public runtime::RecordStore {
 public:
  enum class Mode { kTruncate, kFlipHeader, kFlipBody };

  TamperedStore(const runtime::RecordStore* base, Mode mode)
      : base_(base), mode_(mode) {}

  void append(const runtime::StreamKey&,
              std::span<const std::uint8_t>) override {
    CDC_CHECK(false);
  }
  [[nodiscard]] std::vector<std::uint8_t> read(
      const runtime::StreamKey& key) const override {
    std::vector<std::uint8_t> bytes = base_->read(key);
    if (bytes.empty()) return bytes;
    switch (mode_) {
      case Mode::kTruncate:
        bytes.resize(bytes.size() - std::min<std::size_t>(3, bytes.size()));
        break;
      case Mode::kFlipHeader:
        bytes[0] ^= 0xff;
        break;
      case Mode::kFlipBody:
        bytes[bytes.size() / 2] ^= 0x20;
        break;
    }
    return bytes;
  }
  [[nodiscard]] std::vector<runtime::StreamKey> keys() const override {
    return base_->keys();
  }
  [[nodiscard]] std::uint64_t total_bytes() const override {
    return base_->total_bytes();
  }
  [[nodiscard]] std::uint64_t rank_bytes(minimpi::Rank rank) const override {
    return base_->rank_bytes(rank);
  }

 private:
  const runtime::RecordStore* base_;
  Mode mode_;
};

void replay_small_mcb(const runtime::RecordStore& store,
                      std::uint64_t seed = 6) {
  tool::Replayer replayer(4, &store, {});
  minimpi::Simulator sim(sim_config(4, seed), &replayer);
  apps::run_mcb(sim, small_mcb());
}

using FailureInjection = ::testing::Test;

TEST(FailureInjection, CleanRecordReplaysAsControl) {
  const auto store = record_small_mcb();
  replay_small_mcb(*store);  // must not abort
}

TEST(FailureInjection, TruncatedRecordAborts) {
  const auto store = record_small_mcb();
  TamperedStore tampered(store.get(), TamperedStore::Mode::kTruncate);
  EXPECT_DEATH(replay_small_mcb(tampered), "corrupt|mid-chunk|deadlock");
}

TEST(FailureInjection, CorruptFrameHeaderAborts) {
  const auto store = record_small_mcb();
  TamperedStore tampered(store.get(), TamperedStore::Mode::kFlipHeader);
  EXPECT_DEATH(replay_small_mcb(tampered), "corrupt");
}

TEST(FailureInjection, CorruptFrameBodyAbortsOrDiverges) {
  const auto store = record_small_mcb();
  TamperedStore tampered(store.get(), TamperedStore::Mode::kFlipBody);
  // Depending on which byte flips, the DEFLATE layer, the chunk parser, or
  // the replay-consistency checks fire — never a quiet success with
  // different semantics. (A flip in a late stream may leave earlier ranks
  // replayable; the CHECK message varies.)
  EXPECT_DEATH(replay_small_mcb(tampered),
               "corrupt|differs|divergence|deadlock|out-of-order|range");
}

TEST(FailureInjection, WrongApplicationDiverges) {
  // Replaying a different program against an MCB record must trip a
  // divergence check or deadlock loudly.
  const auto store = record_small_mcb();
  EXPECT_DEATH(
      {
        tool::Replayer replayer(4, store.get(), {});
        minimpi::Simulator sim(sim_config(4, 6), &replayer);
        apps::TaskFarmConfig farm;
        farm.tasks = 50;
        apps::run_taskfarm(sim, farm);
      },
      "divergence|differs|deadlock|mid-chunk|out-of-order");
}

TEST(FailureInjection, WrongWorkloadParametersDiverge) {
  const auto store = record_small_mcb();
  EXPECT_DEATH(
      {
        tool::Replayer replayer(4, store.get(), {});
        minimpi::Simulator sim(sim_config(4, 6), &replayer);
        apps::McbConfig bigger = small_mcb();
        bigger.particles_per_rank = 60;  // different traffic than recorded
        apps::run_mcb(sim, bigger);
      },
      "divergence|differs|deadlock|mid-chunk|out-of-order");
}

TEST(FailureInjection, EmptyStoreReplaysInPassthrough) {
  // No record at all: the replayer passes matching through unchanged, so
  // the run completes (this is also the exhausted-record behaviour).
  runtime::MemoryStore empty;
  tool::Replayer replayer(4, &empty, {});
  minimpi::Simulator sim(sim_config(4, 6), &replayer);
  const auto result = apps::run_mcb(sim, small_mcb());
  EXPECT_GT(result.total_tracks, 0u);
  EXPECT_TRUE(replayer.fully_replayed());
}

}  // namespace
}  // namespace cdc
