// Worker-count invariance of the parallel executor (DESIGN.md §15).
//
// The conservative time-window executor's product is determinism: for a
// fixed (workload, seed, fault plan), every worker count must produce the
// same run. This suite proves it end to end — 1/2/4/8-worker record runs
// of taskfarm, MCB and Jacobi must seal byte-identical containers, surface
// identical application-visible receive traces and bitwise-identical
// order-sensitive results, and agree on every simulator counter
// (scheduler_events stays exact under parallel: per-shard counters merged
// at run end). Fault plans (delay spikes, reorder bursts, duplicates,
// stalls) and a mid-run rank kill ride the same invariance check, and the
// 1-worker baseline container is replayed through the sequential engine
// under the replay-equivalence oracle, closing the loop:
// record(parallel) → store → replay(sequential) → oracle.
//
// (The sequential engine, workers = 0, is a different schedule by design —
// it is compared against itself elsewhere; this suite pins the parallel
// engine across worker counts.)
#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/jacobi.h"
#include "apps/mcb.h"
#include "apps/taskfarm.h"
#include "minimpi/fault.h"
#include "minimpi/simulator.h"
#include "store/container_store.h"
#include "support/oracle.h"
#include "tool/options.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace cdc {
namespace {

constexpr std::array<int, 4> kWorkerCounts = {1, 2, 4, 8};

std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Workload {
  std::string name;
  int ranks = 0;
  std::function<double(minimpi::Simulator&)> run;
};

Workload taskfarm_workload() {
  apps::TaskFarmConfig config;
  config.tasks = 120;
  return {"taskfarm", 8, [config](minimpi::Simulator& sim) {
            return apps::run_taskfarm(sim, config).accumulated;
          }};
}

Workload mcb_workload() {
  apps::McbConfig config;
  config.grid_x = 2;
  config.grid_y = 2;
  config.particles_per_rank = 24;
  config.segments_per_particle = 6;
  config.tracks_per_poll = 8;
  return {"mcb", 4, [config](minimpi::Simulator& sim) {
            return apps::run_mcb(sim, config).global_tally;
          }};
}

Workload jacobi_workload() {
  apps::JacobiConfig config;
  config.grid_x = 2;
  config.grid_y = 2;
  config.local_nx = 6;
  config.local_ny = 6;
  config.iterations = 40;
  return {"jacobi", 4, [config](minimpi::Simulator& sim) {
            return apps::run_jacobi(sim, config).residual;
          }};
}

/// The transport adversary for the "faults" mode: every fault class the
/// plan supports, layered, as in fuzz::FaultClass::kAll.
minimpi::FaultPlan all_faults(std::uint64_t seed) {
  minimpi::FaultPlan plan;
  plan.seed = seed;
  plan.delay_spike_probability = 0.05;
  plan.reorder_burst_probability = 0.02;
  plan.duplicate_probability = 0.05;
  plan.stall_probability = 0.01;
  return plan;
}

minimpi::Simulator::Config sim_config(const Workload& workload,
                                      std::uint64_t noise_seed,
                                      const minimpi::FaultPlan& faults,
                                      int workers) {
  minimpi::Simulator::Config config;
  config.num_ranks = workload.ranks;
  config.noise_seed = noise_seed;
  config.faults = faults;
  config.workers = workers;
  return config;
}

tool::ToolOptions tool_options(bool partial_record = false) {
  tool::ToolOptions options;
  options.chunk_target = 48;  // small: many flushes cross window barriers
  options.partial_record = partial_record;
  return options;
}

std::string fresh_container_path(const std::string& tag) {
  static int counter = 0;
  const std::string file = "cdc_par_det_" + tag + "_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(counter++) + ".cdc";
  return (std::filesystem::temp_directory_path() / file).string();
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Everything one record run produced that must be worker-count-invariant.
struct RunArtifacts {
  std::vector<std::uint8_t> container_bytes;
  support::Trace trace;
  double value = 0.0;
  minimpi::Simulator::Stats stats;
  minimpi::FaultStats fault_stats;
  std::uint64_t order_digest = 0;
  std::string container_path;  ///< kept on disk until remove()
};

void remove_container(RunArtifacts& art) {
  std::error_code ec;
  std::filesystem::remove(art.container_path, ec);
  art.container_path.clear();
}

RunArtifacts record_run(const Workload& workload, std::uint64_t seed,
                        const minimpi::FaultPlan& plan, int workers) {
  RunArtifacts art;
  art.container_path =
      fresh_container_path(workload.name + "_w" + std::to_string(workers));
  store::ContainerStore container(art.container_path);
  tool::Recorder recorder(workload.ranks, &container, tool_options());
  support::OrderProbe probe(&recorder);
  minimpi::Simulator sim(sim_config(workload, mix(seed), plan, workers),
                         &probe);
  art.value = workload.run(sim);
  recorder.finalize();
  container.seal();
  art.container_bytes = read_bytes(art.container_path);
  art.trace = probe.trace();
  art.stats = sim.stats();
  art.fault_stats = sim.fault_stats();
  art.order_digest = recorder.order_digest();
  return art;
}

void expect_stats_equal(const RunArtifacts& base, const RunArtifacts& other,
                        const std::string& what) {
  const auto& a = base.stats;
  const auto& b = other.stats;
  EXPECT_EQ(a.messages_sent, b.messages_sent) << what;
  EXPECT_EQ(a.receive_events_delivered, b.receive_events_delivered) << what;
  EXPECT_EQ(a.mf_calls, b.mf_calls) << what;
  EXPECT_EQ(a.unmatched_tests, b.unmatched_tests) << what;
  // The satellite claim: exact (not sampled, not racy) under parallel.
  EXPECT_EQ(a.scheduler_events, b.scheduler_events) << what;
  EXPECT_EQ(a.mf_failures, b.mf_failures) << what;
  EXPECT_EQ(a.mf_timeouts, b.mf_timeouts) << what;
  EXPECT_EQ(a.ranks_failed, b.ranks_failed) << what;
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth) << what;
  EXPECT_EQ(a.end_time, b.end_time) << what;
  const auto& fa = base.fault_stats;
  const auto& fb = other.fault_stats;
  EXPECT_EQ(fa.delay_spikes, fb.delay_spikes) << what;
  EXPECT_EQ(fa.burst_messages, fb.burst_messages) << what;
  EXPECT_EQ(fa.duplicates_injected, fb.duplicates_injected) << what;
  EXPECT_EQ(fa.stalls, fb.stalls) << what;
  EXPECT_EQ(fa.rank_kills, fb.rank_kills) << what;
}

/// Records the workload at every worker count and checks the N-worker runs
/// against the 1-worker baseline; returns the baseline with its sealed
/// container still on disk (for the replay leg).
RunArtifacts check_worker_invariance(const Workload& workload,
                                     std::uint64_t seed,
                                     const minimpi::FaultPlan& plan) {
  RunArtifacts baseline = record_run(workload, seed, plan, kWorkerCounts[0]);
  EXPECT_FALSE(baseline.container_bytes.empty());
  for (std::size_t i = 1; i < kWorkerCounts.size(); ++i) {
    const int workers = kWorkerCounts[i];
    const std::string what = workload.name + " seed=" + std::to_string(seed) +
                             " workers=" + std::to_string(workers) +
                             " vs baseline";
    RunArtifacts art = record_run(workload, seed, plan, workers);
    EXPECT_EQ(art.container_bytes, baseline.container_bytes)
        << what << ": sealed containers differ";
    EXPECT_EQ(art.order_digest, baseline.order_digest) << what;
    EXPECT_EQ(art.value, baseline.value) << what;  // bitwise: same order
    const support::OracleReport traces =
        support::check_equivalence(baseline.trace, art.trace);
    EXPECT_TRUE(traces.ok) << what << ": " << traces.summary();
    EXPECT_GT(traces.events_compared, 0u) << what;
    expect_stats_equal(baseline, art, what);
    remove_container(art);
  }
  return baseline;
}

/// The oracle leg: the (parallel-recorded) baseline container replayed on
/// the sequential engine must reproduce the recorded receive order and the
/// order-sensitive result bitwise.
void check_replays_sequentially(const Workload& workload, std::uint64_t seed,
                                RunArtifacts& baseline) {
  const auto store = store::ContainerStore::open(baseline.container_path);
  ASSERT_NE(store, nullptr);
  tool::Replayer replayer(workload.ranks, store.get(), tool_options());
  support::OrderProbe probe(&replayer);
  minimpi::Simulator sim(
      sim_config(workload, mix(seed ^ 0x5ca1ab1eull), {}, /*workers=*/0),
      &probe);
  const double replayed = workload.run(sim);
  const support::OracleReport oracle =
      support::check_equivalence(baseline.trace, probe.trace());
  EXPECT_TRUE(oracle.ok) << workload.name << ": " << oracle.summary();
  EXPECT_EQ(replayed, baseline.value) << workload.name;
  EXPECT_TRUE(replayer.fully_replayed()) << workload.name;
  remove_container(baseline);
}

void run_suite(const Workload& workload, std::uint64_t seed,
               const minimpi::FaultPlan& plan) {
  RunArtifacts baseline = check_worker_invariance(workload, seed, plan);
  check_replays_sequentially(workload, seed, baseline);
}

TEST(ParallelDeterminism, TaskfarmByteIdenticalAcrossWorkerCounts) {
  run_suite(taskfarm_workload(), 1, {});
  run_suite(taskfarm_workload(), 42, all_faults(mix(42)));
}

TEST(ParallelDeterminism, McbByteIdenticalAcrossWorkerCounts) {
  run_suite(mcb_workload(), 1, {});
  run_suite(mcb_workload(), 42, all_faults(mix(42)));
}

TEST(ParallelDeterminism, JacobiByteIdenticalAcrossWorkerCounts) {
  run_suite(jacobi_workload(), 1, {});
  run_suite(jacobi_workload(), 42, all_faults(mix(42)));
}

TEST(ParallelDeterminism, TaskfarmRankKillMidRun) {
  const Workload workload = taskfarm_workload();
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{42}}) {
    // Aim the kill mid-run: probe the span on the same (1-worker parallel)
    // engine every worker count shares.
    double probe_end = 0.0;
    {
      minimpi::Simulator probe(
          sim_config(workload, mix(seed), {}, /*workers=*/1));
      workload.run(probe);
      probe_end = probe.stats().end_time;
    }
    minimpi::FaultPlan plan = all_faults(mix(seed + 7));
    minimpi::RankKill kill;
    kill.rank = 1 + static_cast<minimpi::Rank>(
                        mix(seed) %
                        static_cast<std::uint64_t>(workload.ranks - 1));
    kill.time = probe_end * 0.4;
    plan.kills.push_back(kill);

    RunArtifacts baseline = check_worker_invariance(workload, seed, plan);
    EXPECT_EQ(baseline.fault_stats.rank_kills, 1u) << "seed=" << seed;

    // Degraded replay of the killed run: a fault-free sequential run gated
    // by the truncated record; the oracle checks the gated prefix.
    const auto store = store::ContainerStore::open(baseline.container_path);
    ASSERT_NE(store, nullptr);
    tool::Replayer replayer(workload.ranks, store.get(),
                            tool_options(/*partial_record=*/true));
    support::OrderProbe probe(&replayer);
    minimpi::Simulator sim(
        sim_config(workload, mix(seed ^ 0x5ca1ab1eull), {}, /*workers=*/0),
        &probe);
    workload.run(sim);
    std::map<runtime::StreamKey, std::uint64_t> prefixes;
    for (const auto& [key, stats] : replayer.stream_totals())
      prefixes[key] = stats.replayed_events + stats.replayed_unmatched;
    const support::OracleReport oracle =
        support::check_prefix(baseline.trace, probe.trace(), prefixes);
    EXPECT_TRUE(oracle.ok) << "seed=" << seed << ": " << oracle.summary();
    EXPECT_TRUE(oracle.events_compared > 0 || replayer.released())
        << "seed=" << seed << ": killed record gated nothing";
    remove_container(baseline);
  }
}

}  // namespace
}  // namespace cdc
