// End-to-end record-and-replay: the headline property of the paper.
//
// A non-deterministic MCB run is recorded under one network-noise seed and
// replayed under different seeds; replay must reproduce the recorded
// receive-event order exactly — making the order-sensitive floating-point
// tally bitwise identical — even though the replay run's own message
// timing differs.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/jacobi.h"
#include "apps/mcb.h"
#include "apps/taskfarm.h"
#include "minimpi/simulator.h"
#include "runtime/storage.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace cdc {
namespace {

minimpi::Simulator::Config sim_config(int ranks, std::uint64_t noise_seed) {
  minimpi::Simulator::Config config;
  config.num_ranks = ranks;
  config.noise_seed = noise_seed;
  return config;
}

apps::McbConfig small_mcb(int gx, int gy) {
  apps::McbConfig config;
  config.grid_x = gx;
  config.grid_y = gy;
  config.particles_per_rank = 40;
  config.segments_per_particle = 8;
  config.tracks_per_poll = 16;
  return config;
}

apps::McbResult run_mcb_with(int gx, int gy, std::uint64_t noise_seed,
                             minimpi::ToolHooks* hooks) {
  minimpi::Simulator sim(sim_config(gx * gy, noise_seed), hooks);
  return apps::run_mcb(sim, small_mcb(gx, gy));
}

TEST(NonDeterminism, DifferentNoiseSeedsChangeTheReceiveOrder) {
  // §2.1: network noise permutes the application-level receive order.
  // (The tally differs only in the last bits and may occasionally collide,
  // so the order digest is the robust witness.)
  runtime::MemoryStore store_a;
  runtime::MemoryStore store_b;
  tool::Recorder rec_a(9, &store_a);
  tool::Recorder rec_b(9, &store_b);
  const auto a = run_mcb_with(3, 3, /*noise_seed=*/1, &rec_a);
  const auto b = run_mcb_with(3, 3, /*noise_seed=*/2, &rec_b);
  EXPECT_EQ(a.total_tracks, b.total_tracks);  // same physics
  EXPECT_NE(rec_a.order_digest(), rec_b.order_digest());
  EXPECT_NEAR(a.global_tally, b.global_tally,
              1e-6 * std::abs(a.global_tally));  // differs in low bits only
}

TEST(NonDeterminism, TallyDiffersForSomeSeedPair) {
  // Double-precision addition is not associative: among a handful of
  // seeds, at least one pair must give a different tally.
  const double reference = run_mcb_with(3, 3, 1, nullptr).global_tally;
  bool any_different = false;
  for (std::uint64_t seed = 2; seed <= 6 && !any_different; ++seed)
    any_different = run_mcb_with(3, 3, seed, nullptr).global_tally !=
                    reference;
  EXPECT_TRUE(any_different);
}

TEST(NonDeterminism, SameSeedIsReproducible) {
  const auto a = run_mcb_with(3, 3, 7, nullptr);
  const auto b = run_mcb_with(3, 3, 7, nullptr);
  EXPECT_EQ(a.global_tally, b.global_tally);
  EXPECT_EQ(a.messages, b.messages);
}

class McbRecordReplay : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McbRecordReplay, ReplayReproducesTheRecordedRunBitwise) {
  const std::uint64_t record_seed = 11;
  const std::uint64_t replay_seed = GetParam();

  runtime::MemoryStore store;
  tool::ToolOptions options;
  options.chunk_target = 64;  // force multiple chunks through epoch logic

  tool::Recorder recorder(9, &store, options);
  const auto recorded = run_mcb_with(3, 3, record_seed, &recorder);
  recorder.finalize();
  ASSERT_GT(store.total_bytes(), 0u);

  tool::Replayer replayer(9, &store, options);
  const auto replayed = run_mcb_with(3, 3, replay_seed, &replayer);

  // Bitwise-identical tally: the recorded receive order was reproduced.
  EXPECT_EQ(recorded.global_tally, replayed.global_tally);
  EXPECT_EQ(recorded.total_tracks, replayed.total_tracks);
  EXPECT_TRUE(replayer.fully_replayed());
  EXPECT_EQ(replayer.totals().replayed_events,
            recorder.totals().matched_events);
  EXPECT_EQ(replayer.totals().replayed_unmatched,
            recorder.totals().unmatched_events);
}

INSTANTIATE_TEST_SUITE_P(ReplaySeeds, McbRecordReplay,
                         ::testing::Values(11,  // same seed as record
                                           12, 13, 99, 1234));

TEST(McbRecordReplay, ReplayDiffersWithoutTheTool) {
  // Control experiment: without replay, different seeds give different
  // receive orders (witnessed by the order digest; the tally may
  // occasionally collide after rounding) — the equalities above are due
  // to CDC, not coincidence.
  runtime::MemoryStore store_a;
  runtime::MemoryStore store_b;
  tool::Recorder rec_a(9, &store_a);
  tool::Recorder rec_b(9, &store_b);
  run_mcb_with(3, 3, 11, &rec_a);
  run_mcb_with(3, 3, 12, &rec_b);
  EXPECT_NE(rec_a.order_digest(), rec_b.order_digest());
}

TEST(McbRecordReplay, LargerGridAndSmallChunks) {
  runtime::MemoryStore store;
  tool::ToolOptions options;
  options.chunk_target = 16;  // stress chunk-boundary replay

  tool::Recorder recorder(16, &store, options);
  minimpi::Simulator rec_sim(sim_config(16, 3), &recorder);
  const auto recorded = apps::run_mcb(rec_sim, small_mcb(4, 4));
  recorder.finalize();

  tool::Replayer replayer(16, &store, options);
  minimpi::Simulator rep_sim(sim_config(16, 77), &replayer);
  const auto replayed = apps::run_mcb(rep_sim, small_mcb(4, 4));

  EXPECT_EQ(recorded.global_tally, replayed.global_tally);
  EXPECT_TRUE(replayer.fully_replayed());
}

TEST(McbRecordReplay, MergedCallsitesRecordButCannotReplay) {
  // The "CDC (RE+PE+LPE)" variant — MF identification (§4.4) off — is a
  // compression ablation: recording works (and Figure 13 measures it), but
  // replay identification requires per-callsite streams, so the replayer
  // refuses the option up front rather than diverging silently.
  runtime::MemoryStore store;
  tool::ToolOptions options;
  options.identify_callsites = false;
  options.chunk_target = 64;

  tool::Recorder recorder(9, &store, options);
  run_mcb_with(3, 3, 5, &recorder);
  recorder.finalize();
  EXPECT_GT(store.total_bytes(), 0u);

  EXPECT_DEATH(tool::Replayer(9, &store, options),
               "replay requires MF identification");
}

TEST(McbRecordReplay, OrderDigestMatchesBetweenRecordAndReplay) {
  runtime::MemoryStore store;
  tool::ToolOptions options;
  options.chunk_target = 48;

  tool::Recorder recorder(9, &store, options);
  run_mcb_with(3, 3, 41, &recorder);
  recorder.finalize();

  tool::Replayer replayer(9, &store, options);
  run_mcb_with(3, 3, 42, &replayer);
  EXPECT_EQ(recorder.order_digest(), replayer.order_digest());
}

TEST(JacobiRecordReplay, HiddenDeterminismReplays) {
  apps::JacobiConfig config;
  config.grid_x = 3;
  config.grid_y = 3;
  config.local_nx = 8;
  config.local_ny = 8;
  config.iterations = 50;

  runtime::MemoryStore store;
  tool::ToolOptions options;
  options.chunk_target = 32;

  tool::Recorder recorder(9, &store, options);
  minimpi::Simulator rec_sim(sim_config(9, 21), &recorder);
  const auto recorded = apps::run_jacobi(rec_sim, config);
  recorder.finalize();

  tool::Replayer replayer(9, &store, options);
  minimpi::Simulator rep_sim(sim_config(9, 22), &replayer);
  const auto replayed = apps::run_jacobi(rep_sim, config);

  EXPECT_EQ(recorded.residual, replayed.residual);
  EXPECT_TRUE(replayer.fully_replayed());
}

TEST(TaskFarmRecordReplay, WaitanyStreamsReplayBitwise) {
  // The task farm exercises Waitany at the master (first-come-first-served
  // result folding) and Wait at the workers — MF kinds MCB does not use.
  apps::TaskFarmConfig config;
  config.tasks = 300;

  runtime::MemoryStore store;
  tool::ToolOptions options;
  options.chunk_target = 32;

  tool::Recorder recorder(8, &store, options);
  minimpi::Simulator rec_sim(sim_config(8, 61), &recorder);
  const auto recorded = apps::run_taskfarm(rec_sim, config);
  recorder.finalize();
  EXPECT_EQ(recorded.completed, 300u);

  tool::Replayer replayer(8, &store, options);
  minimpi::Simulator rep_sim(sim_config(8, 62), &replayer);
  const auto replayed = apps::run_taskfarm(rep_sim, config);

  EXPECT_EQ(recorded.accumulated, replayed.accumulated);
  EXPECT_TRUE(replayer.fully_replayed());
  EXPECT_EQ(recorder.order_digest(), replayer.order_digest());
}

TEST(TaskFarmRecordReplay, CompletionOrderIsNoiseDependent) {
  apps::TaskFarmConfig config;
  config.tasks = 300;
  runtime::MemoryStore store_a;
  runtime::MemoryStore store_b;
  tool::Recorder rec_a(8, &store_a);
  tool::Recorder rec_b(8, &store_b);
  minimpi::Simulator sim_a(sim_config(8, 1), &rec_a);
  minimpi::Simulator sim_b(sim_config(8, 2), &rec_b);
  const auto a = apps::run_taskfarm(sim_a, config);
  const auto b = apps::run_taskfarm(sim_b, config);
  EXPECT_EQ(a.completed, b.completed);  // same work either way
  EXPECT_NE(rec_a.order_digest(), rec_b.order_digest());
}

TEST(ChunkInvariance, ChunkSizeDoesNotAffectReplaySemantics) {
  // The same run recorded with tiny chunks and with effectively one chunk
  // per stream must replay to identical receive-event streams (§3.5:
  // epoch enforcement makes chunking semantically invisible).
  std::uint64_t digests[2] = {0, 0};
  std::size_t chunk_counts[2] = {0, 0};
  const std::size_t targets[2] = {16, 1u << 20};
  for (int variant = 0; variant < 2; ++variant) {
    runtime::MemoryStore store;
    tool::ToolOptions options;
    options.chunk_target = targets[variant];
    tool::Recorder recorder(9, &store, options);
    run_mcb_with(3, 3, 33, &recorder);
    recorder.finalize();
    chunk_counts[variant] = recorder.totals().chunks;

    tool::Replayer replayer(9, &store, options);
    run_mcb_with(3, 3, 34, &replayer);
    EXPECT_TRUE(replayer.fully_replayed());
    digests[variant] = replayer.order_digest();
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_GT(chunk_counts[0], chunk_counts[1]);  // chunking really differed
}

TEST(JacobiDeterminism, ResidualIsNoiseIndependentEvenWithoutReplay) {
  // Hidden determinism: the Jacobi receive order is deterministic, so the
  // residual matches across seeds even untooled.
  apps::JacobiConfig config;
  config.grid_x = 2;
  config.grid_y = 2;
  config.local_nx = 8;
  config.local_ny = 8;
  config.iterations = 30;

  minimpi::Simulator sim_a(sim_config(4, 31), nullptr);
  minimpi::Simulator sim_b(sim_config(4, 32), nullptr);
  EXPECT_EQ(apps::run_jacobi(sim_a, config).residual,
            apps::run_jacobi(sim_b, config).residual);
}

}  // namespace
}  // namespace cdc
