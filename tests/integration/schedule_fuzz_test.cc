// Schedule-fuzzing end-to-end: N seeded delivery-order permutations per
// fault class through record→encode→store→decode→replay, checked by the
// replay-equivalence oracle; plus the crash-at-every-frame-boundary sweep.
//
// Suite names carry the `fuzz_` prefix on purpose: the nightly CI job runs
// exactly `ctest -R fuzz` (case-sensitive) across a seed matrix.
//
// Reproducing a CI failure locally: every failure line prints
// `workload=... class=... seed=...`; re-run with
//   CDC_FUZZ_BASE_SEED=<seed> CDC_FUZZ_SEEDS=1 ctest -R fuzz
// or call ScheduleFuzzer::run_case(class, seed) directly — cases are
// deterministic in (workload, class, seed).
#include <gtest/gtest.h>

#include <cstdlib>

#include "minimpi/schedule_fuzzer.h"
#include "support/oracle.h"

namespace cdc {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

fuzz::FuzzOptions options_from_env(std::uint32_t default_seeds) {
  fuzz::FuzzOptions options;
  options.base_seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  options.num_seeds = static_cast<std::uint32_t>(
      env_u64("CDC_FUZZ_SEEDS", default_seeds));
  return options;
}

TEST(fuzz_schedule, TaskfarmEverySeedEveryFaultClass) {
  // The acceptance bar: >= 64 seeds x all fault classes, oracle-clean.
  const fuzz::FuzzOptions options = options_from_env(64);
  fuzz::ScheduleFuzzer fuzzer(fuzz::taskfarm_workload(), options);
  const fuzz::FuzzReport report = fuzzer.run();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.cases_run,
            static_cast<std::uint64_t>(options.num_seeds) *
                fuzz::kAllFaultClasses.size());
  EXPECT_EQ(report.cases_passed, report.cases_run);
  EXPECT_GT(report.events_checked, 0u);
  EXPECT_GT(report.faults_injected, 0u);
}

TEST(fuzz_schedule, McbPollingIdiomUnderEveryFaultClass) {
  // Testsome polling (unmatched-test runs) under the same adversary;
  // fewer seeds — MCB cases are an order of magnitude heavier.
  const fuzz::FuzzOptions options = options_from_env(6);
  fuzz::ScheduleFuzzer fuzzer(fuzz::mcb_workload(), options);
  const fuzz::FuzzReport report = fuzzer.run();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.cases_passed, report.cases_run);
  EXPECT_GT(report.events_checked, 0u);
}

TEST(fuzz_schedule, SameCaseKeyIsBitReproducible) {
  // The reproduction contract behind every failure report: rerunning a
  // (workload, class, seed) triple injects identical faults and reaches an
  // identical verdict with identical statistics.
  const std::uint64_t seed = env_u64("CDC_FUZZ_BASE_SEED", 1) + 17;
  fuzz::FuzzReport a, b;
  for (fuzz::FuzzReport* report : {&a, &b}) {
    fuzz::ScheduleFuzzer fuzzer(fuzz::taskfarm_workload());
    EXPECT_EQ(fuzzer.run_case(fuzz::FaultClass::kAll, seed, report),
              std::nullopt);
  }
  EXPECT_EQ(a.events_checked, b.events_checked);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

TEST(fuzz_crash_sweep, EveryFrameBoundaryReplaysAVerifiedPrefix) {
  const std::uint64_t seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  const fuzz::CrashSweepReport report =
      fuzz::crash_boundary_sweep(fuzz::taskfarm_workload(), seed);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.frames_recorded, 4u);  // the sweep actually swept
  EXPECT_EQ(report.boundaries_tested, report.frames_recorded + 1);
  EXPECT_EQ(report.prefixes_verified, report.boundaries_tested);
  EXPECT_GT(report.events_checked, 0u);
}

TEST(fuzz_oracle, CatchesARealDivergence) {
  // Negative control for the whole harness: two *independent* runs under
  // different noise seeds are NOT replay-equivalent, and the oracle must
  // say so. (If this fails, every green fuzz case above is meaningless.)
  const fuzz::FuzzWorkload workload = fuzz::taskfarm_workload();
  support::Trace traces[2];
  for (int i = 0; i < 2; ++i) {
    support::OrderProbe probe;
    minimpi::Simulator::Config config;
    config.num_ranks = workload.num_ranks;
    config.noise_seed = 100 + static_cast<std::uint64_t>(i);
    minimpi::Simulator sim(config, &probe);
    workload.run(sim);
    traces[i] = probe.trace();
  }
  const support::OracleReport report =
      support::check_equivalence(traces[0], traces[1]);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.mismatches.empty());
}

}  // namespace
}  // namespace cdc
