// End-to-end integration of the record service over loopback:
//  * upload through the real Client/NetFrameSink stack and byte-compare
//    the server's sealed container against the local-oracle container;
//  * remote REPLAY_WINDOW versus a local ContainerReader window read,
//    slice for slice;
//  * INSPECT endpoints return well-formed JSON;
//  * the seeded load generator with the full fault plan, oracle-verifying
//    every surviving record against a rebuild from the seed.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "net/client.h"
#include "net/load_gen.h"
#include "net/server.h"
#include "obs/json.h"
#include "store/container_reader.h"

namespace cdc::net {
namespace {

constexpr const char* kToken = "integ-token";
constexpr const char* kTenant = "integ";

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

class ServiceLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cdc_service_test." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    ServerConfig config;
    config.root_dir = (dir_ / "root").string();
    TenantConfig tenant;
    tenant.name = kTenant;
    tenant.token = kToken;
    config.tenants.push_back(tenant);
    config.sink_mode = SinkMode::kService;
    server_ = std::make_unique<Server>(std::move(config));
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }
  void TearDown() override {
    server_.reset();
    std::filesystem::remove_all(dir_);
  }

  [[nodiscard]] std::string record_path(const std::string& record) const {
    return (dir_ / "root" / kTenant / (record + ".cdcc")).string();
  }

  /// Uploads `jobs` through the real FrameSink seam and seals the record.
  void upload_via_sink(const std::string& record,
                       const std::vector<SynthJob>& jobs) {
    Client::Options options;
    options.port = server_->port();
    options.token = kToken;
    options.record = record;
    options.level = compress::DeflateLevel::kFast;
    std::string error;
    auto client = Client::connect(options, &error);
    ASSERT_NE(client, nullptr) << error;
    NetFrameSink sink(client.get(), /*max_batch_frames=*/16);
    for (const SynthJob& sj : jobs) sink.submit(sj.key, sj.job);
    ASSERT_TRUE(sink.flush()) << client->last_error();
    ASSERT_TRUE(sink.ok());
    ASSERT_TRUE(client->seal()) << client->last_error();
    client->bye();
  }

  std::filesystem::path dir_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServiceLoopbackTest, FrameSinkUploadMatchesLocalOracle) {
  SynthShape shape;
  shape.batches = 6;
  shape.frames_per_batch = 8;
  shape.streams = 3;
  const auto jobs = synth_jobs(101, shape, compress::DeflateLevel::kFast);
  upload_via_sink("oracle", jobs);

  const std::string local = (dir_ / "local-oracle.cdcc").string();
  std::string error;
  ASSERT_TRUE(write_synth_container(local, jobs, &error)) << error;
  const auto served = file_bytes(record_path("oracle"));
  ASSERT_FALSE(served.empty());
  EXPECT_EQ(served, file_bytes(local));
}

TEST_F(ServiceLoopbackTest, RemoteWindowMatchesLocalReaderSliceForSlice) {
  SynthShape shape;
  shape.batches = 8;
  shape.frames_per_batch = 8;
  shape.streams = 4;
  shape.epochs = true;
  const auto jobs = synth_jobs(202, shape, compress::DeflateLevel::kFast);
  upload_via_sink("windowed", jobs);

  const auto reader = store::ContainerReader::open(record_path("windowed"));
  ASSERT_NE(reader, nullptr);
  ASSERT_TRUE(reader->index_ok());
  ASSERT_TRUE(reader->epoch_index_ok()) << reader->epoch_index_error();

  Client::Options options;
  options.port = server_->port();
  options.token = kToken;
  options.record = "windowed";
  options.intent = Intent::kReplay;
  std::string error;
  auto client = Client::connect(options, &error);
  ASSERT_NE(client, nullptr) << error;

  // Several windows, including empty and past-the-end ranges: the remote
  // answer must match the local reader byte-for-byte, stream by stream.
  const std::pair<std::uint64_t, std::uint64_t> windows[] = {
      {0, 1}, {1, 3}, {2, 100}, {0, 1000}, {50, 60}};
  for (const auto& [lo, hi] : windows) {
    std::vector<WindowStream> streams;
    WindowDone done;
    ASSERT_TRUE(client->replay_window(lo, hi, &streams, &done))
        << client->last_error();
    EXPECT_EQ(done.streams, streams.size());
    ASSERT_FALSE(streams.empty());
    for (const WindowStream& ws : streams) {
      const auto local = reader->read_stream_window(ws.key, lo, hi);
      EXPECT_EQ(ws.bytes, local.bytes)
          << "window [" << lo << ", " << hi << ") rank " << ws.key.rank;
      EXPECT_EQ(ws.first_epoch, local.first_epoch);
      EXPECT_EQ(ws.seeked, local.seeked);
    }
    EXPECT_EQ(done.all_seeked,
              std::all_of(streams.begin(), streams.end(),
                          [](const WindowStream& ws) { return ws.seeked; }));
  }
  client->bye();
}

TEST_F(ServiceLoopbackTest, InspectEndpointsReturnWellFormedJson) {
  SynthShape shape;
  shape.batches = 3;
  const auto jobs = synth_jobs(303, shape, compress::DeflateLevel::kFast);
  upload_via_sink("inspected", jobs);

  Client::Options options;
  options.port = server_->port();
  options.token = kToken;
  options.record = "inspected";
  options.intent = Intent::kReplay;
  std::string error;
  auto client = Client::connect(options, &error);
  ASSERT_NE(client, nullptr) << error;
  for (const InspectKind kind :
       {InspectKind::kVerify, InspectKind::kPipeline, InspectKind::kGaps}) {
    std::string json;
    ASSERT_TRUE(client->inspect(kind, &json)) << client->last_error();
    EXPECT_TRUE(obs::json_well_formed(json))
        << "kind " << static_cast<int>(kind) << ": " << json;
  }
  // The verify report must assert the container is intact.
  std::string verify_json;
  ASSERT_TRUE(client->inspect(InspectKind::kVerify, &verify_json));
  EXPECT_NE(verify_json.find("\"ok\": true"), std::string::npos)
      << verify_json;
  client->bye();
}

TEST_F(ServiceLoopbackTest, SeededLoadWithFaultPlanIsOracleClean) {
  LoadConfig config;
  config.port = server_->port();
  config.token = kToken;
  config.clients = 12;
  config.seed = 424242;
  config.level = compress::DeflateLevel::kFast;
  config.shape.batches = 4;
  config.shape.frames_per_batch = 8;
  config.shape.payload_bytes = 1024;
  config.faults.slow_pct = 10;
  config.faults.disconnect_pct = 10;
  config.faults.duplicate_pct = 10;
  config.faults.garbage_pct = 10;
  config.faults.oversized_pct = 10;
  config.server_root = (dir_ / "root").string();
  config.tenant = kTenant;
  config.scratch_dir = (dir_ / "scratch").string();

  const LoadReport report = run_load(config);
  for (const std::string& e : report.errors) ADD_FAILURE() << e;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.clients, 12u);
  EXPECT_EQ(report.unexpected_failures, 0u);
  EXPECT_GT(report.sealed, 0u);
  EXPECT_GT(report.expected_failures, 0u);  // the fault plan actually ran
  EXPECT_EQ(report.verified, report.sealed);
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_GT(report.frames_acked, 0u);
  EXPECT_GT(report.latency_samples, 0u);

  // The server survived the abuse and its books balance.
  const Server::Stats stats = server_->stats();
  EXPECT_GE(stats.sessions_sealed, report.sealed);
  EXPECT_GT(stats.errors_sent, 0u);
}

}  // namespace
}  // namespace cdc::net
