// Windowed-replay fuzzing: every case records under a seed-cycled
// transport fault class into an epoch-indexed container, full-replays it,
// then replays a seed-derived epoch window [lo, hi) and checks each
// stream's verified window slice event-for-event against the same interval
// of the full-replay trace (ScheduleFuzzer's kWindow class). The seek must
// be served by the epoch index — a sequential-read fallback fails a case.
//
// Own binary with `fuzz_window` suites so the nightly matrix job
// (`ctest -R fuzz`) picks the class up alongside the schedule fuzzer, and
// a failing seed reproduces in isolation via `ctest -R fuzz_window` with
//   CDC_FUZZ_BASE_SEED=<seed> CDC_FUZZ_SEEDS=1
#include <gtest/gtest.h>

#include <cstdlib>

#include "minimpi/schedule_fuzzer.h"

namespace cdc {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

fuzz::FuzzOptions window_options(std::uint32_t default_seeds) {
  fuzz::FuzzOptions options;
  options.base_seed = env_u64("CDC_FUZZ_BASE_SEED", 1);
  options.num_seeds = static_cast<std::uint32_t>(
      env_u64("CDC_FUZZ_SEEDS", default_seeds));
  options.classes = {fuzz::kWindowFaultClasses.begin(),
                     fuzz::kWindowFaultClasses.end()};
  return options;
}

TEST(fuzz_window, TaskfarmWindowSlicesMatchFullReplay) {
  // 16 seeds cycle the transport adversary through every class at least
  // twice (the class is seed % 6 inside run_window_case).
  const fuzz::FuzzOptions options = window_options(16);
  fuzz::ScheduleFuzzer fuzzer(fuzz::taskfarm_workload(), options);
  const fuzz::FuzzReport report = fuzzer.run();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.cases_run, options.num_seeds);
  EXPECT_EQ(report.cases_passed, report.cases_run);
  EXPECT_GT(report.events_checked, 0u);
}

TEST(fuzz_window, McbPollingIdiomWindowSlicesMatchFullReplay) {
  // Unmatched-test runs count as window events too; fewer seeds — MCB
  // cases are an order of magnitude heavier.
  const fuzz::FuzzOptions options = window_options(6);
  fuzz::ScheduleFuzzer fuzzer(fuzz::mcb_workload(), options);
  const fuzz::FuzzReport report = fuzzer.run();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.cases_passed, report.cases_run);
  EXPECT_GT(report.events_checked, 0u);
}

TEST(fuzz_window, WindowCaseIsBitReproducible) {
  // The reproduction contract: the same (workload, window, seed) triple
  // reaches an identical verdict with identical statistics.
  const std::uint64_t seed = env_u64("CDC_FUZZ_BASE_SEED", 1) + 5;
  fuzz::FuzzReport a;
  fuzz::FuzzReport b;
  for (fuzz::FuzzReport* report : {&a, &b}) {
    fuzz::ScheduleFuzzer fuzzer(fuzz::taskfarm_workload());
    EXPECT_EQ(fuzzer.run_case(fuzz::FaultClass::kWindow, seed, report),
              std::nullopt);
  }
  EXPECT_EQ(a.events_checked, b.events_checked);
  EXPECT_GT(a.events_checked, 0u);
}

}  // namespace
}  // namespace cdc
