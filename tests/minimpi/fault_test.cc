// Fault-injection mechanics: determinism, statistics, and the transport
// invariants (duplicates never reach MPI matching; disabled plans leave a
// run bit-identical).
#include <gtest/gtest.h>

#include "apps/taskfarm.h"
#include "minimpi/fault.h"
#include "minimpi/simulator.h"
#include "runtime/storage.h"
#include "support/oracle.h"
#include "tool/recorder.h"

namespace cdc {
namespace {

minimpi::Simulator::Config config_with(const minimpi::FaultPlan& plan,
                                       std::uint64_t noise_seed = 5) {
  minimpi::Simulator::Config config;
  config.num_ranks = 6;
  config.noise_seed = noise_seed;
  config.faults = plan;
  return config;
}

apps::TaskFarmConfig farm() {
  apps::TaskFarmConfig config;
  config.tasks = 120;
  return config;
}

/// Runs the task farm and returns the recorder's order digest — the
/// witness for "same application-level receive order".
std::uint64_t digest_of(const minimpi::Simulator::Config& config,
                        apps::TaskFarmResult* result = nullptr,
                        minimpi::FaultStats* faults = nullptr) {
  runtime::MemoryStore store;
  tool::Recorder recorder(config.num_ranks, &store);
  minimpi::Simulator sim(config, &recorder);
  const auto r = apps::run_taskfarm(sim, farm());
  if (result != nullptr) *result = r;
  if (faults != nullptr) *faults = sim.fault_stats();
  return recorder.order_digest();
}

TEST(FaultPlan, DisabledPlanDrawsNothing) {
  // A default FaultPlan (all probabilities zero) must leave the run
  // bit-identical to the same config without faults: the fault RNG is a
  // separate stream and a disabled plan never consults it.
  minimpi::FaultPlan disabled;
  disabled.seed = 0xdecafbad;  // a seed alone must change nothing
  EXPECT_FALSE(disabled.enabled());
  apps::TaskFarmResult plain, seeded;
  EXPECT_EQ(digest_of(config_with({}), &plain),
            digest_of(config_with(disabled), &seeded));
  EXPECT_EQ(plain.accumulated, seeded.accumulated);
}

TEST(FaultPlan, SameSeedInjectsIdenticalFaults) {
  minimpi::FaultPlan plan;
  plan.seed = 7;
  plan.delay_spike_probability = 0.05;
  plan.reorder_burst_probability = 0.02;
  plan.duplicate_probability = 0.05;
  plan.stall_probability = 0.01;
  minimpi::FaultStats a, b;
  apps::TaskFarmResult ra, rb;
  EXPECT_EQ(digest_of(config_with(plan), &ra, &a),
            digest_of(config_with(plan), &rb, &b));
  EXPECT_EQ(ra.accumulated, rb.accumulated);
  EXPECT_EQ(a.delay_spikes, b.delay_spikes);
  EXPECT_EQ(a.burst_messages, b.burst_messages);
  EXPECT_EQ(a.duplicates_injected, b.duplicates_injected);
  EXPECT_EQ(a.stalls, b.stalls);
  EXPECT_EQ(a.stall_seconds, b.stall_seconds);
}

TEST(FaultPlan, DifferentFaultSeedsPermuteTheReceiveOrder) {
  minimpi::FaultPlan plan;
  plan.reorder_burst_probability = 0.1;
  plan.seed = 1;
  const std::uint64_t a = digest_of(config_with(plan));
  plan.seed = 2;
  const std::uint64_t b = digest_of(config_with(plan));
  EXPECT_NE(a, b);  // same noise seed: the difference is the faults alone
}

TEST(FaultPlan, EveryClassFiresAndIsCounted) {
  minimpi::FaultPlan plan;
  plan.seed = 3;
  plan.delay_spike_probability = 0.05;
  plan.reorder_burst_probability = 0.02;
  plan.duplicate_probability = 0.05;
  plan.stall_probability = 0.01;
  minimpi::FaultStats stats;
  digest_of(config_with(plan), nullptr, &stats);
  EXPECT_GT(stats.delay_spikes, 0u);
  EXPECT_GT(stats.reorder_bursts, 0u);
  EXPECT_GE(stats.burst_messages, stats.reorder_bursts);
  EXPECT_GT(stats.duplicates_injected, 0u);
  EXPECT_GT(stats.stalls, 0u);
  EXPECT_GT(stats.stall_seconds, 0.0);
}

TEST(FaultPlan, DuplicatesNeverReachTheApplication) {
  // Transport dedup must drop every injected copy (also asserted inside
  // Simulator::run()), and the application-visible message count must be
  // exactly that of the duplicate-free run under the same noise seed:
  // duplicates perturb timing only.
  minimpi::FaultPlan plan;
  plan.seed = 11;
  plan.duplicate_probability = 0.3;
  minimpi::FaultStats stats;
  apps::TaskFarmResult with_dups, without;
  digest_of(config_with(plan), &with_dups, &stats);
  digest_of(config_with({}), &without);
  EXPECT_GT(stats.duplicates_injected, 0u);
  EXPECT_EQ(stats.duplicates_injected, stats.duplicates_dropped);
  EXPECT_EQ(with_dups.completed, without.completed);
}

TEST(FaultPlan, StallsAdvanceVirtualTime) {
  minimpi::FaultPlan plan;
  plan.seed = 4;
  plan.stall_probability = 0.05;
  apps::TaskFarmResult stalled, smooth;
  minimpi::FaultStats stats;
  digest_of(config_with(plan), &stalled, &stats);
  digest_of(config_with({}), &smooth);
  EXPECT_GT(stats.stall_seconds, 0.0);
  EXPECT_GT(stalled.elapsed, smooth.elapsed);
}

TEST(FaultPlan, ObserverHookSeesEveryMessageFault) {
  // The on_fault hook is observational: counts reported to a probe agree
  // with the simulator's own statistics.
  minimpi::FaultPlan plan;
  plan.seed = 9;
  plan.delay_spike_probability = 0.05;
  plan.duplicate_probability = 0.05;
  plan.stall_probability = 0.01;
  support::OrderProbe probe;  // no inner tool: untooled semantics
  minimpi::Simulator sim(config_with(plan), &probe);
  apps::run_taskfarm(sim, farm());
  const minimpi::FaultStats& stats = sim.fault_stats();
  EXPECT_EQ(probe.fault_count(minimpi::FaultKind::kDelaySpike),
            stats.delay_spikes);
  EXPECT_EQ(probe.fault_count(minimpi::FaultKind::kDuplicate),
            stats.duplicates_injected);
  EXPECT_EQ(probe.fault_count(minimpi::FaultKind::kRankStall), stats.stalls);
}

}  // namespace
}  // namespace cdc
