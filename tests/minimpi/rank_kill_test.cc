// ULFM-flavoured rank-failure semantics: a killed rank stops executing,
// peers observe FailedRank errors instead of deadlocking, MF timeouts
// fire, the kill-tolerant task farm shrinks and completes, and a genuine
// deadlock still aborts with a diagnostic naming the stuck ranks.
#include "minimpi/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "apps/taskfarm.h"
#include "minimpi/fault.h"

namespace cdc::minimpi {
namespace {

Simulator::Config config(int ranks, std::uint64_t seed = 1) {
  Simulator::Config c;
  c.num_ranks = ranks;
  c.noise_seed = seed;
  return c;
}

Simulator::Config config_with_kill(int ranks, Rank victim, double time,
                                   std::uint64_t seed = 1) {
  Simulator::Config c = config(ranks, seed);
  c.faults.kills.push_back(RankKill{victim, time});
  return c;
}

std::vector<std::uint8_t> payload(std::uint8_t v) { return {v}; }

TEST(RankKill, KilledRankStopsExecutingAndIsCounted) {
  // Rank 1 is killed before its send ever happens; rank 0's wait on it
  // fails with the dead rank implicated instead of blocking forever.
  Simulator sim(config_with_kill(2, /*victim=*/1, /*time=*/1e-6));
  sim.set_program(0, [](Comm& comm) -> Task {
    Request r = comm.irecv(1, 7);
    auto res = co_await comm.wait(r);
    EXPECT_TRUE(res.failed);
    EXPECT_FALSE(res.timed_out);
    EXPECT_EQ(res.failed_ranks, std::vector<Rank>{1});
    EXPECT_TRUE(res.completions.empty());
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    co_await comm.compute(1e-3);  // killed long before this finishes
    comm.isend(0, 7, payload(1));
  });
  const auto stats = sim.run();
  EXPECT_EQ(sim.fault_stats().rank_kills, 1u);
  EXPECT_EQ(stats.ranks_failed, 1u);
  EXPECT_EQ(stats.mf_failures, 1u);
  EXPECT_TRUE(sim.rank_failed(1));
  EXPECT_FALSE(sim.rank_failed(0));
  EXPECT_EQ(stats.messages_sent, 0u);  // the victim never reached its send
}

TEST(RankKill, InFlightMessagesFromTheDeadRankStillArrive) {
  // The network outlives the process: a message sent before the kill time
  // is delivered normally; only post-mortem execution is lost.
  Simulator sim(config_with_kill(2, /*victim=*/1, /*time=*/5e-4));
  sim.set_program(0, [](Comm& comm) -> Task {
    Request first = comm.irecv(1, 7);
    auto res = co_await comm.wait(first);
    EXPECT_FALSE(res.failed);
    EXPECT_EQ(res.completions[0].payload[0], 42);
    Request second = comm.irecv(1, 8);
    auto res2 = co_await comm.wait(second);
    EXPECT_TRUE(res2.failed);  // the second send never happened
    EXPECT_EQ(res2.failed_ranks, std::vector<Rank>{1});
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    comm.isend(0, 7, payload(42));  // before the kill
    co_await comm.compute(1e-2);    // killed in here
    comm.isend(0, 8, payload(43));  // never happens
  });
  const auto stats = sim.run();
  EXPECT_EQ(stats.receive_events_delivered, 1u);
  EXPECT_EQ(sim.fault_stats().rank_kills, 1u);
}

TEST(RankKill, MfTimeoutFailsTheCallWithoutImplicatingRanks) {
  // A slow (but alive) peer trips the configured MF timeout: the call
  // fails with timed_out and an empty failed_ranks — the caller cannot
  // (and must not) conclude anybody died.
  Simulator::Config c = config(2);
  c.mf_timeout = 1e-4;
  Simulator sim(c);
  sim.set_program(0, [](Comm& comm) -> Task {
    Request r = comm.irecv(1, 7);
    auto res = co_await comm.wait(r);
    EXPECT_TRUE(res.failed);
    EXPECT_TRUE(res.timed_out);
    EXPECT_TRUE(res.failed_ranks.empty());
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    co_await comm.compute(1.0);  // far beyond the timeout
    comm.isend(0, 7, payload(1));
  });
  const auto stats = sim.run();
  EXPECT_EQ(stats.mf_timeouts, 1u);
  EXPECT_EQ(stats.mf_failures, 1u);
  EXPECT_EQ(sim.fault_stats().rank_kills, 0u);
}

TEST(RankKill, FinishedPeersFailWaitsOnlyWhenOptedIn) {
  // fail_unsatisfiable_waits turns "sender finished without sending" into
  // a failed MF call (naming the finished rank) instead of a deadlock.
  Simulator::Config c = config(2);
  c.fail_unsatisfiable_waits = true;
  Simulator sim(c);
  sim.set_program(0, [](Comm& comm) -> Task {
    Request r = comm.irecv(1, 7);
    auto res = co_await comm.wait(r);
    EXPECT_TRUE(res.failed);
    EXPECT_FALSE(res.timed_out);
    EXPECT_EQ(res.failed_ranks, std::vector<Rank>{1});
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    co_await comm.compute(1e-6);  // finishes without sending anything
  });
  const auto stats = sim.run();
  EXPECT_EQ(stats.mf_failures, 1u);
}

TEST(RankKill, TaskFarmShrinksAroundADeadWorkerAndCompletes) {
  // The ULFM shrink idiom end to end: the master writes off the dead
  // worker's outstanding tasks and keeps farming to the survivors — the
  // run completes, with exactly the written-off tasks missing.
  apps::TaskFarmConfig farm;
  farm.tasks = 80;
  apps::TaskFarmResult healthy;
  {
    Simulator sim(config(5, /*seed=*/3));
    healthy = apps::run_taskfarm(sim, farm);
  }
  Simulator sim(config_with_kill(5, /*victim=*/2,
                                 /*time=*/healthy.elapsed * 0.4,
                                 /*seed=*/3));
  const apps::TaskFarmResult degraded = apps::run_taskfarm(sim, farm);
  EXPECT_EQ(sim.fault_stats().rank_kills, 1u);
  EXPECT_GT(degraded.tasks_lost, 0u);
  EXPECT_EQ(degraded.completed + degraded.tasks_lost,
            static_cast<std::uint64_t>(farm.tasks));
  EXPECT_EQ(healthy.tasks_lost, 0u);
  EXPECT_EQ(healthy.completed, static_cast<std::uint64_t>(farm.tasks));
}

TEST(RankKill, SameKillScheduleIsBitReproducible) {
  apps::TaskFarmConfig farm;
  farm.tasks = 60;
  auto run_once = [&farm]() {
    Simulator sim(config_with_kill(4, /*victim=*/1, /*time=*/2e-4,
                                   /*seed=*/9));
    return apps::run_taskfarm(sim, farm);
  };
  const apps::TaskFarmResult a = run_once();
  const apps::TaskFarmResult b = run_once();
  EXPECT_EQ(a.accumulated, b.accumulated);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.tasks_lost, b.tasks_lost);
}

using RankKillDeathTest = ::testing::Test;

TEST(RankKillDeathTest, DeadlockDiagnosticNamesTheStuckRank) {
  // Without fail_unsatisfiable_waits, a wait on a finished-but-silent
  // peer is a genuine deadlock; the abort must name the stuck rank and
  // what it was waiting for.
  EXPECT_DEATH(
      {
        Simulator sim(config(2));
        sim.set_program(0, [](Comm& comm) -> Task {
          Request r = comm.irecv(1, 7);
          auto res = co_await comm.wait(r);
          (void)res;
        });
        sim.set_program(1, [](Comm& comm) -> Task {
          co_await comm.compute(1e-6);  // never sends
        });
        sim.run();
      },
      "deadlock — rank 0 blocked");
}

}  // namespace
}  // namespace cdc::minimpi
