// Replay-tool request rebinding in the simulator: unbound candidates,
// displacement, and the re-matching that follows (the PMPI-layer remapping
// of interchangeable requests that order-replay tools perform).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "minimpi/simulator.h"

namespace cdc::minimpi {
namespace {

Simulator::Config config(int ranks, std::uint64_t seed = 1) {
  Simulator::Config c;
  c.num_ranks = ranks;
  c.noise_seed = seed;
  return c;
}

/// A tool that releases messages in DESCENDING piggyback order — the
/// opposite of arrival — exercising unbound candidate delivery and
/// displacement of MPI-matched messages.
struct ReverseOrderHooks : ToolHooks {
  std::uint64_t next_clock = 0;
  std::uint64_t expected_high;

  explicit ReverseOrderHooks(std::uint64_t high) : expected_high(high) {}

  std::uint64_t on_send(Rank) override { return next_clock++; }

  SelectResult select(Rank, CallsiteId, MFKind,
                      std::span<const Candidate> candidates,
                      std::size_t, bool blocking) override {
    SelectResult result;
    // Wait until the highest-clock message we still expect is visible,
    // then deliver exactly it (bound or not).
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].piggyback == expected_high) {
        result.action = SelectResult::Action::kDeliver;
        result.indices = {i};
        --expected_high;
        return result;
      }
    }
    result.action = blocking ? SelectResult::Action::kBlock
                             : SelectResult::Action::kNoMatch;
    return result;
  }
};

TEST(Rebinding, ToolDeliversUnexpectedMessagesViaInterchangeableRequests) {
  // Rank 1 posts ONE wildcard recv at a time; rank 0 sends three messages
  // with piggybacks 0,1,2. The tool forces delivery order 2,1,0: message 2
  // sits in the unexpected queue when its turn comes (the single request
  // is MPI-matched to message 0), so delivering it requires rebinding and
  // displacing message 0 back to the unexpected queue.
  ReverseOrderHooks hooks(/*high=*/2);
  Simulator sim(config(2, 3), &hooks);
  auto order = std::make_shared<std::vector<std::uint64_t>>();

  sim.set_program(0, [](Comm& comm) -> Task {
    for (int i = 0; i < 3; ++i) {
      comm.isend(1, 1, std::vector<std::uint8_t>{static_cast<std::uint8_t>(i)});
      co_await comm.compute(1e-6);  // spread the sends out
    }
  });
  sim.set_program(1, [order](Comm& comm) -> Task {
    for (int i = 0; i < 3; ++i) {
      Request r = comm.irecv(kAnySource, 1);
      auto res = co_await comm.wait(r);
      order->push_back(res.completions[0].piggyback);
      EXPECT_EQ(res.completions[0].payload[0],
                static_cast<std::uint8_t>(res.completions[0].piggyback));
    }
  });
  sim.run();
  EXPECT_EQ(*order, (std::vector<std::uint64_t>{2, 1, 0}));
}

TEST(Rebinding, DisplacedMessagesRematchLaterRequests) {
  // After displacement, the remaining messages must still be deliverable
  // through freshly posted requests (re-matching reconciliation).
  ReverseOrderHooks hooks(/*high=*/4);
  Simulator sim(config(2, 9), &hooks);
  auto order = std::make_shared<std::vector<std::uint64_t>>();

  sim.set_program(0, [](Comm& comm) -> Task {
    for (int i = 0; i < 5; ++i)
      comm.isend(1, 7, std::vector<std::uint8_t>{0});
    co_return;
  });
  sim.set_program(1, [order](Comm& comm) -> Task {
    for (int i = 0; i < 5; ++i) {
      Request r = comm.irecv(0, 7);
      auto res = co_await comm.wait(r);
      order->push_back(res.completions[0].piggyback);
    }
  });
  sim.run();
  EXPECT_EQ(*order, (std::vector<std::uint64_t>{4, 3, 2, 1, 0}));
}

TEST(Rebinding, BoundAndUnboundCandidatesAreDistinguished) {
  struct InspectingHooks : ToolHooks {
    std::size_t max_bound = 0;
    std::size_t max_unbound = 0;
    std::uint64_t clock = 0;
    std::uint64_t on_send(Rank) override { return clock++; }
    SelectResult select(Rank rank, CallsiteId cs, MFKind kind,
                        std::span<const Candidate> candidates,
                        std::size_t total, bool blocking) override {
      std::size_t bound = 0;
      std::size_t unbound = 0;
      for (const Candidate& c : candidates) (c.bound ? bound : unbound)++;
      max_bound = std::max(max_bound, bound);
      max_unbound = std::max(max_unbound, unbound);
      return ToolHooks::select(rank, cs, kind, candidates, total, blocking);
    }
  };
  InspectingHooks hooks;
  Simulator sim(config(2, 5), &hooks);
  sim.set_program(0, [](Comm& comm) -> Task {
    for (int i = 0; i < 4; ++i) comm.isend(1, 1, {});
    co_return;
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    co_await comm.compute(1e-3);  // let all four arrive first
    for (int i = 0; i < 4; ++i) {
      Request r = comm.irecv(0, 1);
      co_await comm.wait(r);
    }
  });
  sim.run();
  // One request posted at a time: exactly one bound candidate, the rest
  // visible as unbound.
  EXPECT_EQ(hooks.max_bound, 1u);
  EXPECT_EQ(hooks.max_unbound, 3u);
}

}  // namespace
}  // namespace cdc::minimpi
