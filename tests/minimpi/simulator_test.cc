#include "minimpi/simulator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace cdc::minimpi {
namespace {

Simulator::Config config(int ranks, std::uint64_t seed = 1) {
  Simulator::Config c;
  c.num_ranks = ranks;
  c.noise_seed = seed;
  return c;
}

std::vector<std::uint8_t> payload(std::uint8_t v) { return {v}; }

TEST(Simulator, PingPong) {
  Simulator sim(config(2));
  auto log = std::make_shared<std::vector<int>>();
  sim.set_program(0, [log](Comm& comm) -> Task {
    comm.isend(1, 7, payload(42));
    Request r = comm.irecv(1, 8);
    auto res = co_await comm.wait(r);
    EXPECT_TRUE(res.flag);
    EXPECT_EQ(res.completions.size(), 1u);
    EXPECT_EQ(res.completions[0].source, 1);
    EXPECT_EQ(res.completions[0].payload[0], 43);
    log->push_back(1);
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    Request r = comm.irecv(0, 7);
    auto res = co_await comm.wait(r);
    EXPECT_EQ(res.completions[0].payload[0], 42);
    comm.isend(0, 8, payload(43));
  });
  const auto stats = sim.run();
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.receive_events_delivered, 2u);
  EXPECT_EQ(log->size(), 1u);
}

TEST(Simulator, AnySourceAndAnyTagMatch) {
  Simulator sim(config(3));
  sim.set_program(0, [](Comm& comm) -> Task {
    Request a = comm.irecv(kAnySource, kAnyTag);
    Request b = comm.irecv(kAnySource, kAnyTag);
    const Request reqs[] = {a, b};
    auto res = co_await comm.waitall(reqs);
    EXPECT_EQ(res.completions.size(), 2u);
    // Both senders appear exactly once.
    const int s0 = res.completions[0].source;
    const int s1 = res.completions[1].source;
    EXPECT_NE(s0, s1);
    EXPECT_TRUE((s0 == 1 || s0 == 2) && (s1 == 1 || s1 == 2));
  });
  for (Rank r = 1; r <= 2; ++r) {
    sim.set_program(r, [](Comm& comm) -> Task {
      comm.isend(0, 5, payload(9));
      co_return;
    });
  }
  sim.run();
}

TEST(Simulator, NonOvertakingPerChannel) {
  // Messages from one sender must be received in send order (Figure 3's
  // MPI-level guarantee).
  Simulator sim(config(2, /*seed=*/99));
  sim.set_program(0, [](Comm& comm) -> Task {
    for (std::uint8_t i = 0; i < 50; ++i) comm.isend(1, 3, payload(i));
    co_return;
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    for (std::uint8_t i = 0; i < 50; ++i) {
      Request r = comm.irecv(0, 3);
      auto res = co_await comm.wait(r);
      EXPECT_EQ(res.completions[0].payload[0], i);
    }
  });
  sim.run();
}

TEST(Simulator, TestReturnsFalseBeforeArrival) {
  Simulator sim(config(2));
  auto unmatched_seen = std::make_shared<int>(0);
  sim.set_program(0, [unmatched_seen](Comm& comm) -> Task {
    Request r = comm.irecv(1, 1);
    for (;;) {
      auto res = co_await comm.test(r);
      if (res.flag) break;
      ++*unmatched_seen;
      co_await comm.compute(1e-7);
    }
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    co_await comm.compute(1e-3);  // long delay: many failed tests first
    comm.isend(0, 1, payload(1));
  });
  const auto stats = sim.run();
  EXPECT_GT(*unmatched_seen, 10);
  EXPECT_EQ(stats.unmatched_tests,
            static_cast<std::uint64_t>(*unmatched_seen));
}

TEST(Simulator, TestsomeDeliversSubsets) {
  Simulator sim(config(4));
  sim.set_program(0, [](Comm& comm) -> Task {
    std::vector<Request> reqs;
    for (Rank r = 1; r <= 3; ++r) reqs.push_back(comm.irecv(r, 2));
    std::size_t got = 0;
    while (got < 3) {
      auto res = co_await comm.testsome(reqs);
      for (const Completion& c : res.completions) {
        EXPECT_EQ(c.source, static_cast<Rank>(c.span_index) + 1);
        ++got;
      }
      co_await comm.compute(1e-7);
    }
  });
  for (Rank r = 1; r <= 3; ++r) {
    sim.set_program(r, [r](Comm& comm) -> Task {
      co_await comm.compute(1e-6 * static_cast<double>(r));
      comm.isend(0, 2, payload(static_cast<std::uint8_t>(r)));
    });
  }
  sim.run();
}

TEST(Simulator, WaitanyDeliversExactlyOne) {
  Simulator sim(config(3));
  sim.set_program(0, [](Comm& comm) -> Task {
    std::vector<Request> reqs = {comm.irecv(1, 1), comm.irecv(2, 1)};
    auto res = co_await comm.waitany(reqs);
    EXPECT_EQ(res.completions.size(), 1u);
    // Clean up the other request with a wait.
    const std::size_t other = 1 - res.completions[0].span_index;
    auto res2 = co_await comm.wait(reqs[other]);
    EXPECT_EQ(res2.completions.size(), 1u);
  });
  for (Rank r = 1; r <= 2; ++r) {
    sim.set_program(r, [](Comm& comm) -> Task {
      comm.isend(0, 1, payload(0));
      co_return;
    });
  }
  sim.run();
}

TEST(Simulator, TestallIsAllOrNothing) {
  Simulator sim(config(3));
  auto partial_seen = std::make_shared<bool>(false);
  sim.set_program(0, [partial_seen](Comm& comm) -> Task {
    std::vector<Request> reqs = {comm.irecv(1, 1), comm.irecv(2, 1)};
    for (;;) {
      auto res = co_await comm.testall(reqs);
      if (res.flag) {
        EXPECT_EQ(res.completions.size(), 2u);
        break;
      }
      EXPECT_TRUE(res.completions.empty());
      *partial_seen = true;
      co_await comm.compute(1e-7);
    }
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    comm.isend(0, 1, payload(1));
    co_return;
  });
  sim.set_program(2, [](Comm& comm) -> Task {
    co_await comm.compute(1e-3);  // arrives much later
    comm.isend(0, 1, payload(2));
  });
  sim.run();
  EXPECT_TRUE(*partial_seen);
}

TEST(Simulator, WaitallOnSendsCompletesImmediately) {
  Simulator sim(config(2));
  sim.set_program(0, [](Comm& comm) -> Task {
    std::vector<Request> sends;
    for (int i = 0; i < 5; ++i) sends.push_back(comm.isend(1, 1, payload(0)));
    auto res = co_await comm.waitall(sends);
    EXPECT_TRUE(res.flag);
    EXPECT_TRUE(res.completions.empty());
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    for (int i = 0; i < 5; ++i) {
      Request r = comm.irecv(0, 1);
      co_await comm.wait(r);
    }
  });
  sim.run();
}

TEST(Simulator, UnexpectedMessagesMatchLaterRecv) {
  // Message arrives before the receive is posted.
  Simulator sim(config(2));
  sim.set_program(0, [](Comm& comm) -> Task {
    comm.isend(1, 9, payload(77));
    co_return;
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    co_await comm.compute(1e-3);  // post the recv long after arrival
    Request r = comm.irecv(0, 9);
    auto res = co_await comm.wait(r);
    EXPECT_EQ(res.completions[0].payload[0], 77);
  });
  sim.run();
}

TEST(Simulator, TagSelectivity) {
  Simulator sim(config(2));
  sim.set_program(0, [](Comm& comm) -> Task {
    comm.isend(1, 1, payload(1));
    comm.isend(1, 2, payload(2));
    co_return;
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    // Wait for tag 2 first even though tag 1 is sent (and arrives) first.
    Request r2 = comm.irecv(0, 2);
    auto res2 = co_await comm.wait(r2);
    EXPECT_EQ(res2.completions[0].payload[0], 2);
    Request r1 = comm.irecv(0, 1);
    auto res1 = co_await comm.wait(r1);
    EXPECT_EQ(res1.completions[0].payload[0], 1);
  });
  sim.run();
}

TEST(Simulator, SameSeedIsBitReproducible) {
  for (int trial = 0; trial < 2; ++trial) {
    static double first_end = 0.0;
    Simulator sim(config(4, 5));
    sim.set_program([](Comm& comm) -> Task {
      for (int iter = 0; iter < 10; ++iter) {
        for (Rank r = 0; r < comm.size(); ++r)
          if (r != comm.rank()) comm.isend(r, 1, payload(0));
        for (Rank r = 0; r < comm.size(); ++r) {
          if (r == comm.rank()) continue;
          Request req = comm.irecv(kAnySource, 1);
          co_await comm.wait(req);
        }
        co_await comm.compute(1e-6);
      }
    });
    const auto stats = sim.run();
    if (trial == 0) {
      first_end = stats.end_time;
    } else {
      EXPECT_EQ(stats.end_time, first_end);
    }
  }
}

TEST(Simulator, BarrierSynchronises) {
  Simulator sim(config(5));
  auto order = std::make_shared<std::vector<int>>();
  sim.set_program([order](Comm& comm) -> Task {
    co_await comm.compute(1e-6 * static_cast<double>(comm.rank() + 1));
    order->push_back(0);  // before barrier
    co_await comm.barrier();
    order->push_back(1);  // after barrier
  });
  sim.run();
  // All "before" entries precede all "after" entries.
  ASSERT_EQ(order->size(), 10u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ((*order)[i], 0);
  for (std::size_t i = 5; i < 10; ++i) EXPECT_EQ((*order)[i], 1);
}

TEST(Simulator, AllreduceSumsInRankOrder) {
  Simulator sim(config(4));
  auto results = std::make_shared<std::vector<double>>();
  sim.set_program([results](Comm& comm) -> Task {
    std::vector<double> contribution = {
        static_cast<double>(comm.rank() + 1), 1.0};
    auto sums = co_await comm.allreduce_sum(std::move(contribution));
    if (comm.rank() == 0) *results = sums;
  });
  sim.run();
  ASSERT_EQ(results->size(), 2u);
  EXPECT_DOUBLE_EQ((*results)[0], 10.0);
  EXPECT_DOUBLE_EQ((*results)[1], 4.0);
}

TEST(Simulator, PiggybackFlowsThroughHooks) {
  struct CountingHooks : ToolHooks {
    std::uint64_t next = 100;
    std::vector<std::uint64_t> seen;
    std::uint64_t on_send(Rank) override { return next++; }
    void on_deliver(Rank, CallsiteId, MFKind,
                    std::span<const Completion> events) override {
      for (const Completion& e : events) seen.push_back(e.piggyback);
    }
  };
  CountingHooks hooks;
  Simulator sim(config(2), &hooks);
  sim.set_program(0, [](Comm& comm) -> Task {
    comm.isend(1, 1, payload(0));
    comm.isend(1, 1, payload(0));
    co_return;
  });
  sim.set_program(1, [](Comm& comm) -> Task {
    for (int i = 0; i < 2; ++i) {
      Request r = comm.irecv(0, 1);
      co_await comm.wait(r);
    }
  });
  sim.run();
  EXPECT_EQ(hooks.seen, (std::vector<std::uint64_t>{100, 101}));
}

TEST(Simulator, DeadlockAborts) {
  EXPECT_DEATH(
      {
        Simulator sim(config(2));
        sim.set_program(0, [](Comm& comm) -> Task {
          Request r = comm.irecv(1, 1);  // never sent
          co_await comm.wait(r);
        });
        sim.set_program(1, [](Comm&) -> Task { co_return; });
        sim.run();
      },
      "deadlock");
}

TEST(Simulator, ExceptionInRankPropagates) {
  Simulator sim(config(1));
  sim.set_program(0, [](Comm& comm) -> Task {
    co_await comm.compute(1e-9);
    throw std::runtime_error("rank failure");
  });
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, VirtualTimeAdvancesWithCompute) {
  Simulator sim(config(1));
  sim.set_program(0, [](Comm& comm) -> Task {
    const double before = comm.now();
    co_await comm.compute(1.5);
    EXPECT_GE(comm.now(), before + 1.5);
  });
  const auto stats = sim.run();
  EXPECT_GE(stats.end_time, 1.5);
}

TEST(Simulator, PayloadHelpersRoundTrip) {
  struct Pod {
    double a;
    std::uint32_t b;
  };
  const Pod value{3.25, 17};
  const auto bytes = to_payload(value);
  EXPECT_EQ(bytes.size(), sizeof(Pod));
  const Pod back = from_payload<Pod>(bytes);
  EXPECT_EQ(back.a, value.a);
  EXPECT_EQ(back.b, value.b);
}

}  // namespace
}  // namespace cdc::minimpi
