// End-to-end kill sweep (DESIGN.md §14): fork the real cdc_served
// binary, SIGKILL it at each armed protocol state, restart it on the
// same port, and require every resuming client to finish with a sealed
// record byte-identical to an uninterrupted local rebuild. The harness
// and the assertions live in net/chaos.{h,cc}; this test runs the sweep
// at a small, CI-friendly shape. CDC_SERVED_BIN is injected by CMake.
#include "net/chaos.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

namespace cdc::net {
namespace {

TEST(ChaosSweepTest, KillSweepYieldsByteIdenticalRecords) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("cdc_chaos_test." + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  ChaosConfig config;
  config.binary = CDC_SERVED_BIN;
  config.root_dir = root.string();
  config.clients = 2;
  config.seed = 1234;
  config.shape.batches = 6;
  config.shape.frames_per_batch = 4;
  config.shape.payload_bytes = 512;
  config.shape.streams = 2;
  config.crash_batch = 4;
  config.level = compress::DeflateLevel::kFast;

  const ChaosReport report = run_chaos(config);
  ASSERT_FALSE(report.points.empty());
  for (const ChaosPointResult& point : report.points) {
    EXPECT_TRUE(point.passed) << point.name;
    EXPECT_EQ(point.sealed, config.clients) << point.name;
    EXPECT_EQ(point.verified, config.clients) << point.name;
    for (const std::string& e : point.errors)
      ADD_FAILURE() << point.name << ": " << e;
    // Every kill point except the clean-SIGTERM one must actually have
    // forced at least one client through the reconnect path.
    if (point.name != "sigterm-under-load") {
      EXPECT_GE(point.reconnects, 1u) << point.name;
    }
  }
  EXPECT_TRUE(report.ok());

  if (::getenv("CDC_TEST_KEEP_SCRATCH") == nullptr)
    std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace cdc::net
