// The client's poll(2)-based deadlines: a server that accepts and then
// never replies must not wedge connect() past `timeout_ms`, and a dial
// into a saturated accept queue must not wedge past
// `connect_timeout_ms`. Both failures are *local* and therefore
// retryable — the reconnect loop classifies them as such.
#include "net/client.h"

#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <vector>

namespace cdc::net {
namespace {

/// A listening socket that never accept()s (and therefore never replies).
class SilentListener {
 public:
  SilentListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(fd_, 1);
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  ~SilentListener() {
    for (const int fd : clogged_) ::close(fd);
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Fills the accept queue with raw connections so later SYNs are
  /// dropped and a new connect() hangs in SYN_SENT.
  void clog() {
    for (int i = 0; i < 8; ++i) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) break;
      timeval tv{};
      tv.tv_usec = 200 * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(port_);
      (void)::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      clogged_.push_back(fd);
    }
  }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<int> clogged_;
};

TEST(ClientDeadlineTest, SilentServerBoundsTheHandshake) {
  // The kernel completes the TCP handshake from the backlog, so the
  // HELLO goes out — but no WELCOME ever comes back. The read deadline
  // must fire instead of blocking forever.
  SilentListener listener;
  Client::Options options;
  options.port = listener.port();
  options.token = "tok";
  options.record = "rec";
  options.timeout_ms = 300;
  options.connect_timeout_ms = 2000;
  std::string error;
  const auto started = std::chrono::steady_clock::now();
  auto client = Client::connect(options, &error);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  EXPECT_EQ(client, nullptr);
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
  // Generous ceiling: the point is "bounded", not "exactly 300 ms".
  EXPECT_LT(elapsed, 10000) << error;
}

TEST(ClientDeadlineTest, SaturatedAcceptQueueBoundsTheDial) {
  // With the accept queue full the kernel drops our SYN and the connect
  // sits in SYN_SENT; the poll(POLLOUT) deadline must cut it off.
  SilentListener listener;
  listener.clog();
  Client::Options options;
  options.port = listener.port();
  options.token = "tok";
  options.record = "rec";
  options.timeout_ms = 300;
  options.connect_timeout_ms = 300;
  std::string error;
  const auto started = std::chrono::steady_clock::now();
  auto client = Client::connect(options, &error);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  EXPECT_EQ(client, nullptr);
  // Either deadline may fire first (a lucky SYN can still land in the
  // queue and then starve at the read); both must stay bounded.
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
  EXPECT_LT(elapsed, 10000) << error;
}

TEST(ClientDeadlineTest, ZeroRetriesMeansNoReconnect) {
  // Deadline failures are retryable only when a reconnect budget exists;
  // the default budget of zero keeps the old fail-fast contract.
  SilentListener listener;
  Client::Options options;
  options.port = listener.port();
  options.token = "tok";
  options.record = "rec";
  options.timeout_ms = 200;
  options.resumable = true;  // resumable alone must not imply retries
  std::string error;
  auto client = Client::connect(options, &error);
  EXPECT_EQ(client, nullptr);
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
}

}  // namespace
}  // namespace cdc::net
