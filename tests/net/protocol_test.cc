// Wire-protocol robustness battery (DESIGN.md §13): round-trips for every
// message type, then hostile input — truncation at every byte boundary,
// a bit flip at every byte, oversized length announcements, garbage magic.
// The parser must yield clean kNeedMore/kMalformed verdicts and never a
// wrong message; under ASan this suite is also the memory-safety proof.
#include "net/protocol.h"

#include <gtest/gtest.h>

#include "support/binary.h"

namespace cdc::net {
namespace {

Hello sample_hello() {
  Hello hello;
  hello.token = "sekret-token";
  hello.record = "run-42";
  hello.intent = Intent::kIngest;
  hello.level = compress::DeflateLevel::kBest;
  return hello;
}

FrameBatch sample_batch() {
  FrameBatch batch;
  batch.seq = 7;
  for (int i = 0; i < 3; ++i) {
    WireFrame frame;
    frame.key.rank = i;
    frame.key.callsite = 11;
    frame.codec = 0x01;
    frame.meta = static_cast<std::uint64_t>(i);
    frame.compress = (i % 2) == 0;
    frame.payload.assign(64 + 32 * static_cast<std::size_t>(i),
                         static_cast<std::uint8_t>(0x40 + i));
    if (i == 1) {
      runtime::EpochMeta meta;
      meta.matched = 5;
      meta.unmatched = 2;
      frame.epoch = meta;
    }
    batch.frames.push_back(std::move(frame));
  }
  return batch;
}

/// Feeds `bytes` whole and expects exactly one clean message.
Message parse_one(const std::vector<std::uint8_t>& bytes) {
  WireParser parser;
  parser.feed(bytes);
  Message msg;
  EXPECT_EQ(parser.next(&msg), WireParser::Status::kMessage);
  EXPECT_EQ(parser.buffered(), 0u);
  return msg;
}

TEST(Protocol, HelloRoundTrip) {
  const Message msg = parse_one(encode_hello(sample_hello()));
  EXPECT_EQ(msg.type, MsgType::kHello);
  Hello out;
  ASSERT_TRUE(decode_hello(msg, out));
  EXPECT_EQ(out.version, kProtocolVersion);
  EXPECT_EQ(out.token, "sekret-token");
  EXPECT_EQ(out.record, "run-42");
  EXPECT_EQ(out.intent, Intent::kIngest);
  EXPECT_EQ(out.level, compress::DeflateLevel::kBest);
}

TEST(Protocol, WelcomeRoundTrip) {
  Welcome welcome;
  welcome.level = compress::DeflateLevel::kFast;
  welcome.session_id = 99;
  welcome.limits.max_message_body = 1 << 20;
  welcome.limits.max_frame_bytes = 1 << 16;
  welcome.limits.max_batch_frames = 32;
  Welcome out;
  ASSERT_TRUE(decode_welcome(parse_one(encode_welcome(welcome)), out));
  EXPECT_EQ(out.level, compress::DeflateLevel::kFast);
  EXPECT_EQ(out.session_id, 99u);
  EXPECT_EQ(out.limits.max_message_body, 1u << 20);
  EXPECT_EQ(out.limits.max_frame_bytes, 1u << 16);
  EXPECT_EQ(out.limits.max_batch_frames, 32u);
}

TEST(Protocol, PutFramesRoundTripAllLevels) {
  const FrameBatch batch = sample_batch();
  for (const auto level :
       {compress::DeflateLevel::kStored, compress::DeflateLevel::kFast,
        compress::DeflateLevel::kDefault, compress::DeflateLevel::kBest}) {
    FrameBatch out;
    ASSERT_TRUE(decode_put_frames(parse_one(encode_put_frames(batch, level)),
                                  Limits{}, out));
    ASSERT_EQ(out.seq, batch.seq);
    ASSERT_EQ(out.frames.size(), batch.frames.size());
    for (std::size_t i = 0; i < out.frames.size(); ++i) {
      EXPECT_EQ(out.frames[i].key, batch.frames[i].key);
      EXPECT_EQ(out.frames[i].codec, batch.frames[i].codec);
      EXPECT_EQ(out.frames[i].meta, batch.frames[i].meta);
      EXPECT_EQ(out.frames[i].compress, batch.frames[i].compress);
      EXPECT_EQ(out.frames[i].payload, batch.frames[i].payload);
      EXPECT_EQ(out.frames[i].epoch.has_value(),
                batch.frames[i].epoch.has_value());
      if (out.frames[i].epoch.has_value()) {
        EXPECT_EQ(*out.frames[i].epoch, *batch.frames[i].epoch);
      }
    }
  }
}

TEST(Protocol, SmallMessagesRoundTrip) {
  PutAck ack{42, 1000, 1 << 20};
  PutAck ack_out;
  ASSERT_TRUE(decode_put_ack(parse_one(encode_put_ack(ack)), ack_out));
  EXPECT_EQ(ack_out.seq, 42u);
  EXPECT_EQ(ack_out.frames_ingested, 1000u);
  EXPECT_EQ(ack_out.bytes_ingested, 1u << 20);

  Sealed sealed{123456, 8, 512};
  Sealed sealed_out;
  ASSERT_TRUE(decode_sealed(parse_one(encode_sealed(sealed)), sealed_out));
  EXPECT_EQ(sealed_out.container_bytes, 123456u);
  EXPECT_EQ(sealed_out.streams, 8u);
  EXPECT_EQ(sealed_out.frames, 512u);

  ReplayWindowReq req{3, 9};
  ReplayWindowReq req_out;
  ASSERT_TRUE(
      decode_replay_window(parse_one(encode_replay_window(req)), req_out));
  EXPECT_EQ(req_out.epoch_lo, 3u);
  EXPECT_EQ(req_out.epoch_hi, 9u);

  WindowDone done{4, true};
  WindowDone done_out;
  ASSERT_TRUE(decode_window_done(parse_one(encode_window_done(done)),
                                 done_out));
  EXPECT_EQ(done_out.streams, 4u);
  EXPECT_TRUE(done_out.all_seeked);

  InspectKind kind = InspectKind::kVerify;
  ASSERT_TRUE(decode_inspect(
      parse_one(encode_inspect(InspectKind::kGaps)), kind));
  EXPECT_EQ(kind, InspectKind::kGaps);

  const Message bye = parse_one(encode_simple(MsgType::kBye));
  EXPECT_EQ(bye.type, MsgType::kBye);
}

TEST(Protocol, WindowStreamRoundTrip) {
  WindowStream ws;
  ws.key.rank = 3;
  ws.key.callsite = 17;
  ws.first_epoch = 5;
  ws.seeked = true;
  ws.bytes.assign(1024, 0x5A);
  WindowStream out;
  ASSERT_TRUE(decode_window_stream(
      parse_one(encode_window_stream(ws, compress::DeflateLevel::kDefault)),
      out));
  EXPECT_EQ(out.key, ws.key);
  EXPECT_EQ(out.first_epoch, 5u);
  EXPECT_TRUE(out.seeked);
  EXPECT_EQ(out.bytes, ws.bytes);
}

TEST(Protocol, ErrorRoundTrip) {
  ErrCode code = ErrCode::kInternal;
  std::string text;
  ASSERT_TRUE(decode_error(
      parse_one(encode_error(ErrCode::kQuota, "tenant over budget")), code,
      text));
  EXPECT_EQ(code, ErrCode::kQuota);
  EXPECT_EQ(text, "tenant over budget");
  EXPECT_STREQ(err_code_name(ErrCode::kQuota), "quota");
}

// --- hostile input -------------------------------------------------------

TEST(Protocol, TruncationAtEveryByteBoundaryIsNeedMore) {
  // A mid-message disconnect can cut the stream at any byte. Every proper
  // prefix must parse as "still in flight", never as malformed and never
  // as a (wrong) message.
  const std::vector<std::uint8_t> wire =
      encode_put_frames(sample_batch(), compress::DeflateLevel::kFast);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    WireParser parser;
    parser.feed({wire.data(), cut});
    Message msg;
    ASSERT_EQ(parser.next(&msg), WireParser::Status::kNeedMore)
        << "prefix of " << cut << " bytes";
    // Feeding the remainder completes the message.
    parser.feed({wire.data() + cut, wire.size() - cut});
    ASSERT_EQ(parser.next(&msg), WireParser::Status::kMessage);
    EXPECT_EQ(msg.type, MsgType::kPutFrames);
  }
}

TEST(Protocol, BitFlipAtEveryByteNeverYieldsAMessage) {
  // Every wire byte is covered by the trailing CRC (or breaks the header
  // parse outright), so any single-bit corruption must be refused — the
  // parser may want more bytes (a length field grew) but must never hand
  // back a message.
  const std::vector<std::uint8_t> wire = encode_hello(sample_hello());
  for (std::size_t at = 0; at < wire.size(); ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bent = wire;
      bent[at] ^= static_cast<std::uint8_t>(1u << bit);
      WireParser parser;
      parser.feed(bent);
      Message msg;
      ASSERT_NE(parser.next(&msg), WireParser::Status::kMessage)
          << "byte " << at << " bit " << bit;
    }
  }
}

TEST(Protocol, OversizedLengthPrefixRejectedWithoutBuffering) {
  // A hostile header announcing a 2^60-byte body must be refused as soon
  // as the announcement parses — the parser never waits for (or buffers
  // toward) the announced bytes.
  support::ByteWriter header;
  header.u8(0xC4);
  header.u8(static_cast<std::uint8_t>(MsgType::kPutFrames));
  header.u8(1);  // stored_raw
  header.varint(0);
  header.varint(1ull << 60);  // raw_len
  header.varint(1ull << 60);  // body_len
  WireParser parser;
  parser.feed(header.view());
  Message msg;
  EXPECT_EQ(parser.next(&msg), WireParser::Status::kMalformed);
  EXPECT_NE(parser.error().find("length"), std::string::npos);
  // Terminal: even good bytes afterwards stay rejected.
  parser.feed(encode_simple(MsgType::kBye));
  EXPECT_EQ(parser.next(&msg), WireParser::Status::kMalformed);
}

TEST(Protocol, GarbageMagicIsMalformed) {
  std::vector<std::uint8_t> garbage(64);
  for (std::size_t i = 0; i < garbage.size(); ++i)
    garbage[i] = static_cast<std::uint8_t>(i * 37 + 1);
  ASSERT_NE(garbage[0], 0xC4);
  WireParser parser;
  parser.feed(garbage);
  Message msg;
  EXPECT_EQ(parser.next(&msg), WireParser::Status::kMalformed);
}

TEST(Protocol, ByteAtATimeFeedRecoversMessageSequence) {
  std::vector<std::uint8_t> wire;
  const auto append = [&wire](const std::vector<std::uint8_t>& msg) {
    wire.insert(wire.end(), msg.begin(), msg.end());
  };
  append(encode_hello(sample_hello()));
  append(encode_put_frames(sample_batch(), compress::DeflateLevel::kDefault));
  append(encode_simple(MsgType::kSeal));
  append(encode_simple(MsgType::kBye));

  WireParser parser;
  std::vector<MsgType> seen;
  for (const std::uint8_t byte : wire) {
    parser.feed({&byte, 1});
    Message msg;
    while (parser.next(&msg) == WireParser::Status::kMessage)
      seen.push_back(msg.type);
  }
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], MsgType::kHello);
  EXPECT_EQ(seen[1], MsgType::kPutFrames);
  EXPECT_EQ(seen[2], MsgType::kSeal);
  EXPECT_EQ(seen[3], MsgType::kBye);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(Protocol, DecodeEnforcesBatchLimits) {
  Limits tight;
  tight.max_batch_frames = 2;
  FrameBatch batch = sample_batch();  // 3 frames
  FrameBatch out;
  EXPECT_FALSE(decode_put_frames(
      parse_one(encode_put_frames(batch, compress::DeflateLevel::kStored)),
      tight, out));

  Limits tiny;
  tiny.max_frame_bytes = 16;  // every sample frame is larger
  EXPECT_FALSE(decode_put_frames(
      parse_one(encode_put_frames(batch, compress::DeflateLevel::kStored)),
      tiny, out));

  EXPECT_TRUE(decode_put_frames(
      parse_one(encode_put_frames(batch, compress::DeflateLevel::kStored)),
      Limits{}, out));
}

TEST(Protocol, TypeMismatchedDecodeFails) {
  const Message hello = parse_one(encode_hello(sample_hello()));
  PutAck ack;
  EXPECT_FALSE(decode_put_ack(hello, ack));
  Welcome welcome;
  EXPECT_FALSE(decode_welcome(hello, welcome));
  FrameBatch batch;
  EXPECT_FALSE(decode_put_frames(hello, Limits{}, batch));
}

}  // namespace
}  // namespace cdc::net
