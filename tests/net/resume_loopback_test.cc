// Crash-safe resume over loopback (DESIGN.md §14): durable resumable
// sessions, batch-seq dedup, RESUME skip-ahead, restart recovery, the
// client's transparent reconnect loop, graceful drain-and-park, the
// fsync-before-ack ordering under injected fsync faults, and v1 interop.
// Every completed upload is byte-compared against a local rebuild from
// the same seed — the resume machinery must be invisible in the sealed
// container.
#include "net/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "net/client.h"
#include "net/load_gen.h"
#include "store/container_reader.h"
#include "store/resilient.h"
#include "store/session_journal.h"

namespace cdc::net {
namespace {

constexpr const char* kToken = "resume-token";
constexpr const char* kTenant = "acme";

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::vector<WireFrame> wire_frames(const std::vector<SynthJob>& jobs,
                                   std::size_t begin, std::size_t end) {
  std::vector<WireFrame> frames;
  frames.reserve(end - begin);
  for (std::size_t i = begin; i < end && i < jobs.size(); ++i) {
    const SynthJob& sj = jobs[i];
    WireFrame frame;
    frame.key = sj.key;
    frame.codec = sj.job.codec;
    frame.meta = sj.job.meta;
    frame.compress = sj.job.compress;
    frame.epoch = sj.job.epoch;
    frame.payload = sj.job.payload;
    frames.push_back(std::move(frame));
  }
  return frames;
}

class ResumeLoopbackTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kFramesPerBatch = 6;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cdc_resume_test." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    SynthShape shape;
    shape.batches = 5;
    shape.frames_per_batch = kFramesPerBatch;
    shape.payload_bytes = 768;
    shape.streams = 3;
    jobs_ = synth_jobs(/*seed=*/31, shape, compress::DeflateLevel::kFast);
    ASSERT_EQ(jobs_.size(), 5 * kFramesPerBatch);
  }
  void TearDown() override {
    server_.reset();
    if (::getenv("CDC_TEST_KEEP_SCRATCH") == nullptr)
      std::filesystem::remove_all(dir_);
  }

  void start_server(ServerConfig config = {}, std::uint16_t port = 0) {
    config.root_dir = (dir_ / "root").string();
    config.port = port;
    if (config.tenants.empty()) {
      TenantConfig tenant;
      tenant.name = kTenant;
      tenant.token = kToken;
      config.tenants.push_back(tenant);
    }
    server_ = std::make_unique<Server>(std::move(config));
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<Client> dial(const std::string& record, bool resumable,
                               std::string* error_out = nullptr,
                               std::uint32_t max_reconnects = 0,
                               std::uint32_t version = kProtocolVersion) {
    Client::Options options;
    options.port = server_->port();
    options.token = kToken;
    options.record = record;
    options.intent = Intent::kIngest;
    options.level = compress::DeflateLevel::kFast;
    options.resumable = resumable;
    options.max_reconnects = max_reconnects;
    options.version = version;
    options.timeout_ms = 10000;
    options.connect_timeout_ms = 5000;
    std::string error;
    auto client = Client::connect(options, &error);
    if (error_out != nullptr) *error_out = error;
    return client;
  }

  /// Sends batches [from, to) of the fixture workload, one put() each.
  [[nodiscard]] bool put_batches(Client& client, std::size_t from,
                                 std::size_t to) {
    for (std::size_t b = from; b < to; ++b) {
      if (!client.put(wire_frames(jobs_, b * kFramesPerBatch,
                                  (b + 1) * kFramesPerBatch)))
        return false;
    }
    return true;
  }

  [[nodiscard]] std::string record_path(const std::string& record) const {
    return (dir_ / "root" / kTenant / (record + ".cdcc")).string();
  }

  /// The sealed record must equal a local rebuild of the whole workload
  /// and pass full container verification.
  void expect_byte_identical(const std::string& record) {
    const std::string local = (dir_ / ("local-" + record)).string();
    std::string error;
    ASSERT_TRUE(write_synth_container(local, jobs_, &error)) << error;
    const auto served = file_bytes(record_path(record));
    ASSERT_FALSE(served.empty());
    EXPECT_EQ(served, file_bytes(local));
    const auto reader = store::ContainerReader::open(record_path(record));
    ASSERT_NE(reader, nullptr);
    EXPECT_TRUE(reader->index_ok());
    EXPECT_TRUE(reader->verify().ok);
    // Seal retires the sidecar: no journal debris next to a sealed record.
    EXPECT_FALSE(std::filesystem::exists(
        store::session_journal_path(record_path(record))));
  }

  template <typename Pred>
  [[nodiscard]] bool wait_for(Pred pred) {
    for (int i = 0; i < 500; ++i) {
      if (pred(server_->stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred(server_->stats());
  }

  std::filesystem::path dir_;
  std::vector<SynthJob> jobs_;
  std::unique_ptr<Server> server_;
};

TEST_F(ResumeLoopbackTest, ReplayedPrefixIsANoOp) {
  // The dedup property: after a disconnect, a fresh client that re-sends
  // EVERY batch from seq 1 must leave the durable prefix untouched — the
  // server re-acks and drops them — and the sealed result is
  // byte-identical to an uninterrupted upload.
  start_server();
  {
    auto client = dial("dedup", /*resumable=*/true);
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(put_batches(*client, 0, 3)) << client->last_error();
    // Wait until at least one batch is journaled-durable before dying, so
    // the re-send genuinely replays acked work.
    ASSERT_TRUE(wait_for([](const Server::Stats& s) {
      return s.frames_ingested >= kFramesPerBatch;
    }));
    // Drop the connection without sealing.
  }
  ASSERT_TRUE(wait_for(
      [](const Server::Stats& s) { return s.sessions_parked >= 1; }));
  EXPECT_TRUE(std::filesystem::exists(record_path("dedup")));
  EXPECT_TRUE(std::filesystem::exists(
      store::session_journal_path(record_path("dedup"))));

  auto client = dial("dedup", /*resumable=*/true);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(put_batches(*client, 0, 5)) << client->last_error();
  Sealed sealed;
  ASSERT_TRUE(client->seal(&sealed)) << client->last_error();
  EXPECT_EQ(sealed.frames, jobs_.size());
  client->bye();

  const Server::Stats stats = server_->stats();
  EXPECT_GE(stats.sessions_resumed, 1u);
  EXPECT_GE(stats.batches_deduped, 1u);
  // Totals count each frame once, dedup or not.
  EXPECT_EQ(stats.frames_ingested, jobs_.size());
  expect_byte_identical("dedup");
}

TEST_F(ResumeLoopbackTest, ResumeSkipAheadSendsOnlyTheRemainder) {
  start_server();
  {
    auto client = dial("skip", /*resumable=*/true);
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(put_batches(*client, 0, 3)) << client->last_error();
    ASSERT_TRUE(wait_for([](const Server::Stats& s) {
      return s.frames_ingested >= kFramesPerBatch;
    }));
  }
  ASSERT_TRUE(wait_for(
      [](const Server::Stats& s) { return s.sessions_parked >= 1; }));

  auto client = dial("skip", /*resumable=*/true);
  ASSERT_NE(client, nullptr);
  Resumed resumed;
  ASSERT_TRUE(client->resume(&resumed)) << client->last_error();
  ASSERT_GE(resumed.last_seq, 1u);
  ASSERT_LE(resumed.last_seq, 3u);
  // The server's high-water mark is exact: whole batches only.
  EXPECT_EQ(resumed.frames_ingested, resumed.last_seq * kFramesPerBatch);
  ASSERT_TRUE(put_batches(*client, resumed.last_seq, 5))
      << client->last_error();
  ASSERT_TRUE(client->seal()) << client->last_error();
  client->bye();
  EXPECT_EQ(server_->stats().batches_deduped, 0u);
  expect_byte_identical("skip");
}

TEST_F(ResumeLoopbackTest, ResumeAfterPutRejected) {
  start_server();
  auto client = dial("late-resume", /*resumable=*/true);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(put_batches(*client, 0, 1)) << client->last_error();
  Resumed resumed;
  // Depending on timing the client sees either the server's kBadMessage
  // ERROR or the in-flight PUT_ACK where RESUMED was expected — both are
  // a failed resume and a dead session.
  EXPECT_FALSE(client->resume(&resumed));
  EXPECT_TRUE(client->failed());
}

TEST_F(ResumeLoopbackTest, RestartRecoversParkedSessions) {
  // The daemon dies (stop() stands in for the crash — the on-disk state
  // is the journaled partial either way) and a new server over the same
  // root must rebuild the resume table and finish the upload.
  start_server();
  {
    auto client = dial("reborn", /*resumable=*/true);
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(put_batches(*client, 0, 2)) << client->last_error();
    ASSERT_TRUE(wait_for([](const Server::Stats& s) {
      return s.frames_ingested >= kFramesPerBatch;
    }));
  }
  ASSERT_TRUE(wait_for(
      [](const Server::Stats& s) { return s.sessions_parked >= 1; }));
  server_.reset();

  start_server();
  EXPECT_EQ(server_->stats().sessions_recovered, 1u);
  auto client = dial("reborn", /*resumable=*/true);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(put_batches(*client, 0, 5)) << client->last_error();
  ASSERT_TRUE(client->seal()) << client->last_error();
  client->bye();
  EXPECT_GE(server_->stats().sessions_resumed, 1u);
  expect_byte_identical("reborn");
}

TEST_F(ResumeLoopbackTest, ClientReconnectsAcrossServerRestart) {
  // The transparent path: the client holds its resend buffer, the server
  // is torn down and replaced mid-upload, and put()/seal() recover
  // without the caller noticing anything but latency.
  start_server();
  const std::uint16_t port = server_->port();
  auto client = dial("phoenix", /*resumable=*/true, nullptr,
                     /*max_reconnects=*/10);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(put_batches(*client, 0, 2)) << client->last_error();
  ASSERT_TRUE(wait_for([](const Server::Stats& s) {
    return s.frames_ingested >= kFramesPerBatch;
  }));
  server_.reset();
  start_server({}, port);
  EXPECT_EQ(server_->stats().sessions_recovered, 1u);

  ASSERT_TRUE(put_batches(*client, 2, 5)) << client->last_error();
  ASSERT_TRUE(client->seal()) << client->last_error();
  EXPECT_GE(client->reconnects(), 1u);
  client->bye();
  expect_byte_identical("phoenix");
}

TEST_F(ResumeLoopbackTest, DrainParksActiveResumableSessions) {
  start_server();
  auto client = dial("drained", /*resumable=*/true);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(put_batches(*client, 0, 3)) << client->last_error();
  ASSERT_TRUE(wait_for([](const Server::Stats& s) {
    return s.frames_ingested >= kFramesPerBatch;
  }));
  EXPECT_TRUE(server_->drain(/*timeout_ms=*/10000));
  EXPECT_GE(server_->stats().sessions_parked, 1u);
  // The journal and partial container survive the drain.
  EXPECT_TRUE(std::filesystem::exists(record_path("drained")));
  EXPECT_TRUE(std::filesystem::exists(
      store::session_journal_path(record_path("drained"))));
  client.reset();
  server_.reset();

  start_server();
  EXPECT_EQ(server_->stats().sessions_recovered, 1u);
  auto finisher = dial("drained", /*resumable=*/true);
  ASSERT_NE(finisher, nullptr);
  ASSERT_TRUE(put_batches(*finisher, 0, 5)) << finisher->last_error();
  ASSERT_TRUE(finisher->seal()) << finisher->last_error();
  finisher->bye();
  expect_byte_identical("drained");
}

TEST_F(ResumeLoopbackTest, FsyncFaultFailsBatchBeforeAck) {
  // The fsync-before-ack regression seam: when the store's durability
  // sync() throws, the batch must fail with kInternal and NO ack — the
  // journal never advances past it — and a later resume finishes the
  // upload byte-identically.
  ServerConfig config;
  int session_index = 0;
  config.store_wrapper =
      [&session_index](runtime::RecordStore* inner)
      -> std::unique_ptr<runtime::RecordStore> {
    // Fault only the first session; the resuming session gets a clean
    // store so recovery can finish.
    if (session_index++ > 0) return nullptr;
    store::IoFaultPlan plan;
    plan.fsync_failure_every_n = 2;  // second batch's sync throws
    return std::make_unique<store::IoFaultStore>(inner, plan);
  };
  start_server(std::move(config));

  {
    auto client = dial("fsynced", /*resumable=*/true);
    ASSERT_NE(client, nullptr);
    bool failed = !put_batches(*client, 0, 5);
    if (!failed) failed = !client->seal();
    ASSERT_TRUE(failed);
    EXPECT_EQ(client->last_code(), ErrCode::kInternal)
        << client->last_error();
  }
  ASSERT_TRUE(wait_for(
      [](const Server::Stats& s) { return s.sessions_parked >= 1; }));
  // Exactly one batch became durable: the faulted second batch was never
  // journaled, so the journal must stop at seq 1.
  const auto state = store::read_session_journal(
      store::session_journal_path(record_path("fsynced")));
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->last_seq, 1u);
  EXPECT_EQ(state->frames_total, kFramesPerBatch);

  auto client = dial("fsynced", /*resumable=*/true);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(put_batches(*client, 0, 5)) << client->last_error();
  ASSERT_TRUE(client->seal()) << client->last_error();
  client->bye();
  EXPECT_GE(server_->stats().batches_deduped, 1u);
  expect_byte_identical("fsynced");
}

TEST_F(ResumeLoopbackTest, V1ClientInteropStillWorks) {
  // A pre-resume client negotiates version 1 and uploads exactly as
  // before; the server answers in kind and the session is not journaled.
  start_server();
  auto client = dial("legacy", /*resumable=*/false, nullptr, 0,
                     /*version=*/1);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->welcome().version, 1u);
  ASSERT_TRUE(put_batches(*client, 0, 5)) << client->last_error();
  ASSERT_TRUE(client->seal()) << client->last_error();
  client->bye();
  EXPECT_FALSE(std::filesystem::exists(
      store::session_journal_path(record_path("legacy"))));
  expect_byte_identical("legacy");
}

TEST_F(ResumeLoopbackTest, NonResumableDisconnectStillDiscards) {
  // resumable is opt-in: a v2 session without the flag keeps the original
  // discard-on-disconnect contract.
  start_server();
  {
    auto client = dial("ephemeral", /*resumable=*/false);
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(put_batches(*client, 0, 2)) << client->last_error();
  }
  ASSERT_TRUE(wait_for(
      [](const Server::Stats& s) { return s.sessions_aborted >= 1; }));
  EXPECT_FALSE(std::filesystem::exists(record_path("ephemeral")));
  EXPECT_EQ(server_->stats().sessions_parked, 0u);
}

TEST_F(ResumeLoopbackTest, UnjournaledPartialDiscardedAtStartup) {
  // A container with no sidecar journal (a pre-resume crash leftover)
  // must be swept on start(), not resurrected.
  const auto tenant_dir = dir_ / "root" / kTenant;
  std::filesystem::create_directories(tenant_dir);
  {
    std::ofstream out(tenant_dir / "orphan.cdcc", std::ios::binary);
    out << "CDCCnotasealedcontainer";
  }
  start_server();
  EXPECT_TRUE(wait_for(
      [](const Server::Stats& s) { return s.partials_discarded >= 1; }));
  EXPECT_FALSE(std::filesystem::exists(tenant_dir / "orphan.cdcc"));
}

}  // namespace
}  // namespace cdc::net
