// Loopback tests for the record/replay server: the full per-connection
// state machine (auth, quotas, ingest, seal, replay, inspect) plus the
// failure paths — bad tokens, bad versions, hostile record names, garbage
// bytes, oversized frames, mid-stream disconnects — and the backpressure
// seam (slow-reader suspension under a throttled session worker).
#include "net/server.h"

#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "net/client.h"
#include "net/load_gen.h"
#include "store/container_reader.h"
#include "support/binary.h"

namespace cdc::net {
namespace {

constexpr const char* kToken = "test-token";
constexpr const char* kTenant = "acme";

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Converts deterministic synth jobs to the wire representation.
std::vector<WireFrame> wire_frames(const std::vector<SynthJob>& jobs) {
  std::vector<WireFrame> frames;
  frames.reserve(jobs.size());
  for (const SynthJob& sj : jobs) {
    WireFrame frame;
    frame.key = sj.key;
    frame.codec = sj.job.codec;
    frame.meta = sj.job.meta;
    frame.compress = sj.job.compress;
    frame.epoch = sj.job.epoch;
    frame.payload = sj.job.payload;
    frames.push_back(std::move(frame));
  }
  return frames;
}

class ServerLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cdc_server_test." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    server_.reset();
    // Set CDC_TEST_KEEP_SCRATCH to inspect server-side containers after
    // a failing run.
    if (::getenv("CDC_TEST_KEEP_SCRATCH") == nullptr)
      std::filesystem::remove_all(dir_);
  }

  /// Starts a server rooted in the scratch dir with one tenant.
  void start_server(ServerConfig config = {}) {
    config.root_dir = (dir_ / "root").string();
    if (config.tenants.empty()) {
      TenantConfig tenant;
      tenant.name = kTenant;
      tenant.token = kToken;
      config.tenants.push_back(tenant);
    }
    server_ = std::make_unique<Server>(std::move(config));
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<Client> dial(const std::string& record,
                               Intent intent = Intent::kIngest,
                               std::string* error_out = nullptr,
                               const std::string& token = kToken) {
    Client::Options options;
    options.port = server_->port();
    options.token = token;
    options.record = record;
    options.intent = intent;
    options.level = compress::DeflateLevel::kFast;
    std::string error;
    auto client = Client::connect(options, &error);
    if (error_out != nullptr) *error_out = error;
    return client;
  }

  [[nodiscard]] std::string record_path(const std::string& record) const {
    return (dir_ / "root" / kTenant / (record + ".cdcc")).string();
  }

  /// Uploads the deterministic synth workload and seals it.
  void upload_record(const std::string& record, std::uint64_t seed,
                     const SynthShape& shape) {
    auto client = dial(record);
    ASSERT_NE(client, nullptr);
    const auto jobs =
        synth_jobs(seed, shape, compress::DeflateLevel::kFast);
    ASSERT_TRUE(client->put(wire_frames(jobs))) << client->last_error();
    Sealed sealed;
    ASSERT_TRUE(client->seal(&sealed)) << client->last_error();
    EXPECT_GT(sealed.frames, 0u);
    client->bye();
  }

  /// Polls server stats until `pred` holds or ~2s elapse.
  template <typename Pred>
  [[nodiscard]] bool wait_for(Pred pred) {
    for (int i = 0; i < 200; ++i) {
      if (pred(server_->stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred(server_->stats());
  }

  std::filesystem::path dir_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerLoopbackTest, IngestSealByteIdenticalAcrossSinkModes) {
  // The oracle of the whole service: for every sink stack, the container
  // the server seals equals byte-for-byte the container the same jobs
  // write through a local InlineFrameSink.
  SynthShape shape;
  shape.batches = 4;
  shape.frames_per_batch = 8;
  for (const SinkMode mode :
       {SinkMode::kInline, SinkMode::kService, SinkMode::kRetrying}) {
    server_.reset();
    ServerConfig config;
    config.sink_mode = mode;
    start_server(std::move(config));
    const std::string record =
        "rec-" + std::to_string(static_cast<int>(mode));
    upload_record(record, 7, shape);

    const auto jobs = synth_jobs(7, shape, compress::DeflateLevel::kFast);
    const std::string local =
        (dir_ / ("local-" + record + ".cdcc")).string();
    std::string error;
    ASSERT_TRUE(write_synth_container(local, jobs, &error)) << error;
    const auto served = file_bytes(record_path(record));
    ASSERT_FALSE(served.empty());
    EXPECT_EQ(served, file_bytes(local))
        << "sink mode " << static_cast<int>(mode);

    const auto reader = store::ContainerReader::open(record_path(record));
    ASSERT_NE(reader, nullptr);
    EXPECT_TRUE(reader->index_ok());
    EXPECT_TRUE(reader->verify().ok);
  }
}

TEST_F(ServerLoopbackTest, BadTokenRejected) {
  start_server();
  std::string error;
  auto client = dial("rec", Intent::kIngest, &error, "wrong-token");
  EXPECT_EQ(client, nullptr);
  EXPECT_NE(error.find("token"), std::string::npos) << error;
  EXPECT_TRUE(wait_for(
      [](const Server::Stats& s) { return s.errors_sent >= 1; }));
}

TEST_F(ServerLoopbackTest, BadVersionRejected) {
  start_server();
  // Handcraft a HELLO announcing protocol version 99 over a raw socket —
  // the Client always speaks the current version, so go underneath it.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)), 0);

  support::ByteWriter body;
  body.sized_bytes({reinterpret_cast<const std::uint8_t*>(kToken),
                    std::string_view(kToken).size()});
  const std::string_view record = "rec";
  body.sized_bytes({reinterpret_cast<const std::uint8_t*>(record.data()),
                    record.size()});
  body.u8(static_cast<std::uint8_t>(Intent::kIngest));
  body.u8(static_cast<std::uint8_t>(compress::DeflateLevel::kFast));
  const auto wire = encode_message(MsgType::kHello, /*meta=*/99,
                                   body.view());
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));

  WireParser parser;
  Message msg;
  bool got = false;
  for (int i = 0; i < 100 && !got; ++i) {
    std::uint8_t buf[512];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    parser.feed({buf, static_cast<std::size_t>(n)});
    got = parser.next(&msg) == WireParser::Status::kMessage;
  }
  ::close(fd);
  ASSERT_TRUE(got);
  ASSERT_EQ(msg.type, MsgType::kError);
  EXPECT_EQ(static_cast<ErrCode>(msg.meta), ErrCode::kBadVersion);
}

TEST_F(ServerLoopbackTest, HostileRecordNamesRejected) {
  start_server();
  for (const char* name :
       {"", "../evil", "a/b", ".hidden", "bad name",
        "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"
        "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"
        "xx"}) {
    std::string error;
    EXPECT_EQ(dial(name, Intent::kIngest, &error), nullptr) << name;
  }
  // Nothing escaped the tenant directory (or was created at all — the
  // tenant dir itself only appears on the first accepted HELLO).
  EXPECT_FALSE(std::filesystem::exists(dir_ / "root" / "evil.cdcc"));
  const auto tenant_dir = dir_ / "root" / kTenant;
  EXPECT_TRUE(!std::filesystem::exists(tenant_dir) ||
              std::filesystem::is_empty(tenant_dir));
}

TEST_F(ServerLoopbackTest, DuplicateRecordNameRejected) {
  start_server();
  SynthShape shape;
  shape.batches = 1;
  upload_record("dup", 3, shape);
  std::string error;
  EXPECT_EQ(dial("dup", Intent::kIngest, &error), nullptr);
  EXPECT_NE(error.find("exists"), std::string::npos) << error;
}

TEST_F(ServerLoopbackTest, ByteQuotaExhaustionAbortsRecord) {
  ServerConfig config;
  TenantConfig tenant;
  tenant.name = kTenant;
  tenant.token = kToken;
  tenant.max_bytes = 16 << 10;  // far below the workload's raw bytes
  config.tenants.push_back(tenant);
  start_server(std::move(config));

  auto client = dial("big");
  ASSERT_NE(client, nullptr);
  SynthShape shape;
  shape.batches = 8;
  shape.frames_per_batch = 16;
  shape.payload_bytes = 4096;
  const auto jobs = synth_jobs(11, shape, compress::DeflateLevel::kFast);
  // Either the put or the seal must surface the quota error.
  bool failed = !client->put(wire_frames(jobs));
  if (!failed) failed = !client->seal();
  ASSERT_TRUE(failed);
  EXPECT_EQ(client->last_code(), ErrCode::kQuota) << client->last_error();
  client.reset();
  // The partial record was discarded: quota failures don't leave debris.
  EXPECT_TRUE(wait_for(
      [](const Server::Stats& s) { return s.sessions_aborted >= 1; }));
  EXPECT_FALSE(std::filesystem::exists(record_path("big")));
}

TEST_F(ServerLoopbackTest, RecordCountQuotaRejectsHello) {
  ServerConfig config;
  TenantConfig tenant;
  tenant.name = kTenant;
  tenant.token = kToken;
  tenant.max_records = 1;
  config.tenants.push_back(tenant);
  start_server(std::move(config));
  SynthShape shape;
  shape.batches = 1;
  upload_record("only", 5, shape);
  std::string error;
  EXPECT_EQ(dial("second", Intent::kIngest, &error), nullptr);
  EXPECT_EQ(dial("second", Intent::kIngest, &error), nullptr);
  EXPECT_NE(error.find("quota"), std::string::npos) << error;
}

TEST_F(ServerLoopbackTest, PutAfterSealRejected) {
  start_server();
  auto client = dial("sealed-rec");
  ASSERT_NE(client, nullptr);
  SynthShape shape;
  shape.batches = 1;
  const auto jobs = synth_jobs(9, shape, compress::DeflateLevel::kFast);
  ASSERT_TRUE(client->put(wire_frames(jobs)));
  ASSERT_TRUE(client->seal());
  // The offending put may succeed locally (it rides inside the ack
  // window); the server's ERROR surfaces on the next read.
  if (client->put(wire_frames(jobs))) {
    std::string json;
    EXPECT_FALSE(client->inspect(InspectKind::kVerify, &json));
  }
  EXPECT_TRUE(client->failed());
  EXPECT_NE(client->last_error().find("after SEAL"), std::string::npos)
      << client->last_error();
}

TEST_F(ServerLoopbackTest, GarbageBytesGetErrorAndAbort) {
  start_server();
  auto client = dial("garbled");
  ASSERT_NE(client, nullptr);
  std::vector<std::uint8_t> noise(64, 0x00);  // 0x00 != frame magic
  ASSERT_TRUE(client->send_raw(noise));
  // The next protocol exchange surfaces the server's ERROR.
  EXPECT_FALSE(client->seal());
  client.reset();
  EXPECT_TRUE(wait_for([](const Server::Stats& s) {
    return s.errors_sent >= 1 && s.sessions_aborted >= 1;
  }));
  EXPECT_FALSE(std::filesystem::exists(record_path("garbled")));
}

TEST_F(ServerLoopbackTest, OversizedFrameRejected) {
  ServerConfig config;
  config.limits.max_frame_bytes = 1 << 10;
  start_server(std::move(config));
  auto client = dial("fat");
  ASSERT_NE(client, nullptr);
  WireFrame frame;
  frame.key = runtime::StreamKey{0, 1};
  frame.codec = 0x01;
  frame.compress = false;
  frame.payload.assign((1 << 10) + 1, 0xAB);
  bool failed = !client->put({frame});
  if (!failed) failed = !client->seal();
  EXPECT_TRUE(failed);
  EXPECT_EQ(client->last_code(), ErrCode::kOversized)
      << client->last_error();
  client.reset();
  EXPECT_TRUE(wait_for(
      [](const Server::Stats& s) { return s.sessions_aborted >= 1; }));
  EXPECT_FALSE(std::filesystem::exists(record_path("fat")));
}

TEST_F(ServerLoopbackTest, DisconnectMidIngestDiscardsPartialRecord) {
  start_server();
  {
    auto client = dial("vanishing");
    ASSERT_NE(client, nullptr);
    SynthShape shape;
    shape.batches = 2;
    const auto jobs = synth_jobs(13, shape, compress::DeflateLevel::kFast);
    ASSERT_TRUE(client->put(wire_frames(jobs)));
    // Drop the connection without sealing.
  }
  EXPECT_TRUE(wait_for(
      [](const Server::Stats& s) { return s.sessions_aborted >= 1; }));
  EXPECT_FALSE(std::filesystem::exists(record_path("vanishing")));
  EXPECT_FALSE(
      std::filesystem::exists(record_path("vanishing") + ".cdcq"));
}

TEST_F(ServerLoopbackTest, BackpressureSuspendsSlowConsumerSessions) {
  // A one-batch queue plus a throttled session worker forces the event
  // thread to park batches and stop reading the socket; the record must
  // still arrive intact (and byte-identical) out the other side.
  ServerConfig config;
  config.ingest_queue_batches = 1;
  config.ingest_delay_us = 2000;
  start_server(std::move(config));

  auto client = dial("pressured");
  ASSERT_NE(client, nullptr);
  SynthShape shape;
  shape.batches = 1;
  shape.frames_per_batch = 4;
  shape.payload_bytes = 512;
  const auto jobs = synth_jobs(17, shape, compress::DeflateLevel::kFast);
  // Many small batches, pushed faster than the worker drains.
  for (int i = 0; i < 32; ++i)
    ASSERT_TRUE(client->put(wire_frames(jobs))) << client->last_error();
  ASSERT_TRUE(client->seal()) << client->last_error();
  client->bye();

  const Server::Stats stats = server_->stats();
  EXPECT_GT(stats.backpressure_suspensions, 0u);
  EXPECT_EQ(stats.sessions_sealed, 1u);

  // Oracle: the same 32× workload written locally.
  std::vector<SynthJob> all;
  for (int i = 0; i < 32; ++i)
    all.insert(all.end(), jobs.begin(), jobs.end());
  const std::string local = (dir_ / "local-pressured.cdcc").string();
  std::string error;
  ASSERT_TRUE(write_synth_container(local, all, &error)) << error;
  EXPECT_EQ(file_bytes(record_path("pressured")), file_bytes(local));
}

TEST_F(ServerLoopbackTest, ReplayRequiresSealedRecord) {
  start_server();
  std::string error;
  EXPECT_EQ(dial("missing", Intent::kReplay, &error), nullptr);
  EXPECT_NE(error.find("record"), std::string::npos) << error;
}

TEST_F(ServerLoopbackTest, ReplayWindowValidatesRange) {
  start_server();
  SynthShape shape;
  shape.batches = 2;
  upload_record("windowed", 21, shape);
  auto client = dial("windowed", Intent::kReplay);
  ASSERT_NE(client, nullptr);
  std::vector<WindowStream> streams;
  WindowDone done;
  // lo >= hi is an operator error, same contract as record_inspector.
  EXPECT_FALSE(client->replay_window(6, 4, &streams, &done));
  EXPECT_EQ(client->last_code(), ErrCode::kBadMessage);
}

TEST_F(ServerLoopbackTest, StatsAddUp) {
  start_server();
  SynthShape shape;
  shape.batches = 2;
  shape.frames_per_batch = 4;
  upload_record("counted", 23, shape);
  EXPECT_TRUE(wait_for([](const Server::Stats& s) {
    return s.connections_closed >= 1;
  }));
  const Server::Stats stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_sealed, 1u);
  EXPECT_EQ(stats.sessions_aborted, 0u);
  EXPECT_EQ(stats.frames_ingested, 8u);
  EXPECT_EQ(stats.errors_sent, 0u);
}

}  // namespace
}  // namespace cdc::net
