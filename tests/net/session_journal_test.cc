// The session-journal durability contract (DESIGN.md §14): the reader
// must take the longest valid prefix of whatever bytes survive a crash,
// and a surviving prefix must never promise more progress than an entry
// that was fully written and fsync'd. The truncation sweep is the core:
// for EVERY byte length of a complete journal, the recovered state must
// equal the state after some whole number of appended batches — a torn
// tail can lose acked work back below the durability line, but can never
// invent it.
#include "store/session_journal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

namespace cdc::store {
namespace {

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// The per-batch inputs of one append_batch call, so tests can replay the
/// same sequence and record the expected state after each prefix.
struct BatchFixture {
  std::uint64_t seq = 0;
  std::vector<ResumeFrameMeta> metas;
  std::uint64_t frames_total = 0;
  std::uint64_t raw_bytes_total = 0;
  std::uint64_t container_bytes = 0;
};

std::vector<BatchFixture> fixture_batches() {
  std::vector<BatchFixture> batches;
  std::uint64_t frames = 0;
  std::uint64_t raw = 0;
  std::uint64_t container = 8;  // header
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    BatchFixture b;
    b.seq = seq;
    for (std::uint64_t f = 0; f < 2 + seq; ++f) {
      ResumeFrameMeta meta;
      meta.has_epoch = (f % 2) == 0;
      meta.epoch.matched = 10 * seq + f;
      meta.epoch.unmatched = f;
      b.metas.push_back(meta);
    }
    frames += b.metas.size();
    raw += 100 * seq;
    container += 50 * seq + 7;
    b.frames_total = frames;
    b.raw_bytes_total = raw;
    b.container_bytes = container;
    batches.push_back(std::move(b));
  }
  return batches;
}

class SessionJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cdc_journal_test." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "rec.cdcc.cdcj").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes the fixture journal, capturing the file length after the
  /// header and after each entry (the valid-prefix boundaries).
  void write_fixture(std::vector<std::uint64_t>* boundaries) {
    auto journal = SessionJournal::create(path_, "acme", "rec", 2);
    ASSERT_NE(journal, nullptr);
    boundaries->push_back(std::filesystem::file_size(path_));
    for (const BatchFixture& b : fixture_batches()) {
      ASSERT_TRUE(journal->append_batch(b.seq, b.metas, b.frames_total,
                                        b.raw_bytes_total,
                                        b.container_bytes));
      boundaries->push_back(std::filesystem::file_size(path_));
    }
  }

  /// Asserts `state` equals the fixture state after `entries` batches.
  void expect_state(const JournalState& state, std::uint64_t entries) {
    const auto batches = fixture_batches();
    ASSERT_LE(entries, batches.size());
    EXPECT_EQ(state.tenant, "acme");
    EXPECT_EQ(state.record, "rec");
    EXPECT_EQ(state.level, 2);
    EXPECT_EQ(state.entries, entries);
    if (entries == 0) {
      EXPECT_EQ(state.last_seq, 0u);
      EXPECT_EQ(state.frames_total, 0u);
      EXPECT_EQ(state.raw_bytes_total, 0u);
      EXPECT_TRUE(state.metas.empty());
      return;
    }
    const BatchFixture& last = batches[entries - 1];
    EXPECT_EQ(state.last_seq, last.seq);
    EXPECT_EQ(state.frames_total, last.frames_total);
    EXPECT_EQ(state.raw_bytes_total, last.raw_bytes_total);
    EXPECT_EQ(state.container_bytes, last.container_bytes);
    std::vector<ResumeFrameMeta> expected;
    for (std::uint64_t i = 0; i < entries; ++i)
      expected.insert(expected.end(), batches[i].metas.begin(),
                      batches[i].metas.end());
    ASSERT_EQ(state.metas.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(state.metas[i].has_epoch, expected[i].has_epoch) << i;
      if (expected[i].has_epoch) {
        EXPECT_EQ(state.metas[i].epoch.matched, expected[i].epoch.matched);
        EXPECT_EQ(state.metas[i].epoch.unmatched,
                  expected[i].epoch.unmatched);
      }
    }
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(SessionJournalTest, RoundTrip) {
  std::vector<std::uint64_t> boundaries;
  write_fixture(&boundaries);
  const auto state = read_session_journal(path_);
  ASSERT_TRUE(state.has_value());
  expect_state(*state, 3);
}

TEST_F(SessionJournalTest, EmptyJournalIsValidZeroProgress) {
  auto journal = SessionJournal::create(path_, "acme", "rec", 2);
  ASSERT_NE(journal, nullptr);
  journal.reset();
  const auto state = read_session_journal(path_);
  ASSERT_TRUE(state.has_value());
  expect_state(*state, 0);
}

TEST_F(SessionJournalTest, MissingFileAndBadMagicAreNotJournals) {
  EXPECT_FALSE(read_session_journal(path_).has_value());
  write_bytes(path_, {'N', 'O', 'T', 'A', 'J', 'R', 'N', 'L'});
  EXPECT_FALSE(read_session_journal(path_).has_value());
  // A correct magic with a torn header is equally useless: nothing about
  // the session can be trusted.
  write_bytes(path_, {'C', 'D', 'C', 'J', 'R', 'N', 'L', '1'});
  EXPECT_FALSE(read_session_journal(path_).has_value());
}

TEST_F(SessionJournalTest, EveryByteTruncationNeverOverPromises) {
  // The crash model: the file system may persist any prefix of the bytes
  // we wrote. For every possible prefix length, recovery must yield
  // either "not a journal" (prefix inside the header) or exactly the
  // state after k complete batches for the largest k whose bytes fit.
  std::vector<std::uint64_t> boundaries;
  write_fixture(&boundaries);
  const std::vector<std::uint8_t> full = file_bytes(path_);
  ASSERT_EQ(full.size(), boundaries.back());

  const std::string trunc = (dir_ / "trunc.cdcj").string();
  for (std::size_t len = 0; len <= full.size(); ++len) {
    write_bytes(trunc, {full.begin(), full.begin() + len});
    const auto state = read_session_journal(trunc);
    if (len < boundaries[0]) {
      // Not even the header survived — the session is unrecoverable.
      EXPECT_FALSE(state.has_value()) << "len " << len;
      continue;
    }
    ASSERT_TRUE(state.has_value()) << "len " << len;
    std::uint64_t entries = 0;
    while (entries + 1 < boundaries.size() && boundaries[entries + 1] <= len)
      ++entries;
    expect_state(*state, entries);
  }
}

TEST_F(SessionJournalTest, CorruptedEntryDropsItselfAndItsSuccessors) {
  std::vector<std::uint64_t> boundaries;
  write_fixture(&boundaries);
  std::vector<std::uint8_t> bytes = file_bytes(path_);
  // Flip one byte inside entry 2's block: its CRC fails, so recovery must
  // stop at entry 1 — a bad block ends the trustworthy prefix even when
  // good-looking bytes follow it.
  const std::uint64_t entry2_at = boundaries[1];
  ASSERT_LT(entry2_at + 2, bytes.size());
  bytes[entry2_at + 2] ^= 0x40;
  write_bytes(path_, bytes);
  const auto state = read_session_journal(path_);
  ASSERT_TRUE(state.has_value());
  expect_state(*state, 1);
}

TEST_F(SessionJournalTest, OpenAppendContinuesWhereCreateLeftOff) {
  const auto batches = fixture_batches();
  {
    auto journal = SessionJournal::create(path_, "acme", "rec", 2);
    ASSERT_NE(journal, nullptr);
    ASSERT_TRUE(journal->append_batch(
        batches[0].seq, batches[0].metas, batches[0].frames_total,
        batches[0].raw_bytes_total, batches[0].container_bytes));
  }
  // The daemon restarted: the journal is validated, then reopened for
  // appends, and the next entries must parse as one continuous log.
  {
    auto journal = SessionJournal::open_append(path_);
    ASSERT_NE(journal, nullptr);
    for (std::size_t i = 1; i < batches.size(); ++i)
      ASSERT_TRUE(journal->append_batch(
          batches[i].seq, batches[i].metas, batches[i].frames_total,
          batches[i].raw_bytes_total, batches[i].container_bytes));
  }
  const auto state = read_session_journal(path_);
  ASSERT_TRUE(state.has_value());
  expect_state(*state, 3);
}

TEST_F(SessionJournalTest, SidecarPathIsDerivedFromContainerPath) {
  EXPECT_EQ(session_journal_path("/x/y/rec.cdcc"), "/x/y/rec.cdcc.cdcj");
}

}  // namespace
}  // namespace cdc::store
