#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"

namespace cdc::obs {
namespace {

TEST(JsonWriter, EmitsNestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "cdc");
  w.field("count", 3);
  w.field("ratio", 0.5);
  w.field("ok", true);
  w.key("list").begin_array().value(1).value(2).end_array();
  w.key("empty").begin_object().end_object();
  w.end_object();
  const std::string doc = std::move(w).take();
  EXPECT_TRUE(json_well_formed(doc)) << doc;
  EXPECT_NE(doc.find("\"name\": \"cdc\""), std::string::npos);
  EXPECT_NE(doc.find("\"list\": [") , std::string::npos);
  EXPECT_NE(doc.find("\"empty\": {}"), std::string::npos);
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  JsonWriter w;
  w.begin_object();
  w.field("k\"ey", "a\\b\n\tc\x01");
  w.end_object();
  const std::string doc = std::move(w).take();
  EXPECT_TRUE(json_well_formed(doc)) << doc;
  EXPECT_NE(doc.find("k\\\"ey"), std::string::npos);
  EXPECT_NE(doc.find("a\\\\b\\n\\tc\\u0001"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_object();
  w.field("inf", std::numeric_limits<double>::infinity());
  w.field("nan", std::numeric_limits<double>::quiet_NaN());
  w.end_object();
  const std::string doc = std::move(w).take();
  EXPECT_TRUE(json_well_formed(doc)) << doc;
  EXPECT_NE(doc.find("\"inf\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"nan\": null"), std::string::npos);
}

TEST(JsonWellFormed, AcceptsValidDocuments) {
  EXPECT_TRUE(json_well_formed("{}"));
  EXPECT_TRUE(json_well_formed("[]"));
  EXPECT_TRUE(json_well_formed("  [1, -2.5e3, \"x\", true, null]  "));
  EXPECT_TRUE(json_well_formed("{\"a\": {\"b\": [0.125, {}]}}"));
  EXPECT_TRUE(json_well_formed("\"\\u00e9\\n\""));
}

TEST(JsonWellFormed, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_well_formed(""));
  EXPECT_FALSE(json_well_formed("{"));
  EXPECT_FALSE(json_well_formed("{\"a\": }"));
  EXPECT_FALSE(json_well_formed("[1, 2,]"));
  EXPECT_FALSE(json_well_formed("{'a': 1}"));
  EXPECT_FALSE(json_well_formed("{\"a\": 1} trailing"));
  EXPECT_FALSE(json_well_formed("\"unterminated"));
  EXPECT_FALSE(json_well_formed("01"));
  EXPECT_FALSE(json_well_formed("{\"a\" 1}"));
}

TEST(JsonWellFormed, EnforcesDepthLimit) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(json_well_formed(deep));  // depth cap, not a crash
  std::string shallow = "[[[[[[[[[[0]]]]]]]]]]";
  EXPECT_TRUE(json_well_formed(shallow));
}

}  // namespace
}  // namespace cdc::obs
