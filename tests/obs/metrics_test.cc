#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace cdc::obs {
namespace {

// Recording is a deliberate no-op when the layer is compiled out
// (-DCDC_OBS=OFF); tests that assert on recorded values skip there.
#define SKIP_IF_OBS_COMPILED_OUT()                          \
  if (!compiled_in()) GTEST_SKIP() << "obs compiled out — " \
                                      "recording is a no-op"

TEST(Counter, MergesAcrossThreads) {
  SKIP_IF_OBS_COMPILED_OUT();
  Counter counter("test.counter.threads");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, RuntimeDisableStopsRecording) {
  SKIP_IF_OBS_COMPILED_OUT();
  Counter counter("test.counter.disable");
  counter.add(5);
  set_enabled(false);
  counter.add(100);
  set_enabled(true);
  counter.add(2);
  EXPECT_EQ(counter.value(), 7u);
}

TEST(Gauge, ConcurrentUpDownPairsCancel) {
  SKIP_IF_OBS_COMPILED_OUT();
  Gauge gauge("test.gauge");
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 5000; ++i) {
        gauge.add(3);
        gauge.sub(3);
      }
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), 0);
  gauge.add(-7);
  EXPECT_EQ(gauge.value(), -7);
}

TEST(Histogram, MergeIsExactForCountSumMinMax) {
  SKIP_IF_OBS_COMPILED_OUT();
  Histogram histogram("test.histogram.threads");
  constexpr int kThreads = 6;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&histogram, t] {
      for (std::uint64_t i = 1; i <= kPerThread; ++i)
        histogram.record(i + static_cast<std::uint64_t>(t));
    });
  for (auto& thread : threads) thread.join();

  const HistogramValue merged = histogram.merged();
  EXPECT_EQ(merged.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t)
    for (std::uint64_t i = 1; i <= kPerThread; ++i)
      expected_sum += i + static_cast<std::uint64_t>(t);
  EXPECT_EQ(merged.sum, expected_sum);
  EXPECT_EQ(merged.min, 1u);
  EXPECT_EQ(merged.max, kPerThread + kThreads - 1);

  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : merged.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, merged.count);
}

TEST(Histogram, QuantileIsBucketAccurate) {
  SKIP_IF_OBS_COMPILED_OUT();
  Histogram histogram("test.histogram.quantile");
  for (std::uint64_t v = 1; v <= 1024; ++v) histogram.record(v);
  const HistogramValue merged = histogram.merged();
  // Log2 buckets bound the error by 2x: the true p50 is 512.
  const double p50 = merged.quantile(0.50);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_LE(merged.quantile(0.0), merged.quantile(1.0));
  EXPECT_LE(merged.quantile(1.0), static_cast<double>(merged.max) * 2);
}

TEST(Histogram, BucketOfBoundaries) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
  for (std::size_t b = 1; b <= 64; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b)), b);
  }
}

TEST(Registry, HandlesAreStableAndSnapshotsSorted) {
  SKIP_IF_OBS_COMPILED_OUT();
  Registry& registry = Registry::global();
  Counter& a = registry.counter("test.registry.a");
  Counter& a_again = registry.counter("test.registry.a");
  EXPECT_EQ(&a, &a_again);
  a.add(3);
  registry.gauge("test.registry.g").add(-2);
  registry.histogram("test.registry.h").record(9);

  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_NE(snapshot.find_counter("test.registry.a"), nullptr);
  EXPECT_GE(snapshot.find_counter("test.registry.a")->value, 3u);
  ASSERT_NE(snapshot.find_gauge("test.registry.g"), nullptr);
  ASSERT_NE(snapshot.find_histogram("test.registry.h"), nullptr);
  EXPECT_EQ(snapshot.counter_or("test.registry.missing", 42), 42u);
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i)
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);

  registry.reset_values();
  EXPECT_EQ(registry.counter("test.registry.a").value(), 0u);
}

TEST(Stopwatch, MeasuresForwardTime) {
  SKIP_IF_OBS_COMPILED_OUT();
  const Stopwatch stopwatch;
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i)
    sink = sink + static_cast<std::uint64_t>(i);
  EXPECT_GT(stopwatch.ns(), 0u);
}

}  // namespace
}  // namespace cdc::obs
