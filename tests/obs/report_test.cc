#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "apps/mcb.h"
#include "minimpi/simulator.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "store/compression_service.h"
#include "store/container_store.h"
#include "tool/frame_sink.h"
#include "tool/options.h"
#include "tool/pipeline_inspect.h"
#include "tool/recorder.h"

namespace cdc::obs {
namespace {

// from_snapshot itself always works; what vanishes when the layer is
// compiled out (-DCDC_OBS=OFF) is the recording feeding it.
#define SKIP_IF_OBS_COMPILED_OUT()                          \
  if (!compiled_in()) GTEST_SKIP() << "obs compiled out — " \
                                      "recording is a no-op"

TEST(PipelineReport, FromSnapshotMapsMetricNames) {
  SKIP_IF_OBS_COMPILED_OUT();
  Registry& registry = Registry::global();
  registry.reset_values();
  set_enabled(true);
  registry.counter("record.stage.re.calls").add(3);
  registry.counter("record.stage.re.bytes_in").add(4000);
  registry.counter("record.stage.re.bytes_out").add(1800);
  registry.counter("record.stage.re.values").add(225);
  registry.counter("record.stage.deflate.bytes_out").add(600);
  registry.counter("record.events.matched").add(100);
  registry.counter("record.events.unmatched").add(7);
  registry.counter("record.chunks").add(3);
  registry.counter("record.frame.bytes_out").add(650);
  registry.counter("record.epoch.cut_found").add(2);
  registry.counter("record.epoch.cut_deferred").add(1);
  registry.histogram("record.epoch.flush_events").record(33);
  registry.counter("store.service.jobs").add(3);
  registry.counter("store.service.submit_stalls").add(1);
  registry.counter("record.stage.deflate.bytes_in").add(4096);
  registry.counter("record.stage.deflate.ns").add(2048);
  registry.counter("store.pool.hits").add(30);
  registry.counter("store.pool.misses").add(10);
  registry.counter("store.pool.recycled_bytes").add(7777);
  registry.counter("tool.async.enqueued").add(3);
  registry.counter("sim.messages_sent").add(55);
  registry.gauge("sim.virtual_time_us").add(2500000);
  registry.counter("store.container.frames").add(3);
  registry.counter("record.stage.inflate.calls").add(3);
  registry.counter("record.stage.inflate.bytes_in").add(600);
  registry.counter("record.stage.inflate.bytes_out").add(4096);
  registry.counter("record.stage.inflate.ns").add(1024);
  registry.counter("store.decode.jobs").add(3);
  registry.counter("store.decode.decoded_bytes").add(4096);
  registry.counter("store.decode.submit_stalls").add(2);
  registry.histogram("store.decode.queue_depth").record(5);
  registry.counter("store.container.epoch_streams").add(4);
  registry.counter("store.container.epoch_fallbacks").add(1);

  const PipelineReport report =
      PipelineReport::from_snapshot(registry.snapshot());
  EXPECT_EQ(report.stage_re.calls, 3u);
  EXPECT_EQ(report.stage_re.bytes_in, 4000u);
  EXPECT_EQ(report.stage_re.bytes_out, 1800u);
  EXPECT_EQ(report.stage_re.values_out, 225u);
  EXPECT_EQ(report.stage_deflate.bytes_out, 600u);
  EXPECT_EQ(report.events_matched, 100u);
  EXPECT_EQ(report.events_unmatched, 7u);
  EXPECT_EQ(report.chunks, 3u);
  EXPECT_EQ(report.frame_bytes_out, 650u);
  EXPECT_EQ(report.epoch_cuts, 2u);
  EXPECT_EQ(report.epoch_deferrals, 1u);
  EXPECT_EQ(report.epoch_flush_events.count, 1u);
  EXPECT_EQ(report.epoch_flush_events.max, 33u);
  EXPECT_EQ(report.service_jobs, 3u);
  EXPECT_EQ(report.service_submit_stalls, 1u);
  EXPECT_EQ(report.pool_hits, 30u);
  EXPECT_EQ(report.pool_misses, 10u);
  EXPECT_EQ(report.pool_recycled_bytes, 7777u);
  EXPECT_DOUBLE_EQ(report.pool_hit_rate(), 0.75);
  // 4096 bytes in 2048 ns = 2 bytes/ns = 2000 MB/s.
  EXPECT_DOUBLE_EQ(report.deflate_mb_per_s(), 2000.0);
  EXPECT_EQ(report.async_enqueued, 3u);
  EXPECT_EQ(report.sim_messages, 55u);
  EXPECT_DOUBLE_EQ(report.sim_virtual_seconds, 2.5);
  EXPECT_EQ(report.writer_frames, 3u);
  EXPECT_EQ(report.stage_inflate.calls, 3u);
  EXPECT_EQ(report.stage_inflate.bytes_in, 600u);
  EXPECT_EQ(report.stage_inflate.bytes_out, 4096u);
  // Measured on the raw side: 4096 bytes out in 1024 ns = 4000 MB/s.
  EXPECT_DOUBLE_EQ(report.inflate_mb_per_s(), 4000.0);
  EXPECT_EQ(report.decode_jobs, 3u);
  EXPECT_EQ(report.decode_bytes, 4096u);
  EXPECT_EQ(report.decode_submit_stalls, 2u);
  EXPECT_EQ(report.decode_queue_depth.count, 1u);
  EXPECT_EQ(report.epoch_streams, 4u);
  EXPECT_EQ(report.epoch_fallbacks, 1u);
  registry.reset_values();
}

TEST(PipelineReport, ReconcileAcceptsMatchingTotals) {
  PipelineReport report;
  report.chunks = 4;
  report.frame_bytes_out = 1000;
  report.stage_deflate.bytes_out = 900;
  report.container_frames = 4;
  report.container_stored_bytes = 1000;
  report.container_file_bytes = 1200;
  EXPECT_TRUE(report.reconcile());
  EXPECT_EQ(report.reconcile_note,
            "encoder and container byte totals match");
}

TEST(PipelineReport, ReconcileRejectsByteMismatch) {
  PipelineReport report;
  report.chunks = 4;
  report.frame_bytes_out = 1000;
  report.container_frames = 4;
  report.container_stored_bytes = 999;
  EXPECT_FALSE(report.reconcile());
  EXPECT_NE(report.reconcile_note.find("framed bytes"), std::string::npos);
}

TEST(PipelineReport, ReconcileRejectsFrameCountMismatch) {
  PipelineReport report;
  report.chunks = 5;
  report.frame_bytes_out = 1000;
  report.container_frames = 4;
  report.container_stored_bytes = 1000;
  EXPECT_FALSE(report.reconcile());
  EXPECT_NE(report.reconcile_note.find("chunks"), std::string::npos);
}

TEST(PipelineReport, ReconcileRejectsDeflateExceedingFramedBytes) {
  PipelineReport report;
  report.frame_bytes_out = 100;
  report.stage_deflate.bytes_out = 200;
  EXPECT_FALSE(report.reconcile());
}

TEST(PipelineReport, ReconcileSingleSourceIsInternalOnly) {
  PipelineReport container_only;
  container_only.container_frames = 9;
  container_only.container_stored_bytes = 512;
  container_only.container_file_bytes = 600;
  EXPECT_TRUE(container_only.reconcile());
  EXPECT_NE(container_only.reconcile_note.find("single-source"),
            std::string::npos);

  PipelineReport bad_container;
  bad_container.container_frames = 9;
  bad_container.container_stored_bytes = 700;
  bad_container.container_file_bytes = 600;  // frames can't exceed the file
  EXPECT_FALSE(bad_container.reconcile());
}

TEST(PipelineReport, ToJsonIsWellFormed) {
  PipelineReport report;
  report.chunks = 2;
  report.frame_bytes_out = 128;
  report.container_frames = 2;
  report.container_stored_bytes = 128;
  report.container_codec_frames["cdc"] = 2;
  report.reconcile();
  const std::string json = report.to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"report\": \"cdc_pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\"reconciliation\""), std::string::npos);
  EXPECT_NE(json.find("\"decode\""), std::string::npos);
  EXPECT_NE(json.find("\"inflate\""), std::string::npos);
}

/// The --stats invariant end to end: an instrumented record run through
/// the parallel compression service must produce live byte/chunk totals
/// that reconcile with what the container on disk actually holds.
TEST(PipelineReport, LiveRunReconcilesAgainstContainer) {
  SKIP_IF_OBS_COMPILED_OUT();
  // Other suites in this binary record into the shared global registry;
  // start this run from zero so the live section is only this run.
  Registry::global().reset_values();
  set_enabled(true);
  const std::string file = "/tmp/cdc_report_test.cdcc";
  {
    store::ContainerStore container(file);
    store::CompressionService::Config service_config;
    service_config.workers = 2;
    store::CompressionService service(&container, service_config);
    tool::AsyncFrameSink sink(&service);
    tool::ToolOptions options;
    options.chunk_target = 96;
    tool::Recorder recorder(4, &container, options, &sink);
    minimpi::Simulator::Config config;
    config.num_ranks = 4;
    config.noise_seed = 21;
    minimpi::Simulator sim(config, &recorder);
    apps::McbConfig mcb;
    mcb.grid_x = 2;
    mcb.grid_y = 2;
    mcb.particles_per_rank = 60;
    apps::run_mcb(sim, mcb);
    recorder.finalize();
    service.drain();
    container.seal();
  }

  PipelineReport report =
      PipelineReport::from_snapshot(Registry::global().snapshot());
  std::string error;
  ASSERT_TRUE(tool::fill_container_section(file, report, &error)) << error;

  EXPECT_TRUE(report.reconcile()) << report.reconcile_note;
  EXPECT_GT(report.events_matched, 0u);
  EXPECT_GT(report.chunks, 0u);
  EXPECT_EQ(report.chunks, report.container_frames);
  EXPECT_EQ(report.frame_bytes_out, report.container_stored_bytes);
  EXPECT_EQ(report.writer_payload_bytes, report.container_stored_bytes);
  EXPECT_TRUE(report.container_sealed);
  // The service saw every chunk the encoder sealed, and the async sink
  // drained everything it accepted.
  EXPECT_EQ(report.service_jobs, report.chunks);
  EXPECT_EQ(report.async_enqueued, report.async_dequeued);
  // Stage flow only shrinks: RE output feeds PE, PE feeds LP.
  EXPECT_LE(report.stage_pe.bytes_in, report.stage_re.bytes_out);
  EXPECT_LE(report.stage_lp.bytes_in, report.stage_pe.bytes_out);

  const std::string json = report.to_json();
  EXPECT_TRUE(json_well_formed(json));
  std::remove(file.c_str());
  Registry::global().reset_values();
}

}  // namespace
}  // namespace cdc::obs
