#include <gtest/gtest.h>

#include <string>

#include "apps/mcb.h"
#include "minimpi/simulator.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "runtime/storage.h"
#include "tool/options.h"
#include "tool/recorder.h"

namespace cdc::obs {
namespace {

// Emission goes through tracing(), which is a deliberate constant false
// when the layer is compiled out (-DCDC_OBS=OFF); tests that need live
// emitters skip there. Direct TraceBuffer methods still work.
#define SKIP_IF_OBS_COMPILED_OUT()                          \
  if (!compiled_in()) GTEST_SKIP() << "obs compiled out — " \
                                      "trace emission is a no-op"

/// Uninstalls the global sink even when an assertion fails mid-test, so a
/// later test never emits into a dead stack buffer.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { set_enabled(true); }
  void TearDown() override { install_trace(nullptr); }
};

TEST_F(TraceTest, RingOverwritesOldestWhenFull) {
  static const char* kNames[] = {"e0", "e1", "e2", "e3",
                                 "e4", "e5", "e6"};
  TraceBuffer ring(4);
  for (int i = 0; i < 7; ++i) {
    TraceEvent event;
    event.name = kNames[i];
    event.virt_us = static_cast<double>(i);
    ring.emit(event);
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 3u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: events 0-2 were overwritten.
  EXPECT_STREQ(events[0].name, "e3");
  EXPECT_STREQ(events[1].name, "e4");
  EXPECT_STREQ(events[2].name, "e5");
  EXPECT_STREQ(events[3].name, "e6");

  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST_F(TraceTest, EmittersAreInertWithoutASink) {
  SKIP_IF_OBS_COMPILED_OUT();
  install_trace(nullptr);
  EXPECT_FALSE(tracing());
  trace_instant("ignored", 0);  // must not crash
  { TraceSpan span("ignored_span", 1); }
  TraceBuffer ring(8);
  install_trace(&ring);
  EXPECT_TRUE(tracing());
  trace_instant("seen", 0);
  install_trace(nullptr);
  EXPECT_EQ(ring.size(), 1u);
}

TEST_F(TraceTest, SpanStampsDurationAndArg) {
  SKIP_IF_OBS_COMPILED_OUT();
  TraceBuffer ring(8);
  install_trace(&ring);
  {
    TraceSpan span("work", 3, "bytes", 0);
    span.set_arg(1234);
  }
  install_trace(nullptr);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].rank, 3);
  EXPECT_EQ(events[0].arg, 1234u);
  EXPECT_GE(events[0].dur_wall_us, 0.0);
}

/// One instrumented single-threaded record run (inline sink — no worker
/// threads, so event order is the simulator's deterministic order).
std::string traced_record_run(std::uint64_t seed) {
  TraceBuffer ring(1 << 14);
  install_trace(&ring);
  runtime::CountingStore store;
  tool::ToolOptions options;
  options.chunk_target = 64;
  tool::Recorder recorder(4, &store, options);
  minimpi::Simulator::Config config;
  config.num_ranks = 4;
  config.noise_seed = seed;
  minimpi::Simulator sim(config, &recorder);
  apps::McbConfig mcb;
  mcb.grid_x = 2;
  mcb.grid_y = 2;
  mcb.particles_per_rank = 40;
  apps::run_mcb(sim, mcb);
  recorder.finalize();
  install_trace(nullptr);
  EXPECT_GT(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  // Virtual-time axis only: wall timestamps differ run to run, virtual
  // ones may not (fixed seed => fixed schedule).
  return ring.export_chrome_json(
      {.virtual_time = true, .include_args = false});
}

TEST_F(TraceTest, VirtualTimeExportIsDeterministicForFixedSeed) {
  SKIP_IF_OBS_COMPILED_OUT();
  const std::string first = traced_record_run(11);
  const std::string second = traced_record_run(11);
  EXPECT_TRUE(json_well_formed(first));
  EXPECT_EQ(first, second);
  const std::string other_seed = traced_record_run(12);
  EXPECT_NE(first, other_seed);  // the trace reflects the schedule
}

TEST_F(TraceTest, ChromeExportMatchesGolden) {
  TraceBuffer ring(4);
  TraceEvent instant;
  instant.name = "recv.deliver";
  instant.phase = 'i';
  instant.rank = 2;
  instant.tid = 7;
  instant.wall_us = 1.5;
  instant.virt_us = 2.5;
  ring.emit(instant);
  TraceEvent span;
  span.name = "record.flush";
  span.phase = 'X';
  span.rank = 0;
  span.tid = 0;
  span.wall_us = 10.0;
  span.virt_us = 20.0;
  span.dur_wall_us = 4.0;
  span.dur_virt_us = 8.0;
  ring.emit(span);

  const std::string json = ring.export_chrome_json(
      {.virtual_time = true, .include_args = false});
  EXPECT_TRUE(json_well_formed(json));
  const std::string golden =
      "{\n"
      "  \"displayTimeUnit\": \"ms\",\n"
      "  \"traceEvents\": [\n"
      "    {\n"
      "      \"name\": \"recv.deliver\",\n"
      "      \"ph\": \"i\",\n"
      "      \"pid\": 2,\n"
      "      \"tid\": 7,\n"
      "      \"ts\": 2.5\n"
      "    },\n"
      "    {\n"
      "      \"name\": \"record.flush\",\n"
      "      \"ph\": \"X\",\n"
      "      \"pid\": 0,\n"
      "      \"tid\": 0,\n"
      "      \"ts\": 20,\n"
      "      \"dur\": 8\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(json, golden);
}

}  // namespace
}  // namespace cdc::obs
