#include "record/baseline.h"

#include <gtest/gtest.h>

#include "figure4.h"

namespace cdc::record {
namespace {

TEST(Baseline, RowIs162Bits) {
  EXPECT_EQ(kBaselineBitsPerRow, 162u);
  // "162 bits in total" — §6.1.
  EXPECT_EQ(baseline_size_bytes(1), 21u);  // ceil(162 / 8)
}

TEST(Baseline, SizeMatchesPaperAccounting) {
  // §6.1: 9.7M events at 162 bits ≈ 197.0 MB. Rows here ≈ events because
  // matched events dominate and each is one row.
  const double bytes = static_cast<double>(baseline_size_bytes(9'700'000));
  EXPECT_NEAR(bytes / 1e6, 196.4, 1.0);
}

TEST(Baseline, SerializeParsesBack) {
  const auto rows = to_rows(testing::figure4_events());
  const auto bytes = baseline_serialize(rows);
  EXPECT_EQ(bytes.size(), baseline_size_bytes(rows.size()));
  const auto parsed = baseline_parse(bytes, rows.size());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, rows);
}

TEST(Baseline, ParseRejectsTruncation) {
  const auto rows = to_rows(testing::figure4_events());
  auto bytes = baseline_serialize(rows);
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(baseline_parse(bytes, rows.size()).has_value());
}

TEST(Baseline, LargeCountsSurvive) {
  std::vector<EventRow> rows = {
      {0xFFFFFFFFFFull, {false, false, -1, 0}},
      {1, {true, true, 0x7FFFFFFF, 0xFFFFFFFFFFFFFFFFull}},
  };
  const auto parsed =
      baseline_parse(baseline_serialize(rows), rows.size());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, rows);
}

TEST(Baseline, EmptyStream) {
  EXPECT_TRUE(baseline_serialize({}).empty());
  const auto parsed = baseline_parse({}, 0);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

}  // namespace
}  // namespace cdc::record
