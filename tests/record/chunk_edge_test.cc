// Edge cases of the CDC chunk format: sender-column bit widths, clock
// ties, degenerate chunks.
#include <gtest/gtest.h>

#include "record/chunk.h"
#include "support/rng.h"

namespace cdc::record {
namespace {

CdcChunk roundtrip(const CdcChunk& chunk) {
  support::ByteWriter writer;
  write_chunk(writer, chunk);
  support::ByteReader reader(writer.view());
  const auto parsed = read_chunk(reader);
  EXPECT_TRUE(parsed.has_value());
  EXPECT_TRUE(reader.exhausted());
  return parsed.value_or(CdcChunk{});
}

TEST(ChunkEdge, SingleSenderColumnCostsZeroBits) {
  // One sender: the sender column packs to zero bits per entry.
  std::vector<ReceiveEvent> events;
  for (std::uint64_t c = 1; c <= 100; ++c)
    events.push_back({true, false, 5, c});
  const auto tables = build_tables(events);
  const auto chunk = encode_chunk(tables);
  ASSERT_EQ(chunk.epoch.size(), 1u);

  support::ByteWriter with_senders;
  write_chunk(with_senders, chunk);
  // 100 events, no moves, no with_next, no unmatched: the serialized
  // chunk is tiny — senders must not cost ~1 byte each.
  EXPECT_LT(with_senders.size(), 32u);
  EXPECT_EQ(roundtrip(chunk), chunk);
}

TEST(ChunkEdge, ManySendersUseWiderCodes) {
  // 300 senders force a 9-bit packed column; round-trip must hold.
  std::vector<ReceiveEvent> events;
  std::uint64_t clk = 1;
  for (int s = 0; s < 300; ++s)
    for (int k = 0; k < 3; ++k)
      events.push_back({true, false, s, clk += 1 + (s * k) % 5});
  const auto chunk = encode_chunk(build_tables(events));
  EXPECT_EQ(chunk.epoch.size(), 300u);
  EXPECT_EQ(roundtrip(chunk), chunk);
}

TEST(ChunkEdge, ClockTiesAcrossSendersBreakByRank) {
  // Several senders share clock values: Definition 6 tie-breaks by rank.
  std::vector<ReceiveEvent> events = {
      {true, false, 2, 10}, {true, false, 0, 10}, {true, false, 1, 10},
  };
  const auto tables = build_tables(events);
  const auto chunk = encode_chunk(tables);
  EXPECT_EQ(chunk.ref_senders, (std::vector<std::int32_t>{0, 1, 2}));
  const auto decoded =
      decode_chunk(roundtrip(chunk), reference_order(tables.matched));
  EXPECT_EQ(decoded, tables);
}

TEST(ChunkEdge, UnmatchedOnlyChunk) {
  std::vector<ReceiveEvent> events(7, ReceiveEvent{false, false, -1, 0});
  const auto chunk = encode_chunk(build_tables(events));
  EXPECT_EQ(chunk.num_matched, 0u);
  EXPECT_TRUE(chunk.epoch.empty());
  ASSERT_EQ(chunk.unmatched.size(), 1u);
  EXPECT_EQ(chunk.unmatched[0].count, 7u);
  EXPECT_EQ(roundtrip(chunk), chunk);
}

TEST(ChunkEdge, EmptyChunk) {
  const auto chunk = encode_chunk(build_tables({}));
  EXPECT_EQ(chunk.num_matched, 0u);
  EXPECT_EQ(roundtrip(chunk), chunk);
}

TEST(ChunkEdge, DenseWithNextUsesBitmap) {
  // Every event grouped with its successor except the last: the bitmap
  // representation must keep the chunk small.
  std::vector<ReceiveEvent> events;
  for (std::uint64_t c = 1; c <= 256; ++c)
    events.push_back({true, c < 256, 0, c});
  const auto chunk = encode_chunk(build_tables(events));
  EXPECT_EQ(chunk.with_next.size(), 255u);
  support::ByteWriter writer;
  write_chunk(writer, chunk);
  EXPECT_LT(writer.size(), 64u);  // 256/8 bitmap bytes + headers
  EXPECT_EQ(roundtrip(chunk), chunk);
}

TEST(ChunkEdge, SparseWithNextUsesIndices) {
  std::vector<ReceiveEvent> events;
  for (std::uint64_t c = 1; c <= 4096; ++c)
    events.push_back({true, c == 17, 0, c});
  const auto chunk = encode_chunk(build_tables(events));
  ASSERT_EQ(chunk.with_next.size(), 1u);
  support::ByteWriter writer;
  write_chunk(writer, chunk);
  EXPECT_LT(writer.size(), 64u);  // no 512-byte bitmap for one mark
  EXPECT_EQ(roundtrip(chunk), chunk);
}

TEST(ChunkEdge, HugeClockValuesSurvive) {
  std::vector<ReceiveEvent> events = {
      {true, false, 0, 0xFFFFFFFFFFFFFFF0ull},
      {true, false, 1, 0xFFFFFFFFFFFFFFFFull},
  };
  const auto tables = build_tables(events);
  const auto chunk = encode_chunk(tables);
  const auto decoded =
      decode_chunk(roundtrip(chunk), reference_order(tables.matched));
  EXPECT_EQ(decoded, tables);
}

TEST(ChunkEdge, ValueCountExcludesSenderColumn) {
  // The paper-comparable accounting must not grow with N when the stream
  // is in reference order.
  std::vector<ReceiveEvent> events;
  for (std::uint64_t c = 1; c <= 1000; ++c)
    events.push_back({true, false, static_cast<std::int32_t>(c % 3), c});
  const auto chunk = encode_chunk(build_tables(events));
  EXPECT_TRUE(chunk.moves.empty());
  EXPECT_EQ(chunk.value_count(), 2 * chunk.epoch.size());
}

TEST(ChunkEdge, RandomFuzzedBytesNeverCrash) {
  support::Xoshiro256 rng(123);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.bounded(120));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.bounded(256));
    support::ByteReader reader(junk);
    (void)read_chunk(reader);  // must return nullopt or a chunk, not crash
  }
}

}  // namespace
}  // namespace cdc::record
