#include "record/chunk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "figure4.h"
#include "support/rng.h"

namespace cdc::record {
namespace {

TEST(CdcChunk, Figure8EpochLine) {
  const auto chunk = encode_chunk(build_tables(testing::figure4_events()));
  // Figure 8: per-sender maximum clock — (0,18), (1,19), (2,8).
  ASSERT_EQ(chunk.epoch.size(), 3u);
  EXPECT_EQ(chunk.epoch[0], (EpochEntry{0, 18}));
  EXPECT_EQ(chunk.epoch[1], (EpochEntry{1, 19}));
  EXPECT_EQ(chunk.epoch[2], (EpochEntry{2, 8}));
}

TEST(CdcChunk, Figure8ValueAccountingIs19) {
  // "we can reduce the number of storing values from 55 to 19".
  const auto chunk = encode_chunk(build_tables(testing::figure4_events()));
  EXPECT_EQ(chunk.value_count(), 19u);
}

TEST(CdcChunk, ThreeMovesForTheWorkedExample) {
  const auto chunk = encode_chunk(build_tables(testing::figure4_events()));
  EXPECT_EQ(chunk.num_matched, 8u);
  EXPECT_EQ(chunk.moves.size(), 3u);
  EXPECT_EQ(chunk.with_next, (std::vector<std::uint64_t>{1}));
  ASSERT_EQ(chunk.unmatched.size(), 3u);
  EXPECT_EQ(chunk.unmatched[0], (UnmatchedRun{1, 2}));
}

TEST(CdcChunk, DecodeRoundTripsTheWorkedExample) {
  const auto events = testing::figure4_events();
  const auto tables = build_tables(events);
  const auto chunk = encode_chunk(tables);
  // Replay reconstructs the reference order from replayed clocks; tests
  // obtain it by sorting.
  const auto reference = reference_order(tables.matched);
  const auto decoded = decode_chunk(chunk, reference);
  EXPECT_EQ(decoded, tables);
  EXPECT_EQ(tables_to_events(decoded), events);
}

TEST(CdcChunk, ReferenceOrderSortsByClockThenSender) {
  const auto tables = build_tables(testing::figure4_events());
  const auto reference = reference_order(tables.matched);
  const std::vector<clock::MessageId> expected = {
      {0, 2}, {1, 8}, {2, 8}, {0, 13}, {0, 15}, {0, 17}, {0, 18}, {1, 19}};
  EXPECT_EQ(reference, expected);
}

TEST(CdcChunk, InReferenceOrderStreamNeedsNoMoves) {
  // "if a rank receives messages from senders with monotonically
  // increasing clock values, the recording size for the matched-test
  // table becomes zero."
  std::vector<ReceiveEvent> events;
  for (std::uint64_t c = 1; c <= 50; ++c)
    events.push_back({true, false, static_cast<std::int32_t>(c % 3), c * 2});
  const auto chunk = encode_chunk(build_tables(events));
  EXPECT_TRUE(chunk.moves.empty());
}

TEST(CdcChunk, SerializationRoundTripWorkedExample) {
  const auto chunk = encode_chunk(build_tables(testing::figure4_events()));
  support::ByteWriter writer;
  write_chunk(writer, chunk);
  support::ByteReader reader(writer.view());
  const auto parsed = read_chunk(reader);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, chunk);
  EXPECT_TRUE(reader.exhausted());
}

TEST(CdcChunk, SerializationRejectsTruncation) {
  const auto chunk = encode_chunk(build_tables(testing::figure4_events()));
  support::ByteWriter writer;
  write_chunk(writer, chunk);
  const auto full = writer.view();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    support::ByteReader reader(full.subspan(0, cut));
    const auto parsed = read_chunk(reader);
    // Either parse failure, or a short-read chunk that differs — never
    // a crash. Most prefixes must fail outright.
    if (parsed.has_value()) {
      EXPECT_NE(*parsed, chunk);
    }
  }
}

TEST(CdcChunk, ReSerializationRoundTrip) {
  const auto tables = build_tables(testing::figure4_events());
  support::ByteWriter writer;
  write_tables_re(writer, tables);
  support::ByteReader reader(writer.view());
  const auto parsed = read_tables_re(reader);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, tables);
}

class ChunkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChunkProperty, RandomStreamsRoundTripThroughChunkAndBytes) {
  support::Xoshiro256 rng(GetParam());
  // Build a random but legal event stream: clocks strictly increase per
  // sender; observed order is a noisy interleave.
  const int senders = 1 + static_cast<int>(rng.bounded(6));
  std::vector<ReceiveEvent> events;
  std::vector<std::uint64_t> next_clock(static_cast<std::size_t>(senders), 1);
  const std::size_t n = 1 + rng.bounded(300);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.2) {
      events.push_back({false, false, -1, 0});
      continue;
    }
    const auto s = static_cast<std::int32_t>(rng.bounded(senders));
    auto& clk = next_clock[static_cast<std::size_t>(s)];
    clk += 1 + rng.bounded(5);
    events.push_back({true, rng.uniform() < 0.1, s, clk});
  }
  if (!events.empty() && events.back().flag) events.back().with_next = false;
  // with_next must not dangle: last matched event has it cleared.
  for (std::size_t i = events.size(); i-- > 0;) {
    if (events[i].flag) {
      events[i].with_next = false;
      break;
    }
  }

  const auto tables = build_tables(events);
  const auto chunk = encode_chunk(tables);

  support::ByteWriter writer;
  write_chunk(writer, chunk);
  support::ByteReader reader(writer.view());
  const auto parsed = read_chunk(reader);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, chunk);

  const auto decoded = decode_chunk(*parsed, reference_order(tables.matched));
  EXPECT_EQ(decoded, tables);
}

TEST_P(ChunkProperty, ValueCountNeverExceedsReTables) {
  // Full CDC stores at most as many values as redundancy elimination
  // whenever the stream is near reference order (moves ≪ N); for fully
  // reference-ordered streams it stores only epoch + unmatched + with_next.
  support::Xoshiro256 rng(GetParam() + 500);
  std::vector<ReceiveEvent> events;
  std::uint64_t clk = 0;
  for (int i = 0; i < 200; ++i) {
    clk += 1 + rng.bounded(3);
    events.push_back({true, false, static_cast<std::int32_t>(rng.bounded(4)),
                      clk});
  }
  const auto tables = build_tables(events);
  const auto chunk = encode_chunk(tables);
  EXPECT_LE(chunk.value_count(), tables.value_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkProperty,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108, 109, 110));

}  // namespace
}  // namespace cdc::record
