#include "record/edit_distance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "support/rng.h"

namespace cdc::record {
namespace {

std::vector<std::uint32_t> identity(std::size_t n) {
  std::vector<std::uint32_t> v(n);
  std::iota(v.begin(), v.end(), 0u);
  return v;
}

TEST(PaperExample, DecoderReproducesFigure7) {
  // Figure 7/8: ops {(1,+2),(2,+1),(7,−2)} turn the identity into
  // B = {0,3,2,1,4,7,5,6}.
  const std::vector<MoveOp> ops = {{1, +2}, {2, +1}, {7, -2}};
  const std::vector<std::uint32_t> expected = {0, 3, 2, 1, 4, 7, 5, 6};
  EXPECT_EQ(apply_moves(8, ops), expected);
}

TEST(PaperExample, EncoderProducesMinimalOps) {
  const std::vector<std::uint32_t> b = {0, 3, 2, 1, 4, 7, 5, 6};
  const auto ops = encode_permutation(b);
  EXPECT_EQ(ops.size(), 3u);  // three moved messages, as in the paper
  EXPECT_EQ(apply_moves(b.size(), ops), b);
}

TEST(PaperExample, PermutationPercentageMatches) {
  // "the percentage becomes 37.5% (= 3/8) in the example of Figure 7".
  const std::vector<std::uint32_t> b = {0, 3, 2, 1, 4, 7, 5, 6};
  EXPECT_DOUBLE_EQ(permutation_percentage(b), 3.0 / 8.0);
}

TEST(PaperExample, EditDistanceIsSix) {
  // Figure 10's edit script has 3 deletions + 3 insertions.
  const std::vector<std::uint32_t> b = {0, 3, 2, 1, 4, 7, 5, 6};
  EXPECT_EQ(banded_edit_distance(b), 6u);
  EXPECT_EQ(dp_edit_distance(b), 6u);
}

TEST(EncodePermutation, IdentityNeedsNoOps) {
  const auto b = identity(100);
  EXPECT_TRUE(encode_permutation(b).empty());
  EXPECT_EQ(banded_edit_distance(b), 0u);
  EXPECT_DOUBLE_EQ(permutation_percentage(b), 0.0);
}

TEST(EncodePermutation, ReversalMovesAllButOne) {
  std::vector<std::uint32_t> b = identity(10);
  std::reverse(b.begin(), b.end());
  const auto ops = encode_permutation(b);
  EXPECT_EQ(ops.size(), 9u);  // LIS of a reversal is 1
  EXPECT_EQ(apply_moves(b.size(), ops), b);
}

TEST(EncodePermutation, SingleElement) {
  const std::vector<std::uint32_t> b = {0};
  EXPECT_TRUE(encode_permutation(b).empty());
  EXPECT_EQ(apply_moves(1, {}), b);
}

TEST(EncodePermutation, Empty) {
  EXPECT_TRUE(encode_permutation({}).empty());
  EXPECT_TRUE(apply_moves(0, {}).empty());
}

TEST(EncodePermutation, AdjacentSwap) {
  const std::vector<std::uint32_t> b = {1, 0, 2, 3};
  const auto ops = encode_permutation(b);
  EXPECT_EQ(ops.size(), 1u);
  EXPECT_EQ(apply_moves(4, ops), b);
}

TEST(Lis, MembershipMarksAnIncreasingSubsequence) {
  const std::vector<std::uint32_t> b = {2, 0, 1, 4, 3};
  const auto keep = lis_membership(b);
  std::vector<std::uint32_t> kept;
  for (std::size_t i = 0; i < b.size(); ++i)
    if (keep[i]) kept.push_back(b[i]);
  EXPECT_TRUE(std::is_sorted(kept.begin(), kept.end()));
  EXPECT_EQ(kept.size(), 3u);  // LIS length of {2,0,1,4,3}
}

class RandomPermutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPermutation, EncodeDecodeIdentity) {
  support::Xoshiro256 rng(GetParam());
  for (const std::size_t n : {2u, 3u, 5u, 17u, 100u, 1000u}) {
    auto b = identity(n);
    for (std::size_t i = n; i > 1; --i)
      std::swap(b[i - 1], b[rng.bounded(i)]);
    const auto ops = encode_permutation(b);
    EXPECT_EQ(apply_moves(n, ops), b);
    // Minimality: ops == N − LIS, and indices strictly increase.
    std::size_t lis = 0;
    for (const bool k : lis_membership(b)) lis += k;
    EXPECT_EQ(ops.size(), n - lis);
    for (std::size_t i = 1; i < ops.size(); ++i)
      EXPECT_LT(ops[i - 1].index, ops[i].index);
  }
}

TEST_P(RandomPermutation, NearSortedInputsProduceFewOps) {
  support::Xoshiro256 rng(GetParam() + 1000);
  auto b = identity(500);
  // Perturb 5% of positions by adjacent swaps: mimics MCB's mostly-in-
  // reference-order receive streams (Figure 1).
  for (int i = 0; i < 25; ++i) {
    const std::size_t j = rng.bounded(b.size() - 1);
    std::swap(b[j], b[j + 1]);
  }
  const auto ops = encode_permutation(b);
  EXPECT_LE(ops.size(), 50u);
  EXPECT_EQ(apply_moves(b.size(), ops), b);
}

TEST_P(RandomPermutation, BandedDistanceAgreesWithDp) {
  support::Xoshiro256 rng(GetParam() + 2000);
  for (const std::size_t n : {2u, 8u, 40u, 120u}) {
    auto b = identity(n);
    for (std::size_t i = n; i > 1; --i)
      std::swap(b[i - 1], b[rng.bounded(i)]);
    EXPECT_EQ(banded_edit_distance(b), dp_edit_distance(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPermutation,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18, 19,
                                           20));

TEST(Delays, PositiveDelayMeansReceivedLate) {
  // One element moved late: {1, 2, 0} — element 0 received 2 late.
  const std::vector<std::uint32_t> b = {1, 2, 0};
  const auto ops = encode_permutation(b);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].index, 0);
  EXPECT_EQ(ops[0].delay, 2);
}

TEST(Delays, NegativeDelayMeansReceivedEarly) {
  const std::vector<std::uint32_t> b = {2, 0, 1};
  const auto ops = encode_permutation(b);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].index, 2);
  EXPECT_EQ(ops[0].delay, -2);
}

}  // namespace
}  // namespace cdc::record
