#include "record/epoch.h"

#include <gtest/gtest.h>

#include <vector>

#include "figure4.h"
#include "support/rng.h"

namespace cdc::record {
namespace {

ReceiveEvent matched(std::int32_t rank, std::uint64_t clk,
                     bool with_next = false) {
  return {true, with_next, rank, clk};
}

TEST(CleanCut, FullBufferIsCleanWhenNothingPends) {
  const auto events = testing::figure4_events();
  EXPECT_EQ(find_clean_cut(events, {}, 100), 8u);
}

TEST(CleanCut, PendingSmallerClockBlocksTheCut) {
  // §3.5's scenario: a message (rank 2, clock "old") is still undelivered;
  // flushing receives from rank 2 with larger clocks would mis-chunk it.
  std::vector<ReceiveEvent> events = {matched(0, 5), matched(2, 10),
                                      matched(0, 7)};
  PendingMins pending;
  pending[2] = 8;  // an arrived-but-undelivered message (2, 8)
  // Including (2,10) would put epoch[2]=10 >= pending 8 → cut before it.
  EXPECT_EQ(find_clean_cut(events, pending, 100), 1u);
}

TEST(CleanCut, PendingOtherSenderDoesNotBlock) {
  std::vector<ReceiveEvent> events = {matched(0, 5), matched(2, 10)};
  PendingMins pending;
  pending[1] = 1;  // sender 1 has nothing in the buffer
  EXPECT_EQ(find_clean_cut(events, pending, 100), 2u);
}

TEST(CleanCut, InversionWithinBufferMustStayTogether) {
  // (0, 9) observed before (0, 6): any cut between them is dirty.
  std::vector<ReceiveEvent> events = {matched(0, 9), matched(1, 2),
                                      matched(0, 6), matched(1, 4)};
  // Cuts of size 1 and 2 split the inversion; 3 and 4 are clean.
  EXPECT_EQ(find_clean_cut(events, {}, 1), 0u);
  EXPECT_EQ(find_clean_cut(events, {}, 2), 0u);
  EXPECT_EQ(find_clean_cut(events, {}, 3), 3u);
  EXPECT_EQ(find_clean_cut(events, {}, 4), 4u);
}

TEST(CleanCut, WithNextGroupNotSplit) {
  std::vector<ReceiveEvent> events = {matched(0, 1), matched(1, 2, true),
                                      matched(2, 3)};
  // Cut after the with_next event (L = 2) is illegal; L = 1 and 3 are fine.
  EXPECT_EQ(find_clean_cut(events, {}, 2), 1u);
  EXPECT_EQ(find_clean_cut(events, {}, 3), 3u);
}

TEST(CleanCut, CapRespected) {
  std::vector<ReceiveEvent> events;
  for (std::uint64_t c = 1; c <= 20; ++c) events.push_back(matched(0, c));
  EXPECT_EQ(find_clean_cut(events, {}, 5), 5u);
}

TEST(CleanCut, EmptyBuffer) {
  EXPECT_EQ(find_clean_cut({}, {}, 10), 0u);
}

TEST(CleanCut, UnmatchedEventsAreTransparent) {
  std::vector<ReceiveEvent> events = {
      {false, false, -1, 0}, matched(0, 1), {false, false, -1, 0},
      matched(0, 2)};
  EXPECT_EQ(find_clean_cut(events, {}, 100), 2u);
}

TEST(TakeCut, SplitsAfterLastMatchedOfThePrefix) {
  std::vector<ReceiveEvent> events = {
      matched(0, 1), {false, false, -1, 0}, matched(0, 2),
      {false, false, -1, 0}, matched(0, 3)};
  auto prefix = take_cut(events, 2);
  ASSERT_EQ(prefix.size(), 3u);  // matched, unmatched, matched
  EXPECT_EQ(prefix[2].clock, 2u);
  // Remaining buffer starts with the unmatched event before (0,3).
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].flag);
  EXPECT_EQ(events[1].clock, 3u);
}

TEST(TakeCut, ZeroTakesNothing) {
  std::vector<ReceiveEvent> events = {matched(0, 1)};
  EXPECT_TRUE(take_cut(events, 0).empty());
  EXPECT_EQ(events.size(), 1u);
}

TEST(CleanCutProperty, CutsAreActuallyClean) {
  support::Xoshiro256 rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ReceiveEvent> events;
    std::vector<std::uint64_t> clk(4, 0);
    for (int i = 0; i < 60; ++i) {
      const auto s = static_cast<std::int32_t>(rng.bounded(4));
      clk[static_cast<std::size_t>(s)] += 1 + rng.bounded(4);
      events.push_back(matched(s, clk[static_cast<std::size_t>(s)]));
    }
    // Shuffle lightly to create inversions.
    for (int i = 0; i < 10; ++i) {
      const std::size_t j = rng.bounded(events.size() - 1);
      std::swap(events[j], events[j + 1]);
    }
    PendingMins pending;
    if (rng.uniform() < 0.5) pending[0] = 1 + rng.bounded(20);

    const std::size_t cut = find_clean_cut(events, pending, 40);
    // Verify the clean-cut definition directly.
    for (std::size_t i = 0; i < cut; ++i) {
      for (std::size_t j = cut; j < events.size(); ++j) {
        if (events[i].rank == events[j].rank) {
          EXPECT_LT(events[i].clock, events[j].clock);
        }
      }
      const auto it = pending.find(events[i].rank);
      if (it != pending.end()) {
        EXPECT_LT(events[i].clock, it->second);
      }
    }
  }
}

}  // namespace
}  // namespace cdc::record
