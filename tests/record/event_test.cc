#include "record/event.h"

#include <gtest/gtest.h>

#include "figure4.h"

namespace cdc::record {
namespace {

TEST(EventRows, Figure4StreamCollapsesToElevenRows) {
  const auto events = testing::figure4_events();
  const auto rows = to_rows(events);
  ASSERT_EQ(rows.size(), 11u);  // the 11 rows of Figure 4

  // Spot-check the table against the paper.
  EXPECT_EQ(rows[0], (EventRow{1, {true, false, 0, 2}}));
  EXPECT_EQ(rows[1].count, 2u);
  EXPECT_FALSE(rows[1].event.flag);
  EXPECT_EQ(rows[2], (EventRow{1, {true, true, 0, 13}}));
  EXPECT_EQ(rows[3], (EventRow{1, {true, false, 2, 8}}));
  EXPECT_EQ(rows[7].count, 3u);
  EXPECT_FALSE(rows[7].event.flag);
  EXPECT_EQ(rows[10], (EventRow{1, {true, false, 0, 18}}));
}

TEST(EventRows, PaperValueAccountingIs55) {
  // "this process needs to write 55 values (the five values × 11 events)".
  const auto rows = to_rows(testing::figure4_events());
  EXPECT_EQ(rows.size() * 5, 55u);
}

TEST(EventRows, RoundTrip) {
  const auto events = testing::figure4_events();
  EXPECT_EQ(from_rows(to_rows(events)), events);
}

TEST(EventRows, EmptyStream) {
  EXPECT_TRUE(to_rows({}).empty());
  EXPECT_TRUE(from_rows({}).empty());
}

TEST(EventRows, OnlyUnmatchedAggregatesToOneRow) {
  std::vector<ReceiveEvent> events(5, ReceiveEvent{false, false, -1, 0});
  const auto rows = to_rows(events);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].count, 5u);
  EXPECT_EQ(from_rows(rows), events);
}

TEST(EventRows, MatchedEventsNeverAggregate) {
  std::vector<ReceiveEvent> events = {
      {true, false, 0, 1}, {true, false, 0, 2}, {true, false, 0, 3}};
  EXPECT_EQ(to_rows(events).size(), 3u);
}

TEST(ReceiveEvent, MessageIdExposesSenderAndClock) {
  const ReceiveEvent e{true, false, 7, 42};
  EXPECT_EQ(e.id().sender, 7);
  EXPECT_EQ(e.id().clock, 42u);
}

}  // namespace
}  // namespace cdc::record
