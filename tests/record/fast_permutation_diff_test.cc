// Differential test pinning the fast permutation engine (treap + Fenwick,
// fast_permutation.h) against the reference implementations
// (edit_distance.h): 1000 random permutations per shape class, plus the
// structured adversaries (identity, reversal, rotations, block swaps)
// where the two engines' tie-breaking is most likely to drift apart.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <utility>

#include "record/edit_distance.h"
#include "record/fast_permutation.h"
#include "support/rng.h"

namespace cdc::record {
namespace {

std::uint64_t base_seed() {
  const char* value = std::getenv("CDC_FUZZ_BASE_SEED");
  return value != nullptr ? std::strtoull(value, nullptr, 10) : 1;
}

std::vector<std::uint32_t> identity(std::size_t n) {
  std::vector<std::uint32_t> b(n);
  std::iota(b.begin(), b.end(), 0u);
  return b;
}

std::vector<std::uint32_t> shuffled(support::Xoshiro256& rng, std::size_t n) {
  std::vector<std::uint32_t> b = identity(n);
  for (std::size_t i = n; i > 1; --i)
    std::swap(b[i - 1], b[rng.bounded(i)]);
  return b;
}

/// Identity with a fraction of adjacent-ish transpositions — the
/// near-sorted regime real MPI receive orders live in (Figure 14 reports
/// low permutation percentages), where LIS is long and D is small.
std::vector<std::uint32_t> nearly_sorted(support::Xoshiro256& rng,
                                         std::size_t n, double swap_rate) {
  std::vector<std::uint32_t> b = identity(n);
  const std::size_t swaps =
      static_cast<std::size_t>(static_cast<double>(n) * swap_rate) + 1;
  for (std::size_t s = 0; s < swaps && n > 1; ++s) {
    const std::size_t i = rng.bounded(n - 1);
    const std::size_t span = 1 + rng.bounded(3);
    std::swap(b[i], b[std::min(i + span, n - 1)]);
  }
  return b;
}

/// Asserts every cross-engine agreement for one permutation.
void check_one(const std::vector<std::uint32_t>& b) {
  const std::vector<MoveOp> reference = encode_permutation(b);
  const std::vector<MoveOp> fast = fast_encode_permutation(b);
  ASSERT_EQ(fast, reference) << "engines emitted different move ops, n="
                             << b.size();

  // Minimality: |ops| = N - LIS, and the banded walk agrees with the O(N^2)
  // dynamic program: D = 2 * |ops|.
  const std::size_t banded = banded_edit_distance(b);
  ASSERT_EQ(banded, dp_edit_distance(b)) << "n=" << b.size();
  ASSERT_EQ(banded, 2 * reference.size()) << "n=" << b.size();

  // Both decoders rebuild the observed order from either engine's ops.
  ASSERT_EQ(apply_moves(b.size(), reference), b);
  ASSERT_EQ(fast_apply_moves(b.size(), fast), b);
  ASSERT_EQ(fast_apply_moves(b.size(), reference), b);
}

TEST(fuzz_permutation_diff, OneThousandRandomPermutations) {
  support::Xoshiro256 rng(base_seed() * 41);
  constexpr std::size_t kSizes[] = {0, 1, 2, 3, 5, 8, 13, 33, 150};
  int cases = 0;
  while (cases < 1000)
    for (const std::size_t n : kSizes) {
      check_one(shuffled(rng, n));
      ++cases;
    }
}

TEST(fuzz_permutation_diff, NearlySortedPermutations) {
  // The regime the banded O(N + D) walk is optimized for; also where a
  // LIS tie-break bug would produce a valid-but-different move set.
  support::Xoshiro256 rng(base_seed() * 43);
  for (const double rate : {0.01, 0.05, 0.25})
    for (int s = 0; s < 40; ++s) check_one(nearly_sorted(rng, 500, rate));
}

TEST(fuzz_permutation_diff, StructuredAdversaries) {
  for (const std::size_t n : {1u, 2u, 7u, 64u, 301u}) {
    check_one(identity(n));                      // D = 0
    std::vector<std::uint32_t> reversed = identity(n);
    std::reverse(reversed.begin(), reversed.end());
    check_one(reversed);                         // LIS = 1, worst case
    std::vector<std::uint32_t> rotated = identity(n);
    std::rotate(rotated.begin(),
                rotated.begin() + static_cast<std::ptrdiff_t>(n / 2),
                rotated.end());
    check_one(rotated);                          // two runs
    std::vector<std::uint32_t> interleaved;      // evens then odds
    for (std::size_t i = 0; i < n; i += 2)
      interleaved.push_back(static_cast<std::uint32_t>(i));
    for (std::size_t i = 1; i < n; i += 2)
      interleaved.push_back(static_cast<std::uint32_t>(i));
    check_one(interleaved);
  }
}

TEST(fuzz_permutation_diff, LargePermutationStaysExact) {
  // One big instance: the treap/Fenwick path with deep structure, sized so
  // the O(N^2) dp reference is still tolerable.
  support::Xoshiro256 rng(base_seed() * 47);
  check_one(shuffled(rng, 2000));
  check_one(nearly_sorted(rng, 2000, 0.02));
}

}  // namespace
}  // namespace cdc::record
