#include "record/fast_permutation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "support/rng.h"

namespace cdc::record {
namespace {

std::vector<std::uint32_t> identity(std::size_t n) {
  std::vector<std::uint32_t> v(n);
  std::iota(v.begin(), v.end(), 0u);
  return v;
}

std::vector<std::uint32_t> random_permutation(std::size_t n,
                                              support::Xoshiro256& rng) {
  auto b = identity(n);
  for (std::size_t i = n; i > 1; --i) std::swap(b[i - 1], b[rng.bounded(i)]);
  return b;
}

TEST(WorkingList, BasicOperations) {
  detail::WorkingList list(5);
  EXPECT_EQ(list.to_vector(), identity(5));
  EXPECT_EQ(list.position_of(3), 3u);

  list.erase(1);
  EXPECT_EQ(list.to_vector(), (std::vector<std::uint32_t>{0, 2, 3, 4}));
  EXPECT_EQ(list.position_of(4), 3u);

  list.insert_at(0, 1);
  EXPECT_EQ(list.to_vector(), (std::vector<std::uint32_t>{1, 0, 2, 3, 4}));
  EXPECT_EQ(list.position_of(0), 1u);

  list.erase(4);
  list.insert_at(2, 4);
  EXPECT_EQ(list.to_vector(), (std::vector<std::uint32_t>{1, 0, 4, 2, 3}));
}

TEST(WorkingList, SingleElementAndEmpty) {
  detail::WorkingList one(1);
  EXPECT_EQ(one.position_of(0), 0u);
  one.erase(0);
  EXPECT_EQ(one.size(), 0u);
  one.insert_at(0, 0);
  EXPECT_EQ(one.to_vector(), (std::vector<std::uint32_t>{0}));

  detail::WorkingList empty(0);
  EXPECT_TRUE(empty.to_vector().empty());
}

TEST(WorkingList, RandomOpsAgreeWithVector) {
  support::Xoshiro256 rng(4);
  constexpr std::size_t kN = 200;
  detail::WorkingList list(kN);
  std::vector<std::uint32_t> mirror = identity(kN);
  for (int step = 0; step < 2000; ++step) {
    const std::uint32_t value =
        mirror[rng.bounded(mirror.size())];
    const std::size_t expected_pos = static_cast<std::size_t>(
        std::find(mirror.begin(), mirror.end(), value) - mirror.begin());
    ASSERT_EQ(list.position_of(value), expected_pos);
    list.erase(value);
    mirror.erase(mirror.begin() + static_cast<long>(expected_pos));
    const std::size_t target = rng.bounded(mirror.size() + 1);
    list.insert_at(target, value);
    mirror.insert(mirror.begin() + static_cast<long>(target), value);
  }
  EXPECT_EQ(list.to_vector(), mirror);
}

TEST(Fenwick, PrefixAndSelect) {
  detail::Fenwick fenwick(10);
  for (const std::size_t i : {1u, 4u, 7u, 9u}) fenwick.add(i, 1);
  EXPECT_EQ(fenwick.prefix(0), 0);
  EXPECT_EQ(fenwick.prefix(2), 1);
  EXPECT_EQ(fenwick.prefix(5), 2);
  EXPECT_EQ(fenwick.prefix(10), 4);
  EXPECT_EQ(fenwick.select(1), 1u);
  EXPECT_EQ(fenwick.select(2), 4u);
  EXPECT_EQ(fenwick.select(3), 7u);
  EXPECT_EQ(fenwick.select(4), 9u);
}

TEST(FastPermutation, MatchesReferenceOnPaperExample) {
  const std::vector<std::uint32_t> b = {0, 3, 2, 1, 4, 7, 5, 6};
  const auto fast = fast_encode_permutation(b);
  const auto reference = encode_permutation(b);
  EXPECT_EQ(fast, reference);
  EXPECT_EQ(fast_apply_moves(8, fast), b);
}

class FastVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastVsReference, IdenticalOpsAndRoundTrip) {
  support::Xoshiro256 rng(GetParam());
  for (const std::size_t n : {1u, 2u, 3u, 17u, 64u, 300u, 1500u}) {
    const auto b = random_permutation(n, rng);
    const auto fast = fast_encode_permutation(b);
    const auto reference = encode_permutation(b);
    ASSERT_EQ(fast, reference) << "n=" << n;
    ASSERT_EQ(fast_apply_moves(n, fast), b) << "n=" << n;
    ASSERT_EQ(fast_apply_moves(n, fast), apply_moves(n, fast)) << "n=" << n;
  }
}

TEST_P(FastVsReference, NearSortedInputs) {
  support::Xoshiro256 rng(GetParam() + 77);
  auto b = identity(2000);
  for (int i = 0; i < 200; ++i) {
    const std::size_t j = rng.bounded(b.size() - 1);
    std::swap(b[j], b[j + 1]);
  }
  const auto fast = fast_encode_permutation(b);
  EXPECT_EQ(fast, encode_permutation(b));
  EXPECT_EQ(fast_apply_moves(b.size(), fast), b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastVsReference,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

TEST(FastPermutation, LargeReversalStress) {
  auto b = identity(50000);
  std::reverse(b.begin(), b.end());
  const auto ops = fast_encode_permutation(b);
  EXPECT_EQ(ops.size(), b.size() - 1);
  EXPECT_EQ(fast_apply_moves(b.size(), ops), b);
}

TEST(FastPermutation, IdentityIsFree) {
  const auto b = identity(10000);
  EXPECT_TRUE(fast_encode_permutation(b).empty());
}

}  // namespace
}  // namespace cdc::record
