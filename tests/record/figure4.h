// The paper's worked example: the Figure 4 recording table as a raw event
// stream, shared by the record-module tests.
#pragma once

#include <vector>

#include "record/event.h"

namespace cdc::record::testing {

/// Figure 4 rows expanded to events:
///   (1,1,0,-,0,2) (2,0,…) (1,1,1,0,13) (1,1,0,2,8) (1,1,0,1,8)
///   (1,1,0,0,15) (1,1,0,1,19) (3,0,…) (1,1,0,0,17) (1,0,…) (1,1,0,0,18)
inline std::vector<ReceiveEvent> figure4_events() {
  const auto matched = [](std::int32_t rank, std::uint64_t clk,
                          bool with_next = false) {
    return ReceiveEvent{true, with_next, rank, clk};
  };
  const ReceiveEvent unmatched{false, false, -1, 0};
  return {
      matched(0, 2),        unmatched, unmatched,
      matched(0, 13, true), matched(2, 8),
      matched(1, 8),        matched(0, 15),
      matched(1, 19),       unmatched, unmatched, unmatched,
      matched(0, 17),       unmatched,
      matched(0, 18),
  };
}

}  // namespace cdc::record::testing
