#include "record/lp.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.h"

namespace cdc::record {
namespace {

TEST(LpEncoding, PaperWorkedExample) {
  // §3.4: {1,2,4,6,8,12,17} encodes to {1,0,1,0,0,2,1}.
  const std::vector<std::int64_t> xs = {1, 2, 4, 6, 8, 12, 17};
  const std::vector<std::int64_t> expected = {1, 0, 1, 0, 0, 2, 1};
  EXPECT_EQ(lp_encode(xs), expected);
}

TEST(LpEncoding, LinearSequencesEncodeToNearZero) {
  std::vector<std::int64_t> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(5 + 3 * i);
  const auto es = lp_encode(xs);
  // After the two warm-up residuals every value is exactly zero.
  for (std::size_t n = 2; n < es.size(); ++n) EXPECT_EQ(es[n], 0);
}

TEST(LpEncoding, RoundTripPaperExample) {
  const std::vector<std::int64_t> xs = {1, 2, 4, 6, 8, 12, 17};
  EXPECT_EQ(lp_decode(lp_encode(xs)), xs);
}

TEST(LpEncoding, RoundTripEmptyAndSingle) {
  EXPECT_TRUE(lp_encode({}).empty());
  const std::vector<std::int64_t> one = {42};
  EXPECT_EQ(lp_decode(lp_encode(one)), one);
}

TEST(LpEncoding, RoundTripNegativeValues) {
  const std::vector<std::int64_t> xs = {-5, 10, -20, 3, 0, -1};
  EXPECT_EQ(lp_decode(lp_encode(xs)), xs);
}

class LpRandomRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpRandomRoundTrip, Identity) {
  support::Xoshiro256 rng(GetParam());
  std::vector<std::int64_t> xs(1 + rng.bounded(1000));
  std::int64_t acc = 0;
  for (auto& x : xs) {
    acc += static_cast<std::int64_t>(rng.bounded(20)) - 5;
    x = acc;
  }
  EXPECT_EQ(lp_decode(lp_encode(xs)), xs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LpEncoding, MonotoneIndexColumnsHaveSmallResiduals) {
  // The intended use: near-arithmetic index sequences.
  support::Xoshiro256 rng(99);
  std::vector<std::int64_t> xs;
  std::int64_t v = 0;
  for (int i = 0; i < 1000; ++i) {
    v += 3 + static_cast<std::int64_t>(rng.bounded(2));  // slope 3 or 4
    xs.push_back(v);
  }
  const auto es = lp_encode(xs);
  for (std::size_t n = 2; n < es.size(); ++n) {
    EXPECT_LE(es[n], 2);
    EXPECT_GE(es[n], -2);
  }
}

}  // namespace
}  // namespace cdc::record
