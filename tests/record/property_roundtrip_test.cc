// Property-based round-trip tests for the CDC codec: seeded random event
// streams through every layer — Figure 4 rows, the 162-bit baseline, the
// redundancy-elimination tables, permutation/chunk encoding, LP encoding,
// and chunk (de)serialization with the final DEFLATE stage — each of which
// must be an exact inverse pair. Suite names carry the fuzz_ prefix so the
// nightly `ctest -R fuzz` job sweeps them across its seed matrix.
#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>

#include "compress/deflate.h"
#include "record/baseline.h"
#include "record/chunk.h"
#include "record/event.h"
#include "record/lp.h"
#include "record/tables.h"
#include "support/binary.h"
#include "support/rng.h"

namespace cdc::record {
namespace {

std::uint64_t base_seed() {
  const char* value = std::getenv("CDC_FUZZ_BASE_SEED");
  return value != nullptr ? std::strtoull(value, nullptr, 10) : 1;
}

/// A random but *valid* receive-event stream: matched events carry unique
/// (sender, clock) ids with per-sender strictly increasing clocks (the
/// non-overtaking channel guarantee the codec relies on); with_next only
/// links a matched event to a following matched event; unmatched tests
/// appear in runs of geometric length.
std::vector<ReceiveEvent> random_events(support::Xoshiro256& rng,
                                        std::size_t num_matched,
                                        int num_senders) {
  std::vector<ReceiveEvent> matched;
  std::vector<std::uint64_t> next_clock(
      static_cast<std::size_t>(num_senders), 1);
  for (std::size_t i = 0; i < num_matched; ++i) {
    ReceiveEvent e;
    e.flag = true;
    e.rank = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(num_senders)));
    auto& clock = next_clock[static_cast<std::size_t>(e.rank)];
    clock += 1 + rng.bounded(5);  // strictly increasing per sender
    e.clock = clock;
    matched.push_back(e);
  }
  // Random observed order (the adversarial delivery permutation).
  for (std::size_t i = matched.size(); i > 1; --i)
    std::swap(matched[i - 1], matched[rng.bounded(i)]);

  std::vector<ReceiveEvent> events;
  for (std::size_t i = 0; i < matched.size(); ++i) {
    while (rng.uniform() < 0.3) events.push_back(ReceiveEvent{});  // unmatched
    ReceiveEvent e = matched[i];
    // A with_next link requires the next event to be delivered in the same
    // MF call, i.e. to follow immediately and be matched.
    e.with_next = i + 1 < matched.size() && rng.uniform() < 0.25;
    events.push_back(e);
    if (e.with_next) {
      ReceiveEvent next = matched[++i];
      next.with_next = false;
      events.push_back(next);
    }
  }
  while (rng.uniform() < 0.3) events.push_back(ReceiveEvent{});  // trailing
  return events;
}

struct Shape {
  std::size_t num_matched;
  int num_senders;
};

constexpr Shape kShapes[] = {
    {0, 1}, {1, 1}, {2, 2}, {7, 3}, {25, 4}, {96, 8}, {400, 16},
};
constexpr int kSeedsPerShape = 12;

TEST(fuzz_codec_roundtrip, RowAggregationIsExact) {
  support::Xoshiro256 rng(base_seed() * 11);
  for (const Shape& shape : kShapes)
    for (int s = 0; s < kSeedsPerShape; ++s) {
      const auto events =
          random_events(rng, shape.num_matched, shape.num_senders);
      EXPECT_EQ(from_rows(to_rows(events)), events);
    }
}

TEST(fuzz_codec_roundtrip, BaselineBitPackingIsExact) {
  support::Xoshiro256 rng(base_seed() * 13);
  for (const Shape& shape : kShapes)
    for (int s = 0; s < kSeedsPerShape; ++s) {
      const auto rows =
          to_rows(random_events(rng, shape.num_matched, shape.num_senders));
      const auto bytes = baseline_serialize(rows);
      EXPECT_EQ(bytes.size(), baseline_size_bytes(rows.size()));
      const auto parsed = baseline_parse(bytes, rows.size());
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(*parsed, rows);
    }
}

TEST(fuzz_codec_roundtrip, RedundancyEliminationIsExact) {
  support::Xoshiro256 rng(base_seed() * 17);
  for (const Shape& shape : kShapes)
    for (int s = 0; s < kSeedsPerShape; ++s) {
      const auto events =
          random_events(rng, shape.num_matched, shape.num_senders);
      EXPECT_EQ(tables_to_events(build_tables(events)), events);
    }
}

TEST(fuzz_codec_roundtrip, PermutationEncodingIsExact) {
  // encode_chunk drops the matched (rank, clock) column; decode_chunk must
  // rebuild it exactly from the reference order, as replay does.
  support::Xoshiro256 rng(base_seed() * 19);
  for (const Shape& shape : kShapes)
    for (int s = 0; s < kSeedsPerShape; ++s) {
      const auto events =
          random_events(rng, shape.num_matched, shape.num_senders);
      const ChunkTables tables = build_tables(events);
      const CdcChunk chunk = encode_chunk(tables);
      EXPECT_EQ(chunk.num_matched, tables.matched.size());
      const auto reference = reference_order(tables.matched);
      EXPECT_EQ(decode_chunk(chunk, reference), tables);
    }
}

TEST(fuzz_codec_roundtrip, ChunkSerializationIsExact) {
  support::Xoshiro256 rng(base_seed() * 23);
  for (const Shape& shape : kShapes)
    for (int s = 0; s < kSeedsPerShape; ++s) {
      const auto events =
          random_events(rng, shape.num_matched, shape.num_senders);
      const CdcChunk chunk = encode_chunk(build_tables(events));
      support::ByteWriter writer;
      write_chunk(writer, chunk);
      support::ByteReader reader(writer.view());
      const auto parsed = read_chunk(reader);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(*parsed, chunk);
      EXPECT_TRUE(reader.exhausted());
    }
}

TEST(fuzz_codec_roundtrip, ReTablesSerializationIsExact) {
  support::Xoshiro256 rng(base_seed() * 29);
  for (const Shape& shape : kShapes)
    for (int s = 0; s < kSeedsPerShape; ++s) {
      const ChunkTables tables = build_tables(
          random_events(rng, shape.num_matched, shape.num_senders));
      support::ByteWriter writer;
      write_tables_re(writer, tables);
      support::ByteReader reader(writer.view());
      const auto parsed = read_tables_re(reader);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(*parsed, tables);
    }
}

TEST(fuzz_codec_roundtrip, LpTransformIsExact) {
  support::Xoshiro256 rng(base_seed() * 31);
  for (const std::size_t n : {0u, 1u, 2u, 3u, 17u, 1000u}) {
    for (int s = 0; s < kSeedsPerShape; ++s) {
      std::vector<std::int64_t> xs(n);
      for (auto& x : xs) {
        // Values span the magnitudes the codec feeds in (indices, clocks);
        // bounded so the 2x-x prediction cannot overflow.
        x = static_cast<std::int64_t>(rng.bounded(1ull << 40)) -
            (1ll << 39);
      }
      EXPECT_EQ(lp_decode(lp_encode(xs)), xs);
    }
  }
}

TEST(fuzz_codec_roundtrip, FullPipelineWithDeflateIsExact) {
  // events → tables → chunk → bytes → DEFLATE → inflate → chunk → tables
  // → events: the exact composition the recorder/replayer pair runs.
  support::Xoshiro256 rng(base_seed() * 37);
  for (const Shape& shape : kShapes)
    for (int s = 0; s < 4; ++s) {
      const auto events =
          random_events(rng, shape.num_matched, shape.num_senders);
      const ChunkTables tables = build_tables(events);
      const CdcChunk chunk = encode_chunk(tables);
      support::ByteWriter writer;
      write_chunk(writer, chunk);
      const auto packed = compress::deflate_compress(writer.view());
      const auto unpacked = compress::deflate_decompress(packed);
      ASSERT_TRUE(unpacked.has_value());
      support::ByteReader reader(*unpacked);
      const auto parsed = read_chunk(reader);
      ASSERT_TRUE(parsed.has_value());
      const auto reference = reference_order(tables.matched);
      EXPECT_EQ(tables_to_events(decode_chunk(*parsed, reference)), events);
    }
}

}  // namespace
}  // namespace cdc::record
