#include "record/tables.h"

#include <gtest/gtest.h>

#include "figure4.h"

namespace cdc::record {
namespace {

TEST(RedundancyElimination, Figure6Tables) {
  const auto tables = build_tables(testing::figure4_events());

  // Matched-test table, observed order (Figure 6 left).
  ASSERT_EQ(tables.matched.size(), 8u);
  const clock::MessageId expected[] = {{0, 2},  {0, 13}, {2, 8},  {1, 8},
                                       {0, 15}, {1, 19}, {0, 17}, {0, 18}};
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(tables.matched[i], expected[i]);

  // with_next table: only observed index 1 (the clock-13 receive).
  ASSERT_EQ(tables.with_next.size(), 1u);
  EXPECT_EQ(tables.with_next[0], 1u);

  // unmatched-test table: (1,2), (6,3), (7,1) — Figure 6 right.
  ASSERT_EQ(tables.unmatched.size(), 3u);
  EXPECT_EQ(tables.unmatched[0], (UnmatchedRun{1, 2}));
  EXPECT_EQ(tables.unmatched[1], (UnmatchedRun{6, 3}));
  EXPECT_EQ(tables.unmatched[2], (UnmatchedRun{7, 1}));
}

TEST(RedundancyElimination, PaperValueAccountingIs23) {
  // "After this redundancy elimination, CDC can reduce the number of
  // recording values to 23 values in the example."
  const auto tables = build_tables(testing::figure4_events());
  EXPECT_EQ(tables.value_count(), 23u);
}

TEST(RedundancyElimination, RoundTrip) {
  const auto events = testing::figure4_events();
  EXPECT_EQ(tables_to_events(build_tables(events)), events);
}

TEST(RedundancyElimination, NoTestFamilyMeansEmptyUnmatchedTable) {
  // "if an application does not call the MPI Test family … the size of the
  // unmatched-test table becomes zero."
  std::vector<ReceiveEvent> events = {
      {true, false, 0, 1}, {true, false, 1, 2}, {true, false, 0, 3}};
  const auto tables = build_tables(events);
  EXPECT_TRUE(tables.unmatched.empty());
  EXPECT_TRUE(tables.with_next.empty());
  EXPECT_EQ(tables_to_events(tables), events);
}

TEST(RedundancyElimination, TrailingUnmatchedTestsUseIndexN) {
  std::vector<ReceiveEvent> events = {
      {true, false, 0, 1}, {false, false, -1, 0}, {false, false, -1, 0}};
  const auto tables = build_tables(events);
  ASSERT_EQ(tables.unmatched.size(), 1u);
  EXPECT_EQ(tables.unmatched[0], (UnmatchedRun{1, 2}));
  EXPECT_EQ(tables_to_events(tables), events);
}

TEST(RedundancyElimination, LeadingUnmatchedTestsUseIndexZero) {
  std::vector<ReceiveEvent> events = {
      {false, false, -1, 0}, {true, false, 3, 9}};
  const auto tables = build_tables(events);
  ASSERT_EQ(tables.unmatched.size(), 1u);
  EXPECT_EQ(tables.unmatched[0], (UnmatchedRun{0, 1}));
  EXPECT_EQ(tables_to_events(tables), events);
}

TEST(RedundancyElimination, OnlyUnmatchedEvents) {
  std::vector<ReceiveEvent> events(4, ReceiveEvent{false, false, -1, 0});
  const auto tables = build_tables(events);
  EXPECT_TRUE(tables.matched.empty());
  ASSERT_EQ(tables.unmatched.size(), 1u);
  EXPECT_EQ(tables.unmatched[0], (UnmatchedRun{0, 4}));
  EXPECT_EQ(tables_to_events(tables), events);
}

TEST(RedundancyElimination, EmptyStream) {
  const auto tables = build_tables({});
  EXPECT_TRUE(tables.matched.empty());
  EXPECT_TRUE(tables_to_events(tables).empty());
}

TEST(RedundancyElimination, WithNextGroupsSurvive) {
  // A Waitsome delivering three messages at once: first two with_next.
  std::vector<ReceiveEvent> events = {
      {true, true, 0, 1}, {true, true, 1, 2}, {true, false, 2, 3}};
  const auto tables = build_tables(events);
  ASSERT_EQ(tables.with_next.size(), 2u);
  EXPECT_EQ(tables.with_next[0], 0u);
  EXPECT_EQ(tables.with_next[1], 1u);
  EXPECT_EQ(tables_to_events(tables), events);
}

}  // namespace
}  // namespace cdc::record
