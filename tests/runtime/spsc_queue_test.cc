#include "runtime/spsc_queue.h"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace cdc::runtime {
namespace {

TEST(SpscQueue, PushPopSingleThread) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(int{i}));
  int out = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
}

TEST(SpscQueue, ReportsFull) {
  SpscQueue<int> q(4);
  std::size_t pushed = 0;
  while (q.try_push(int(pushed))) ++pushed;
  EXPECT_GE(pushed, 4u);  // capacity is rounded up
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_TRUE(q.try_push(99));  // space freed
}

TEST(SpscQueue, SizeApprox) {
  SpscQueue<int> q(16);
  EXPECT_TRUE(q.empty_approx());
  q.try_push(1);
  q.try_push(2);
  EXPECT_EQ(q.size_approx(), 2u);
  int out;
  q.try_pop(out);
  EXPECT_EQ(q.size_approx(), 1u);
}

TEST(SpscQueue, WrapsAroundManyTimes) {
  SpscQueue<int> q(4);
  int out = 0;
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(q.try_push(int{round}));
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, round);
  }
}

TEST(SpscQueue, MoveOnlyPayloads) {
  SpscQueue<std::unique_ptr<int>> q(8);
  ASSERT_TRUE(q.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 42);
}

TEST(SpscQueueStress, TwoThreadsPreserveFifoAndLoseNothing) {
  constexpr std::uint64_t kCount = 2'000'000;
  SpscQueue<std::uint64_t> q(1024);
  std::uint64_t sum = 0;
  std::uint64_t expected_next = 0;
  bool ordered = true;

  std::thread consumer([&] {
    std::uint64_t v = 0;
    std::uint64_t received = 0;
    while (received < kCount) {
      if (q.try_pop(v)) {
        if (v != expected_next) ordered = false;
        ++expected_next;
        sum += v;
        ++received;
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!q.try_push(std::uint64_t{i})) {
    }
  }
  consumer.join();

  EXPECT_TRUE(ordered);
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(SpscQueueStress, BurstyProducer) {
  SpscQueue<int> q(64);
  constexpr int kBursts = 1000;
  constexpr int kBurstSize = 100;
  std::atomic<bool> done{false};
  std::uint64_t received = 0;

  std::thread consumer([&] {
    int v = 0;
    for (;;) {
      if (q.try_pop(v)) {
        ++received;
      } else if (done.load(std::memory_order_acquire)) {
        while (q.try_pop(v)) ++received;
        return;
      }
    }
  });
  for (int b = 0; b < kBursts; ++b) {
    for (int i = 0; i < kBurstSize; ++i) {
      while (!q.try_push(int{i})) {
      }
    }
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(received, static_cast<std::uint64_t>(kBursts) * kBurstSize);
}

}  // namespace
}  // namespace cdc::runtime
