#include "runtime/storage.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

namespace cdc::runtime {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> list) {
  return list;
}

template <typename Store>
void exercise_basic(Store& store) {
  const StreamKey a{0, 1};
  const StreamKey b{3, 2};
  store.append(a, bytes({1, 2, 3}));
  store.append(a, bytes({4}));
  store.append(b, bytes({9, 9}));

  EXPECT_EQ(store.total_bytes(), 6u);
  EXPECT_EQ(store.rank_bytes(0), 4u);
  EXPECT_EQ(store.rank_bytes(3), 2u);
  EXPECT_EQ(store.rank_bytes(7), 0u);
  EXPECT_EQ(store.keys().size(), 2u);
}

TEST(MemoryStore, AppendReadBack) {
  MemoryStore store;
  exercise_basic(store);
  EXPECT_EQ(store.read(StreamKey{0, 1}), bytes({1, 2, 3, 4}));
  EXPECT_EQ(store.read(StreamKey{3, 2}), bytes({9, 9}));
  EXPECT_TRUE(store.read(StreamKey{5, 5}).empty());
}

TEST(FileStore, AppendReadBack) {
  // Per-process scratch dir: ctest -j runs tests as concurrent processes.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("cdc_filestore_test." + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  FileStore store(dir);
  exercise_basic(store);
  EXPECT_EQ(store.read(StreamKey{0, 1}), bytes({1, 2, 3, 4}));
  EXPECT_TRUE(std::filesystem::exists(dir + "/0_1.cdcrec"));
  std::filesystem::remove_all(dir);
}

// Regression tests for the FileStore failure modes that used to pass
// silently: a store that cannot reach its directory must abort loudly,
// never hand replay empty data.
class FileStoreErrors : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("cdc_filestore_errors." + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(FileStoreErrors, ConstructorDiesOnUncreatableDirectory) {
  // A path under a regular file can never become a directory.
  EXPECT_DEATH(FileStore("/proc/version/not_a_dir"),
               "cannot create record directory");
}

TEST_F(FileStoreErrors, ReadDiesWhenRecordFileVanishes) {
  FileStore store(dir_);
  store.append(StreamKey{0, 1}, bytes({1, 2, 3}));
  std::filesystem::remove(dir_ + "/0_1.cdcrec");
  EXPECT_DEATH(store.read(StreamKey{0, 1}), "record file missing on read");
}

TEST_F(FileStoreErrors, ReadDiesWhenDirectoryVanishes) {
  FileStore store(dir_);
  store.append(StreamKey{0, 1}, bytes({1, 2, 3}));
  std::filesystem::remove_all(dir_);
  EXPECT_DEATH(store.read(StreamKey{0, 1}),
               "record directory missing on read");
}

TEST_F(FileStoreErrors, ReadOfUnknownKeyWithIntactDirectoryIsEmpty) {
  FileStore store(dir_);
  store.append(StreamKey{0, 1}, bytes({1}));
  // Never-written key: legitimately empty, not an error.
  EXPECT_TRUE(store.read(StreamKey{5, 5}).empty());
}

TEST_F(FileStoreErrors, AppendDiesWhenDirectoryVanishes) {
  FileStore store(dir_);
  store.append(StreamKey{0, 1}, bytes({1}));
  std::filesystem::remove_all(dir_);
  EXPECT_DEATH(store.append(StreamKey{0, 1}, bytes({2})),
               "cannot open record file for append");
}

TEST(CountingStore, CountsWithoutStoring) {
  CountingStore store;
  exercise_basic(store);
  EXPECT_DEATH(store.read(StreamKey{0, 1}), "discards");
}

TEST(MemoryStore, EmptyStoreTotals) {
  MemoryStore store;
  EXPECT_EQ(store.total_bytes(), 0u);
  EXPECT_TRUE(store.keys().empty());
}

}  // namespace
}  // namespace cdc::runtime
