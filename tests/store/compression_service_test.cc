#include "store/compression_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/storage.h"
#include "tool/frame.h"
#include "tool/frame_sink.h"

namespace cdc::store {
namespace {

runtime::StreamKey key(std::int32_t rank, std::uint32_t callsite = 0) {
  return runtime::StreamKey{rank, callsite};
}

TEST(CompressionService, CommitsInSubmissionOrderDespiteSlowEarlyJobs) {
  runtime::MemoryStore store;
  CompressionService::Config config;
  config.workers = 4;
  CompressionService service(&store, config);
  // Early jobs sleep, later ones finish instantly: a service that
  // committed on completion order would interleave them.
  for (std::uint8_t i = 0; i < 32; ++i) {
    service.submit(key(0), 1, [i] {
      if (i % 4 == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      return std::vector<std::uint8_t>{i};
    });
  }
  service.drain();
  const auto stream = store.read(key(0));
  ASSERT_EQ(stream.size(), 32u);
  for (std::uint8_t i = 0; i < 32; ++i) EXPECT_EQ(stream[i], i);
}

TEST(CompressionService, DrainThenSubmitMoreKeepsWorking) {
  runtime::MemoryStore store;
  CompressionService service(&store);
  service.submit(key(1), 1, [] { return std::vector<std::uint8_t>{1}; });
  service.drain();
  EXPECT_EQ(store.read(key(1)).size(), 1u);
  service.submit(key(1), 1, [] { return std::vector<std::uint8_t>{2}; });
  service.drain();
  EXPECT_EQ(store.read(key(1)), (std::vector<std::uint8_t>{1, 2}));
}

TEST(CompressionService, DestructorDrainsOutstandingJobs) {
  runtime::MemoryStore store;
  {
    CompressionService::Config config;
    config.workers = 2;
    config.queue_capacity = 4;
    CompressionService service(&store, config);
    for (int i = 0; i < 16; ++i)
      service.submit(key(0), 1, [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return std::vector<std::uint8_t>{7};
      });
  }
  EXPECT_EQ(store.read(key(0)).size(), 16u);
}

TEST(CompressionService, StatsAccounting) {
  runtime::MemoryStore store;
  CompressionService::Config config;
  config.workers = 3;
  CompressionService service(&store, config);
  for (int i = 0; i < 10; ++i)
    service.submit(key(i % 2), 100,
                   [] { return std::vector<std::uint8_t>(40, 0); });
  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs, 10u);
  EXPECT_EQ(stats.raw_bytes, 1000u);
  EXPECT_EQ(stats.encoded_bytes, 400u);
  EXPECT_EQ(stats.workers, 3u);
}

TEST(CompressionService, BoundedQueueBackPressuresSubmitters) {
  runtime::MemoryStore store;
  CompressionService::Config config;
  config.workers = 1;
  config.queue_capacity = 2;
  CompressionService service(&store, config);
  // 50 slow jobs through a 2-deep queue: submit must block, not drop.
  for (int i = 0; i < 50; ++i)
    service.submit(key(0), 1, [] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return std::vector<std::uint8_t>{1};
    });
  service.drain();
  EXPECT_EQ(store.read(key(0)).size(), 50u);
}

TEST(AsyncFrameSink, ProducesBitIdenticalStreamsToInline) {
  // The headline property: the parallel path stores the same bytes.
  std::vector<tool::FrameJob> jobs;
  for (int i = 0; i < 24; ++i) {
    tool::FrameJob job;
    job.codec = static_cast<std::uint8_t>(i % 4);
    job.meta = static_cast<std::uint64_t>(i);
    job.compress = i % 4 != 0;
    std::vector<std::uint8_t> payload(256 + i * 17);
    for (std::size_t b = 0; b < payload.size(); ++b)
      payload[b] = static_cast<std::uint8_t>((b * (i + 1)) % 7);
    job.payload = std::move(payload);
    jobs.push_back(std::move(job));
  }

  runtime::MemoryStore inline_store;
  tool::InlineFrameSink inline_sink(&inline_store);
  for (const auto& job : jobs) inline_sink.submit(key(0), job);

  runtime::MemoryStore parallel_store;
  CompressionService::Config config;
  config.workers = 4;
  CompressionService service(&parallel_store, config);
  tool::AsyncFrameSink async_sink(&service);
  for (const auto& job : jobs) async_sink.submit(key(0), job);
  service.drain();

  EXPECT_EQ(inline_store.read(key(0)), parallel_store.read(key(0)));
  EXPECT_EQ(service.stats().encoded_bytes, inline_store.total_bytes());
}

TEST(CompressionService, PoolMakesSteadyStateFrameEncodingAllocationFree) {
  // 1000 small frames through the worker pool: after each worker's first
  // job allocates an output buffer, every later encode must reuse pooled
  // capacity — the pool counters are the allocation audit. A regression
  // that drops buffers instead of recycling them shows up as misses.
  runtime::MemoryStore store;
  CompressionService::Config config;
  config.workers = 4;
  CompressionService service(&store, config);
  tool::AsyncFrameSink sink(&service);

  constexpr std::uint64_t kJobs = 1000;
  for (std::uint64_t i = 0; i < kJobs; ++i) {
    tool::FrameJob job;
    job.meta = i;
    job.payload.assign(96, static_cast<std::uint8_t>(i % 5));
    sink.submit(key(0), std::move(job));
  }
  service.drain();

  const auto pool = service.stats().pool;
  EXPECT_EQ(pool.hits + pool.misses, kJobs);
  // Each worker holds at most one buffer at a time and the pool retains
  // more buffers than there are workers, so only a worker's very first
  // acquire can find the freelist empty.
  EXPECT_LE(pool.misses, static_cast<std::uint64_t>(config.workers));
  EXPECT_GE(pool.hits, kJobs - config.workers);
  EXPECT_GT(pool.recycled_bytes, 0u);
  EXPECT_EQ(pool.dropped, 0u);
}

}  // namespace
}  // namespace cdc::store
