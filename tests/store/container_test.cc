#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "store/container_reader.h"
#include "store/container_store.h"
#include "store/container_writer.h"

namespace cdc::store {
namespace {

class ContainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process scratch dir: ctest -j runs each test of this fixture as
    // its own process, and a shared directory would be remove_all'd by a
    // concurrent sibling mid-test.
    dir_ = std::filesystem::temp_directory_path() /
           ("cdc_container_test." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

std::vector<std::uint8_t> payload_for(int seed, std::size_t size) {
  std::vector<std::uint8_t> out(size);
  for (std::size_t i = 0; i < size; ++i)
    out[i] = static_cast<std::uint8_t>(seed * 131 + i);
  return out;
}

TEST_F(ContainerTest, RoundTripMultipleStreams) {
  const std::string file = path("multi.cdcc");
  const runtime::StreamKey a{0, 1};
  const runtime::StreamKey b{3, 2};
  const runtime::StreamKey c{-1, 0};  // negative rank must survive zigzag
  {
    ContainerWriter writer(file);
    writer.append_frame(a, payload_for(1, 100));
    writer.append_frame(b, payload_for(2, 10));
    writer.append_frame(a, payload_for(3, 50));
    writer.append_frame(c, payload_for(4, 1));
    writer.append_frame(a, payload_for(5, 0));  // empty payloads are legal
    writer.seal();
    EXPECT_EQ(writer.stats().frames, 5u);
    EXPECT_EQ(writer.stats().payload_bytes, 161u);
  }

  const auto reader = ContainerReader::open(file);
  ASSERT_NE(reader, nullptr);
  EXPECT_TRUE(reader->index_ok());
  EXPECT_EQ(reader->keys().size(), 3u);

  auto expected_a = payload_for(1, 100);
  const auto more_a = payload_for(3, 50);
  expected_a.insert(expected_a.end(), more_a.begin(), more_a.end());
  EXPECT_EQ(reader->read_stream(a), expected_a);
  EXPECT_EQ(reader->read_stream(b), payload_for(2, 10));
  EXPECT_EQ(reader->read_stream(c), payload_for(4, 1));
  EXPECT_TRUE(reader->read_stream(runtime::StreamKey{9, 9}).empty());

  const StreamIndexEntry* entry = reader->find(a);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->frame_offsets.size(), 3u);
  EXPECT_EQ(entry->payload_bytes, 150u);

  const auto report = reader->verify();
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.frames_checked, 5u);
  EXPECT_EQ(report.payload_bytes, 161u);
}

TEST_F(ContainerTest, EmptyContainerIsValid) {
  const std::string file = path("empty.cdcc");
  {
    ContainerWriter writer(file);
    writer.seal();
  }
  const auto reader = ContainerReader::open(file);
  ASSERT_NE(reader, nullptr);
  EXPECT_TRUE(reader->index_ok());
  EXPECT_TRUE(reader->keys().empty());
  EXPECT_TRUE(reader->verify().ok);
}

TEST_F(ContainerTest, SealIsIdempotentAndDestructorSeals) {
  const std::string file = path("seal.cdcc");
  {
    ContainerWriter writer(file);
    writer.append_frame({0, 0}, payload_for(1, 8));
    writer.seal();
    writer.seal();
  }  // destructor seals again — must be a no-op
  const auto reader = ContainerReader::open(file);
  ASSERT_NE(reader, nullptr);
  EXPECT_TRUE(reader->verify().ok);
}

TEST_F(ContainerTest, WriterRefusesUncreatablePath) {
  EXPECT_DEATH(ContainerWriter(path("no_such_dir") + "/x/y.cdcc"),
               "cannot create record container");
}

TEST_F(ContainerTest, RepackPreservesContentAndDropsNothingWhenClean) {
  const std::string file = path("in.cdcc");
  const std::string out = path("out.cdcc");
  const runtime::StreamKey a{1, 1};
  const runtime::StreamKey b{2, 1};
  {
    ContainerWriter writer(file);
    for (int i = 0; i < 20; ++i)
      writer.append_frame(i % 3 == 0 ? b : a, payload_for(i, 30));
    writer.seal();
  }
  const auto result = repack_container(file, out);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.frames_kept, 20u);
  EXPECT_EQ(result.frames_dropped, 0u);

  const auto before = ContainerReader::open(file);
  const auto after = ContainerReader::open(out);
  ASSERT_NE(after, nullptr);
  EXPECT_TRUE(after->verify().ok);
  EXPECT_EQ(after->read_stream(a), before->read_stream(a));
  EXPECT_EQ(after->read_stream(b), before->read_stream(b));
}

TEST_F(ContainerTest, ContainerStoreRecordReopenReadsBack) {
  const std::string file = path("store.cdcc");
  const runtime::StreamKey a{0, 4};
  const runtime::StreamKey b{7, 4};
  {
    ContainerStore store(file);
    store.append(a, payload_for(1, 64));
    store.append(b, payload_for(2, 16));
    store.append(a, payload_for(3, 8));
    // Memory side serves reads immediately, before sealing.
    EXPECT_EQ(store.total_bytes(), 88u);
    EXPECT_EQ(store.rank_bytes(0), 72u);
    store.seal();
  }
  const auto reopened = ContainerStore::open(file);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->keys().size(), 2u);
  auto expected_a = payload_for(1, 64);
  const auto more_a = payload_for(3, 8);
  expected_a.insert(expected_a.end(), more_a.begin(), more_a.end());
  EXPECT_EQ(reopened->read(a), expected_a);
  EXPECT_EQ(reopened->read(b), payload_for(2, 16));
  EXPECT_EQ(reopened->total_bytes(), 88u);
}

TEST_F(ContainerTest, ReopenedContainerStoreIsReadOnly) {
  const std::string file = path("ro.cdcc");
  {
    ContainerStore store(file);
    store.append({0, 0}, payload_for(1, 4));
    store.seal();
  }
  const auto reopened = ContainerStore::open(file);
  EXPECT_DEATH(reopened->append({0, 0}, payload_for(2, 4)),
               "read-only");
}

TEST_F(ContainerTest, OpenMissingFileFails) {
  std::string error;
  EXPECT_EQ(ContainerReader::open(path("nope.cdcc"), &error), nullptr);
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace cdc::store
