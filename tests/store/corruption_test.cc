// The detection guarantee of the container format (ISSUE acceptance
// criterion): corrupting ANY single byte of a sealed container must be
// detected by verify(), and for bytes inside a data frame the report must
// identify the offending stream and frame. The main test literally flips
// every byte of a small container, one at a time.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "store/container_reader.h"
#include "store/container_writer.h"

namespace cdc::store {
namespace {

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process scratch dir: ctest -j runs each test of this fixture as
    // its own process, and a shared directory would be remove_all'd by a
    // concurrent sibling mid-test.
    dir_ = std::filesystem::temp_directory_path() /
           ("cdc_corruption_test." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Writes a small container with three streams and five frames.
void build_sample(const std::string& file) {
  ContainerWriter writer(file);
  writer.append_frame({0, 1},
                      std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8});
  writer.append_frame({2, 1}, std::vector<std::uint8_t>{10, 20, 30});
  writer.append_frame({0, 1}, std::vector<std::uint8_t>{9, 9, 9, 9});
  writer.append_frame(
      {-1, 3}, std::vector<std::uint8_t>{0xAA, 0xBB, 0xCC, 0xDD, 0xEE});
  writer.append_frame({2, 1}, std::vector<std::uint8_t>{42});
  writer.seal();
}

TEST_F(CorruptionTest, EverySingleByteFlipIsDetected) {
  const std::string clean_path = path("clean.cdcc");
  build_sample(clean_path);
  const std::vector<std::uint8_t> clean = read_file(clean_path);
  ASSERT_GT(clean.size(), kContainerHeaderSize + kContainerFooterSize);

  // Map each data-region byte to the frame that owns it, using the clean
  // container's own index: frames tile [header, data_end) contiguously.
  const auto reader = ContainerReader::open(clean_path);
  ASSERT_NE(reader, nullptr);
  ASSERT_TRUE(reader->index_ok());
  const auto frames = reader->scan_good_frames();
  ASSERT_EQ(frames.size(), 5u);
  // data_end = file_size - footer - index_len (footer: crc u32 | len u64 |
  // magic u8[8], all little-endian).
  std::uint64_t index_len = 0;
  for (int b = 7; b >= 0; --b)
    index_len = (index_len << 8) | clean[clean.size() - 16 + b];
  const std::uint64_t data_end =
      clean.size() - kContainerFooterSize - index_len;
  ASSERT_EQ(frames.front().offset, kContainerHeaderSize);

  const std::string mutated_path = path("mutated.cdcc");
  for (std::size_t flip = 0; flip < clean.size(); ++flip) {
    std::vector<std::uint8_t> mutated = clean;
    mutated[flip] ^= 0xA5;
    write_file(mutated_path, mutated);

    const auto damaged = ContainerReader::open(mutated_path);
    ASSERT_NE(damaged, nullptr) << "open must tolerate damage, byte " << flip;
    const VerifyReport report = damaged->verify();
    EXPECT_FALSE(report.ok) << "flip of byte " << flip << " went undetected";

    if (flip < kContainerHeaderSize || flip >= data_end) continue;

    // Data-frame byte: the report must name the stream and frame that own
    // this offset (later frames may incur follow-on defects; that's fine).
    const ContainerReader::GoodFrame* owner = nullptr;
    for (const auto& frame : frames)
      if (frame.offset <= flip) owner = &frame;
    ASSERT_NE(owner, nullptr);
    bool identified = false;
    for (const FrameDefect& defect : report.bad_frames)
      identified |= defect.key_known && defect.key == owner->key &&
                    defect.seq == owner->seq;
    EXPECT_TRUE(identified)
        << "flip of frame byte " << flip << " not attributed to stream ("
        << owner->key.rank << "," << owner->key.callsite << ") frame "
        << owner->seq << "; report: " << report.summary();
  }
}

TEST_F(CorruptionTest, TruncationIsDetected) {
  const std::string clean_path = path("clean.cdcc");
  build_sample(clean_path);
  const std::vector<std::uint8_t> clean = read_file(clean_path);

  const std::string cut_path = path("cut.cdcc");
  // Every proper prefix is either unopenable or fails verification.
  for (std::size_t keep : {clean.size() - 1, clean.size() - 7,
                           clean.size() / 2, kContainerHeaderSize + 3,
                           std::size_t{4}, std::size_t{0}}) {
    write_file(cut_path,
               {clean.begin(), clean.begin() + static_cast<long>(keep)});
    std::string error;
    const auto damaged = ContainerReader::open(cut_path, &error);
    if (damaged == nullptr) {
      EXPECT_FALSE(error.empty());
      continue;
    }
    EXPECT_FALSE(damaged->verify().ok) << "truncated to " << keep;
  }
}

TEST_F(CorruptionTest, RepackDropsExactlyTheBadFrameAndVerifiesClean) {
  const std::string clean_path = path("clean.cdcc");
  build_sample(clean_path);
  std::vector<std::uint8_t> bytes = read_file(clean_path);

  // Corrupt one payload byte of the second frame ({2,1} seq 0).
  const auto reader = ContainerReader::open(clean_path);
  ASSERT_NE(reader, nullptr);
  const auto frames = reader->scan_good_frames();
  ASSERT_EQ(frames.size(), 5u);
  // Frames tile the data region, so frame 1 ends where frame 2 begins;
  // its last payload byte sits right before the trailing crc32.
  const std::size_t frame_end = static_cast<std::size_t>(frames[2].offset);
  const std::size_t victim_payload_byte = frame_end - 4 - 1;  // last payload
  bytes[victim_payload_byte] ^= 0xFF;

  const std::string hurt_path = path("hurt.cdcc");
  write_file(hurt_path, bytes);

  const std::string repacked_path = path("repacked.cdcc");
  const RepackResult result = repack_container(hurt_path, repacked_path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.frames_kept, 4u);
  EXPECT_EQ(result.frames_dropped, 1u);

  const auto repacked = ContainerReader::open(repacked_path);
  ASSERT_NE(repacked, nullptr);
  EXPECT_TRUE(repacked->verify().ok);
  // Undamaged streams survive byte-for-byte.
  EXPECT_EQ(repacked->read_stream({0, 1}), reader->read_stream({0, 1}));
  EXPECT_EQ(repacked->read_stream({-1, 3}), reader->read_stream({-1, 3}));
  // The damaged stream keeps only its intact frame ({2,1} seq 1 = {42}).
  EXPECT_EQ(repacked->read_stream({2, 1}), (std::vector<std::uint8_t>{42}));
}

TEST_F(CorruptionTest, ReadStreamAbortsOnCorruptFrame) {
  const std::string clean_path = path("clean.cdcc");
  build_sample(clean_path);
  std::vector<std::uint8_t> bytes = read_file(clean_path);
  bytes[kContainerHeaderSize + 3] ^= 0x01;  // inside the first frame
  const std::string hurt_path = path("hurt.cdcc");
  write_file(hurt_path, bytes);

  const auto damaged = ContainerReader::open(hurt_path);
  ASSERT_NE(damaged, nullptr);
  // Replay must never consume silently corrupt data.
  EXPECT_DEATH((void)damaged->read_stream({0, 1}), "");
}

TEST_F(CorruptionTest, EmptyContainerSalvagesToAnEmptyRecord) {
  // Regression: a recorder killed before its very first write leaves a
  // zero-byte container. Salvage must yield an empty record with a
  // diagnostic, not a failure (and certainly not an abort).
  const std::string empty_path = path("empty.cdcc");
  write_file(empty_path, {});

  std::string error;
  const auto reader = ContainerReader::open(empty_path, &error);
  ASSERT_NE(reader, nullptr) << error;
  EXPECT_FALSE(reader->header_ok());
  EXPECT_FALSE(reader->header_error().empty());
  EXPECT_TRUE(reader->scan_good_frames().empty());
  EXPECT_TRUE(reader->keys().empty());

  const RepackResult repack =
      repack_container(empty_path, path("empty_repacked.cdcc"));
  EXPECT_EQ(repack.frames_kept, 0u);
  EXPECT_EQ(repack.frames_dropped, 0u);
}

TEST_F(CorruptionTest, TruncatedIndexFooterStillSalvagesEveryFrame) {
  // Regression: a crash while the seal's index footer was being written
  // loses the index but not one byte of frame data — the sequential scan
  // must recover all five frames and repack them into a sealed container.
  const std::string clean_path = path("clean.cdcc");
  build_sample(clean_path);
  std::vector<std::uint8_t> bytes = read_file(clean_path);
  ASSERT_GT(bytes.size(), 6u);
  bytes.resize(bytes.size() - 6);  // rip through the fixed-size footer
  const std::string torn_path = path("torn.cdcc");
  write_file(torn_path, bytes);

  const auto reader = ContainerReader::open(torn_path);
  ASSERT_NE(reader, nullptr);
  EXPECT_TRUE(reader->header_ok());
  EXPECT_FALSE(reader->index_ok());
  EXPECT_FALSE(reader->index_error().empty());
  EXPECT_EQ(reader->scan_good_frames().size(), 5u);

  const std::string repacked_path = path("torn_repacked.cdcc");
  const RepackResult repack = repack_container(torn_path, repacked_path);
  EXPECT_TRUE(repack.ok) << repack.error;
  EXPECT_EQ(repack.frames_kept, 5u);
  EXPECT_EQ(repack.frames_dropped, 0u);
  const auto repacked = ContainerReader::open(repacked_path);
  ASSERT_NE(repacked, nullptr);
  EXPECT_TRUE(repacked->header_ok());
  EXPECT_TRUE(repacked->index_ok());
  EXPECT_TRUE(repacked->verify().ok);
}

}  // namespace
}  // namespace cdc::store
