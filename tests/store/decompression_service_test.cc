// DecompressionService: the replay-side twin of CompressionService. The
// contract under test: consumers run strictly in submission order (one at
// a time) no matter which worker finishes first, real DEFLATE payloads
// round-trip through the pool-recycled buffers, and steady-state decode
// reuses buffer capacity instead of allocating per job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "compress/deflate.h"
#include "store/decompression_service.h"
#include "support/rng.h"

namespace cdc::store {
namespace {

TEST(DecompressionServiceTest, CommitsInSubmissionOrderUnderContention) {
  DecompressionService::Config config;
  config.workers = 4;
  DecompressionService service(config);
  constexpr int kJobs = 200;
  std::vector<int> committed;
  for (int i = 0; i < kJobs; ++i) {
    service.submit(
        {i % 5, 1},
        [i](std::vector<std::uint8_t> reuse) {
          // Earlier jobs sleep longer: without the ticket gate, commits
          // would arrive wildly out of order.
          if (i % 7 == 0)
            std::this_thread::sleep_for(std::chrono::microseconds(300));
          reuse.clear();
          reuse.push_back(static_cast<std::uint8_t>(i));
          return reuse;
        },
        [&committed](const runtime::StreamKey& /*key*/,
                     std::span<const std::uint8_t> decoded) {
          ASSERT_EQ(decoded.size(), 1u);
          committed.push_back(decoded[0]);
        });
  }
  service.drain();
  ASSERT_EQ(committed.size(), static_cast<std::size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i)
    EXPECT_EQ(committed[static_cast<std::size_t>(i)],
              static_cast<std::uint8_t>(i));
  EXPECT_EQ(service.stats().jobs, static_cast<std::uint64_t>(kJobs));
}

TEST(DecompressionServiceTest, DeflateRoundTripAcrossWorkers) {
  support::Xoshiro256 rng(7);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 32; ++i) {
    std::vector<std::uint8_t> payload(64 + (i * 97) % 4000);
    for (auto& b : payload)
      b = static_cast<std::uint8_t>(rng() % (i % 3 == 0 ? 4 : 250));
    payloads.push_back(std::move(payload));
  }

  DecompressionService::Config config;
  config.workers = 3;
  DecompressionService service(config);
  std::vector<std::vector<std::uint8_t>> decoded_out;
  for (const auto& payload : payloads) {
    std::vector<std::uint8_t> encoded = compress::deflate_compress(payload);
    service.submit(
        {0, 1},
        [encoded = std::move(encoded)](std::vector<std::uint8_t> reuse) {
          auto decoded = compress::deflate_decompress(encoded);
          EXPECT_TRUE(decoded.has_value());
          reuse = std::move(*decoded);
          return reuse;
        },
        [&decoded_out](const runtime::StreamKey& /*key*/,
                       std::span<const std::uint8_t> decoded) {
          decoded_out.emplace_back(decoded.begin(), decoded.end());
        });
  }
  service.drain();
  ASSERT_EQ(decoded_out.size(), payloads.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(decoded_out[i], payloads[i]) << "payload " << i;
    total += payloads[i].size();
  }
  EXPECT_EQ(service.stats().decoded_bytes, total);
}

TEST(DecompressionServiceTest, SteadyStateRecyclesBuffers) {
  DecompressionService::Config config;
  config.workers = 2;
  config.pool_buffers = 8;
  DecompressionService service(config);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 8; ++i)
      service.submit(
          {0, 1},
          [](std::vector<std::uint8_t> reuse) {
            reuse.assign(1024, 0x5A);
            return reuse;
          },
          [](const runtime::StreamKey&, std::span<const std::uint8_t> d) {
            EXPECT_EQ(d.size(), 1024u);
          });
    service.drain();  // drain between rounds and keep submitting after
  }
  const DecompressionService::Stats stats = service.stats();
  EXPECT_EQ(stats.jobs, 160u);
  // After warm-up every acquire should be served from the pool.
  EXPECT_GT(stats.pool.hits, stats.pool.misses);
  EXPECT_GT(stats.pool.recycled_bytes, 0u);
}

}  // namespace
}  // namespace cdc::store
