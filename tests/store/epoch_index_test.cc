// The epoch index's safety contract: it is an accelerator, never a trust
// anchor. A sealed epoch-indexed container round-trips seeked windowed
// reads; ANY damage to the epoch section — truncated/oversized length
// field, CRC flip, frame-offset mismatch, torn magic — degrades windowed
// reads to a loud sequential fallback (store.container.epoch_fallbacks)
// with byte-identical results, fails verify(), and never produces wrong
// bytes. Containers written without epoch metadata (the pre-epoch format)
// stay fully healthy. The flip-every-byte sweep from corruption_test.cc is
// repeated here over a container WITH the new footer section.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "compress/crc32.h"
#include "obs/metrics.h"
#include "store/container_reader.h"
#include "store/container_writer.h"

namespace cdc::store {
namespace {

class EpochIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cdc_epoch_index_test." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Two streams, five epoch-carrying frames with distinct event counts.
void build_epoch_sample(const std::string& file) {
  ContainerWriter writer(file);
  writer.append_frame({0, 1}, std::vector<std::uint8_t>{1, 2, 3, 4},
                      runtime::EpochMeta{3, 1});
  writer.append_frame({2, 1}, std::vector<std::uint8_t>{10, 20, 30},
                      runtime::EpochMeta{5, 0});
  writer.append_frame({0, 1}, std::vector<std::uint8_t>{9, 9},
                      runtime::EpochMeta{2, 4});
  writer.append_frame({0, 1}, std::vector<std::uint8_t>{7, 7, 7},
                      runtime::EpochMeta{6, 0});
  writer.append_frame({2, 1}, std::vector<std::uint8_t>{42},
                      runtime::EpochMeta{1, 1});
  writer.seal();
}

/// File offsets of the epoch section, recovered from the two footers the
/// way the reader does it (both footers are `crc u32 | len u64 | magic`).
struct EpochRegion {
  std::size_t payload_at = 0;
  std::size_t payload_len = 0;
  std::size_t footer_at = 0;  ///< the 20-byte epoch footer
};

EpochRegion locate_epoch_section(const std::vector<std::uint8_t>& bytes) {
  EpochRegion region;
  std::uint64_t index_len = 0;
  for (int b = 7; b >= 0; --b)
    index_len = (index_len << 8) | bytes[bytes.size() - 16 + b];
  const std::size_t index_at =
      bytes.size() - kContainerFooterSize - index_len;
  region.footer_at = index_at - kEpochFooterSize;
  EXPECT_EQ(std::memcmp(bytes.data() + region.footer_at + 12,
                        kEpochFooterMagic, 8),
            0);
  std::uint64_t epoch_len = 0;
  for (int b = 7; b >= 0; --b)
    epoch_len = (epoch_len << 8) | bytes[region.footer_at + 4 + b];
  region.payload_len = static_cast<std::size_t>(epoch_len);
  region.payload_at = region.footer_at - region.payload_len;
  return region;
}

/// Restamps the epoch CRC after a surgical payload edit, so the edit is
/// caught by the cross-checks rather than the CRC.
void restamp_epoch_crc(std::vector<std::uint8_t>& bytes) {
  const EpochRegion region = locate_epoch_section(bytes);
  const std::uint32_t crc = compress::crc32(
      std::span<const std::uint8_t>(bytes).subspan(region.payload_at,
                                                   region.payload_len));
  for (int b = 0; b < 4; ++b)
    bytes[region.footer_at + static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(crc >> (8 * b));
}

std::uint64_t fallbacks() {
  return obs::counter("store.container.epoch_fallbacks").value();
}

/// Expected counter increment per loud fallback. With the obs layer
/// compiled out (-DCDC_OBS=OFF) recording is a deliberate no-op, so the
/// counter stays flat there while the fallback *behavior* (sequential
/// read, byte-identical bytes, failed verify) is still asserted.
std::uint64_t fallback_delta() { return obs::compiled_in() ? 1 : 0; }

/// The fallback contract every damage case must satisfy: container opens,
/// stream index is healthy, the epoch index is flagged, windowed reads
/// fall back loudly to the full (byte-identical) stream, verify() fails.
void expect_loud_fallback(const std::string& damaged_path,
                          const std::string& clean_path) {
  std::string error;
  const auto damaged = ContainerReader::open(damaged_path, &error);
  ASSERT_NE(damaged, nullptr) << error;
  EXPECT_TRUE(damaged->index_ok()) << damaged->index_error();
  EXPECT_FALSE(damaged->epoch_index_ok());
  EXPECT_FALSE(damaged->epoch_index_error().empty());
  EXPECT_EQ(damaged->find_epochs({0, 1}), nullptr);

  const auto clean = ContainerReader::open(clean_path);
  ASSERT_NE(clean, nullptr);
  for (const runtime::StreamKey key :
       {runtime::StreamKey{0, 1}, runtime::StreamKey{2, 1}}) {
    const std::uint64_t before = fallbacks();
    const ContainerReader::WindowRead window =
        damaged->read_stream_window(key, 1, 2);
    EXPECT_FALSE(window.seeked);
    EXPECT_EQ(window.first_epoch, 0u);
    EXPECT_EQ(fallbacks(), before + fallback_delta()) << "fallback must be loud";
    // Never wrong bytes: the fallback serves the whole healthy stream.
    EXPECT_EQ(window.bytes, clean->read_stream(key));
    EXPECT_EQ(damaged->read_stream(key), clean->read_stream(key));
  }

  const VerifyReport report = damaged->verify();
  EXPECT_FALSE(report.ok);
  bool flagged = false;
  for (const std::string& problem : report.container_errors)
    flagged |= problem.find("epoch index") != std::string::npos ||
               problem.find("does not end where the index begins") !=
                   std::string::npos;
  EXPECT_TRUE(flagged) << report.summary();
  EXPECT_TRUE(report.bad_frames.empty()) << "frames themselves are intact";
}

TEST_F(EpochIndexTest, RoundTripServesSeekedWindows) {
  const std::string file = path("clean.cdcc");
  build_epoch_sample(file);
  const auto reader = ContainerReader::open(file);
  ASSERT_NE(reader, nullptr);
  EXPECT_TRUE(reader->index_ok());
  EXPECT_TRUE(reader->epoch_index_present());
  EXPECT_TRUE(reader->epoch_index_ok()) << reader->epoch_index_error();
  EXPECT_TRUE(reader->verify().ok);

  const StreamEpochIndex* epochs = reader->find_epochs({0, 1});
  ASSERT_NE(epochs, nullptr);
  ASSERT_EQ(epochs->epochs.size(), 3u);
  EXPECT_EQ(epochs->epochs[0].matched, 3u);
  EXPECT_EQ(epochs->epochs[0].unmatched, 1u);
  EXPECT_EQ(epochs->epochs[2].matched, 6u);
  EXPECT_EQ(epochs->matched_before(0), 0u);
  EXPECT_EQ(epochs->matched_before(2), 5u);
  EXPECT_EQ(epochs->matched_before(99), 11u);  // clamped to the stream end
  // The epoch offsets mirror the stream index (the redundancy the reader
  // cross-validates).
  const StreamIndexEntry* entry = reader->find({0, 1});
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->frame_offsets.size(), 3u);
  for (std::size_t e = 0; e < 3; ++e)
    EXPECT_EQ(epochs->epochs[e].frame_offset, entry->frame_offsets[e]);

  // Seeked window read: exactly the middle frame, no fallback.
  const std::uint64_t before = fallbacks();
  const ContainerReader::WindowRead window =
      reader->read_stream_window({0, 1}, 1, 2);
  EXPECT_TRUE(window.seeked);
  EXPECT_EQ(window.first_epoch, 1u);
  EXPECT_EQ(window.bytes, (std::vector<std::uint8_t>{9, 9}));
  EXPECT_EQ(fallbacks(), before);
  // Out-of-range bounds clamp instead of aborting.
  EXPECT_TRUE(reader->read_stream_window({0, 1}, 2, 99).bytes ==
              (std::vector<std::uint8_t>{7, 7, 7}));
  EXPECT_TRUE(reader->read_stream_window({0, 1}, 7, 9).bytes.empty());
}

TEST_F(EpochIndexTest, ContainersWithoutEpochMetadataStayHealthy) {
  // The pre-epoch format: no metadata, no section — and no damage report.
  const std::string file = path("old.cdcc");
  {
    ContainerWriter writer(file);
    writer.append_frame({0, 1}, std::vector<std::uint8_t>{1, 2, 3});
    writer.append_frame({0, 1}, std::vector<std::uint8_t>{4, 5});
    writer.seal();
  }
  const auto reader = ContainerReader::open(file);
  ASSERT_NE(reader, nullptr);
  EXPECT_FALSE(reader->epoch_index_present());
  EXPECT_FALSE(reader->epoch_index_ok());
  EXPECT_TRUE(reader->verify().ok) << "absence is not damage";
  const std::uint64_t before = fallbacks();
  const ContainerReader::WindowRead window =
      reader->read_stream_window({0, 1}, 0, 1);
  EXPECT_FALSE(window.seeked);
  EXPECT_EQ(window.bytes, reader->read_stream({0, 1}));
  EXPECT_EQ(fallbacks(), before + fallback_delta());
}

TEST_F(EpochIndexTest, MixedMetadataOmitsTheIndexForThatStream) {
  // One frame without metadata poisons only its own stream's epochs; the
  // writer drops that stream from the section rather than lying.
  const std::string file = path("mixed.cdcc");
  {
    ContainerWriter writer(file);
    writer.append_frame({0, 1}, std::vector<std::uint8_t>{1},
                        runtime::EpochMeta{1, 0});
    writer.append_frame({5, 2}, std::vector<std::uint8_t>{2});  // no meta
    writer.append_frame({0, 1}, std::vector<std::uint8_t>{3},
                        runtime::EpochMeta{2, 0});
    writer.seal();
  }
  const auto reader = ContainerReader::open(file);
  ASSERT_NE(reader, nullptr);
  EXPECT_TRUE(reader->epoch_index_ok()) << reader->epoch_index_error();
  EXPECT_TRUE(reader->verify().ok);
  EXPECT_NE(reader->find_epochs({0, 1}), nullptr);
  EXPECT_EQ(reader->find_epochs({5, 2}), nullptr);
  EXPECT_TRUE(reader->read_stream_window({0, 1}, 0, 1).seeked);
  EXPECT_FALSE(reader->read_stream_window({5, 2}, 0, 1).seeked);
}

TEST_F(EpochIndexTest, EpochCrcFlipFallsBackLoudly) {
  const std::string clean_path = path("clean.cdcc");
  build_epoch_sample(clean_path);
  std::vector<std::uint8_t> bytes = read_file(clean_path);
  bytes[locate_epoch_section(bytes).footer_at + 1] ^= 0xA5;  // crc field
  const std::string hurt_path = path("crc_flip.cdcc");
  write_file(hurt_path, bytes);
  expect_loud_fallback(hurt_path, clean_path);
}

TEST_F(EpochIndexTest, EpochPayloadDamageFallsBackLoudly) {
  const std::string clean_path = path("clean.cdcc");
  build_epoch_sample(clean_path);
  std::vector<std::uint8_t> bytes = read_file(clean_path);
  const EpochRegion region = locate_epoch_section(bytes);
  bytes[region.payload_at + region.payload_len / 2] ^= 0xFF;
  const std::string hurt_path = path("payload_flip.cdcc");
  write_file(hurt_path, bytes);
  expect_loud_fallback(hurt_path, clean_path);
}

TEST_F(EpochIndexTest, LengthFieldDamageFallsBackLoudly) {
  // A torn length field either points the payload at garbage (CRC catches
  // it) or claims more bytes than the file holds (the bound check does).
  const std::string clean_path = path("clean.cdcc");
  build_epoch_sample(clean_path);
  for (const std::size_t victim : {std::size_t{4}, std::size_t{10}}) {
    std::vector<std::uint8_t> bytes = read_file(clean_path);
    bytes[locate_epoch_section(bytes).footer_at + victim] ^= 0xFF;
    const std::string hurt_path = path("len_flip.cdcc");
    write_file(hurt_path, bytes);
    expect_loud_fallback(hurt_path, clean_path);
  }
}

TEST_F(EpochIndexTest, FrameOffsetMismatchIsRejected) {
  // A syntactically valid epoch section whose offsets disagree with the
  // stream index — the CRC is deliberately restamped so only the
  // cross-validation stands between the seek and wrong frames.
  const std::string clean_path = path("clean.cdcc");
  build_epoch_sample(clean_path);
  std::vector<std::uint8_t> bytes = read_file(clean_path);
  const EpochRegion region = locate_epoch_section(bytes);
  // Payload (all single-byte varints at this size): stream_count, then per
  // stream rank/callsite/epoch_count followed by 3 varints per epoch. The
  // first stream's first offset delta is the 5th payload byte.
  const std::size_t first_delta = region.payload_at + 4;
  ASSERT_LT(bytes[first_delta], 0x40u) << "expected a single-byte varint";
  bytes[first_delta] ^= 0x01;
  restamp_epoch_crc(bytes);
  const std::string hurt_path = path("offset_skew.cdcc");
  write_file(hurt_path, bytes);

  const auto damaged = ContainerReader::open(hurt_path);
  ASSERT_NE(damaged, nullptr);
  EXPECT_EQ(damaged->epoch_index_error(),
            "epoch index frame offset mismatch");
  expect_loud_fallback(hurt_path, clean_path);
}

TEST_F(EpochIndexTest, TornEpochMagicDegradesToSequentialRead) {
  // With the magic gone the section is unrecognizable — the reader treats
  // the container as pre-epoch (present=false), windowed reads fall back,
  // and verify() still flags the orphaned bytes via the tiling check.
  const std::string clean_path = path("clean.cdcc");
  build_epoch_sample(clean_path);
  std::vector<std::uint8_t> bytes = read_file(clean_path);
  bytes[locate_epoch_section(bytes).footer_at + 12] ^= 0xA5;
  const std::string hurt_path = path("magic_flip.cdcc");
  write_file(hurt_path, bytes);

  const auto damaged = ContainerReader::open(hurt_path);
  ASSERT_NE(damaged, nullptr);
  EXPECT_TRUE(damaged->index_ok());
  EXPECT_FALSE(damaged->epoch_index_present());
  EXPECT_FALSE(damaged->epoch_index_ok());
  const std::uint64_t before = fallbacks();
  const auto window = damaged->read_stream_window({0, 1}, 1, 2);
  EXPECT_FALSE(window.seeked);
  EXPECT_EQ(fallbacks(), before + fallback_delta());
  const auto clean = ContainerReader::open(clean_path);
  ASSERT_NE(clean, nullptr);
  EXPECT_EQ(window.bytes, clean->read_stream({0, 1}));
  EXPECT_FALSE(damaged->verify().ok);
}

TEST_F(EpochIndexTest, EverySingleByteFlipIsDetected) {
  // The corruption_test.cc sweep over the NEW layout: with the epoch
  // section between frames and index, flipping any byte of the file —
  // including every byte of the epoch payload and its footer — must fail
  // verification.
  const std::string clean_path = path("clean.cdcc");
  build_epoch_sample(clean_path);
  const std::vector<std::uint8_t> clean = read_file(clean_path);
  ASSERT_GT(clean.size(),
            kContainerHeaderSize + kEpochFooterSize + kContainerFooterSize);

  const std::string mutated_path = path("mutated.cdcc");
  for (std::size_t flip = 0; flip < clean.size(); ++flip) {
    std::vector<std::uint8_t> mutated = clean;
    mutated[flip] ^= 0xA5;
    write_file(mutated_path, mutated);
    const auto damaged = ContainerReader::open(mutated_path);
    ASSERT_NE(damaged, nullptr) << "open must tolerate damage, byte " << flip;
    EXPECT_FALSE(damaged->verify().ok)
        << "flip of byte " << flip << " went undetected";
  }
}

}  // namespace
}  // namespace cdc::store
