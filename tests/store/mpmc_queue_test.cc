#include "store/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace cdc::store {
namespace {

TEST(BoundedMpmcQueue, FifoSingleThread) {
  BoundedMpmcQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  EXPECT_EQ(queue.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(BoundedMpmcQueue, CloseDrainsBacklogThenFails) {
  BoundedMpmcQueue<int> queue(8);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.pop(out));
}

TEST(BoundedMpmcQueue, FullQueueBlocksPushUntilPop) {
  BoundedMpmcQueue<int> queue(2);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  std::atomic<bool> third_pushed{false};
  std::jthread pusher([&] {
    EXPECT_TRUE(queue.push(3));
    third_pushed.store(true);
  });
  // The pusher must be blocked on the capacity bound.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  pusher.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(BoundedMpmcQueue, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedMpmcQueue<int> queue(16);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  {
    std::vector<std::jthread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        int value = 0;
        while (queue.pop(value)) {
          sum.fetch_add(value);
          popped.fetch_add(1);
        }
      });
    }
    {
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&queue, p] {
          for (int i = 0; i < kPerProducer; ++i)
            EXPECT_TRUE(queue.push(p * kPerProducer + i));
        });
      }
    }
    queue.close();
  }
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace cdc::store
