#include "store/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace cdc::store {
namespace {

TEST(BoundedMpmcQueue, FifoSingleThread) {
  BoundedMpmcQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  EXPECT_EQ(queue.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(BoundedMpmcQueue, CloseDrainsBacklogThenFails) {
  BoundedMpmcQueue<int> queue(8);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.pop(out));
}

TEST(BoundedMpmcQueue, FullQueueBlocksPushUntilPop) {
  BoundedMpmcQueue<int> queue(2);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  std::atomic<bool> third_pushed{false};
  std::jthread pusher([&] {
    EXPECT_TRUE(queue.push(3));
    third_pushed.store(true);
  });
  // The pusher must be blocked on the capacity bound.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  pusher.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(BoundedMpmcQueue, TryPushFullAndClosed) {
  BoundedMpmcQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  // Full: rejected without blocking (the event-loop backpressure seam).
  EXPECT_FALSE(queue.try_push(3));
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_TRUE(queue.try_push(3));
  queue.close();
  EXPECT_FALSE(queue.try_push(4));
  EXPECT_TRUE(queue.closed());
  // The backlog enqueued before close() stays poppable.
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(queue.pop(out));
}

TEST(BoundedMpmcQueue, RejectedTryPushLeavesValueIntact) {
  // The backpressure contract: a try_push refused on full (or closed)
  // must leave the caller's item untouched so it can be parked and
  // retried — a by-value signature would silently destroy it (the bug
  // that lost parked ingest batches).
  BoundedMpmcQueue<std::vector<int>> queue(1);
  EXPECT_TRUE(queue.try_push({1, 2, 3}));
  std::vector<int> parked{4, 5, 6};
  EXPECT_FALSE(queue.try_push(std::move(parked)));
  EXPECT_EQ(parked, (std::vector<int>{4, 5, 6}));
  std::vector<int> out;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_TRUE(queue.try_push(std::move(parked)));  // retry succeeds
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, (std::vector<int>{4, 5, 6}));
  queue.close();
  std::vector<int> after{7};
  EXPECT_FALSE(queue.try_push(std::move(after)));
  EXPECT_EQ(after, (std::vector<int>{7}));
}

TEST(BoundedMpmcQueue, CloseIsIdempotentAndSticky) {
  BoundedMpmcQueue<int> queue(4);
  queue.close();
  queue.close();
  EXPECT_FALSE(queue.push(1));
  EXPECT_FALSE(queue.try_push(1));
  int out = 0;
  // A popper arriving after the drain observes closed-and-empty at once.
  EXPECT_FALSE(queue.pop(out));
}

TEST(BoundedMpmcQueue, BlockedPoppersWakeExactlyOnceOnClose) {
  // N poppers block on an empty queue; close() must wake each exactly
  // once — every popper either wins one of the backlog items pushed just
  // before close, or observes closed-and-empty. No popper hangs, no item
  // is delivered twice.
  constexpr int kPoppers = 6;
  constexpr int kBacklog = 3;  // fewer items than poppers
  BoundedMpmcQueue<int> queue(8);
  std::atomic<int> got_item{0};
  std::atomic<int> got_closed{0};
  std::vector<std::jthread> poppers;
  for (int p = 0; p < kPoppers; ++p) {
    poppers.emplace_back([&] {
      int value = 0;
      if (queue.pop(value))
        got_item.fetch_add(1);
      else
        got_closed.fetch_add(1);
    });
  }
  // Give the poppers time to block on the empty queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < kBacklog; ++i) EXPECT_TRUE(queue.push(i));
  queue.close();
  for (auto& t : poppers) t.join();  // a missed wake-up hangs here
  EXPECT_EQ(got_item.load() + got_closed.load(), kPoppers);
  EXPECT_EQ(got_item.load(), kBacklog);
  EXPECT_EQ(got_closed.load(), kPoppers - kBacklog);
}

TEST(BoundedMpmcQueue, CloseWhileProducerBlockedOnFull) {
  BoundedMpmcQueue<int> queue(1);
  EXPECT_TRUE(queue.push(1));
  std::atomic<bool> push_result{true};
  std::jthread pusher([&] { push_result.store(queue.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  pusher.join();
  // The blocked push was rejected, not half-enqueued.
  EXPECT_FALSE(push_result.load());
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(queue.pop(out));
}

TEST(BoundedMpmcQueue, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedMpmcQueue<int> queue(16);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  {
    std::vector<std::jthread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        int value = 0;
        while (queue.pop(value)) {
          sum.fetch_add(value);
          popped.fetch_add(1);
        }
      });
    }
    {
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&queue, p] {
          for (int i = 0; i < kPerProducer; ++i)
            EXPECT_TRUE(queue.push(p * kPerProducer + i));
        });
      }
    }
    queue.close();
  }
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace cdc::store
