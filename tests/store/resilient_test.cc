// The retry path pinned down: transient faults retried to a bit-identical
// record, exhausted retries quarantining exactly the failed frames (with
// their stream positions, round-tripped through the `.cdcq` sidecar), and
// total backoff inside its analytic bound.
#include "store/resilient.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "runtime/storage.h"

namespace cdc::store {
namespace {

runtime::StreamKey key_of(minimpi::Rank rank, minimpi::CallsiteId callsite) {
  runtime::StreamKey key;
  key.rank = rank;
  key.callsite = callsite;
  return key;
}

std::vector<std::uint8_t> frame(std::uint8_t tag, std::size_t len = 8) {
  std::vector<std::uint8_t> bytes(len);
  for (std::size_t i = 0; i < len; ++i)
    bytes[i] = static_cast<std::uint8_t>(tag + i);
  return bytes;
}

std::string scratch_cdcq() {
  static int counter = 0;
  return (std::filesystem::temp_directory_path() /
          ("cdc_resilient_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".cdcq"))
      .string();
}

/// Delegates to a MemoryStore but throws on every sync() — the one
/// scenario IoFaultStore cannot produce (its sync faults always clear on
/// the immediate retry).
class BrokenSyncStore final : public runtime::RecordStore {
 public:
  void append(const runtime::StreamKey& key,
              std::span<const std::uint8_t> bytes) override {
    inner_.append(key, bytes);
  }
  [[nodiscard]] std::vector<std::uint8_t> read(
      const runtime::StreamKey& key) const override {
    return inner_.read(key);
  }
  [[nodiscard]] std::vector<runtime::StreamKey> keys() const override {
    return inner_.keys();
  }
  [[nodiscard]] std::uint64_t total_bytes() const override {
    return inner_.total_bytes();
  }
  [[nodiscard]] std::uint64_t rank_bytes(minimpi::Rank rank) const override {
    return inner_.rank_bytes(rank);
  }
  void sync() override { throw runtime::IoError("sync always fails"); }

 private:
  runtime::MemoryStore inner_;
};

TEST(RetryingStore, TransientFaultsRetryToABitIdenticalRecord) {
  // Every third append faults and fails twice before succeeding (k=2 <
  // max_retries): the retried record must match the fault-free one byte
  // for byte, with nothing quarantined.
  runtime::MemoryStore clean;
  runtime::MemoryStore base;
  IoFaultPlan plan;
  plan.eio_every_n = 3;
  plan.failures_per_fault = 2;
  IoFaultStore faulty(&base, plan);
  RetryingStore retrying(&faulty);

  const auto a = key_of(0, 1);
  const auto b = key_of(3, 2);
  for (std::uint8_t i = 0; i < 12; ++i) {
    const auto bytes = frame(i);
    clean.append(i % 2 == 0 ? a : b, bytes);
    retrying.append(i % 2 == 0 ? a : b, bytes);
  }

  EXPECT_GT(retrying.stats().retries, 0u);
  EXPECT_GT(retrying.stats().recoveries, 0u);
  EXPECT_EQ(retrying.stats().quarantined, 0u);
  EXPECT_TRUE(retrying.quarantined().empty());
  ASSERT_EQ(clean.keys(), base.keys());
  for (const runtime::StreamKey& key : clean.keys())
    EXPECT_EQ(clean.read(key), base.read(key));
}

TEST(RetryingStore, ExhaustedRetriesQuarantineExactlyTheFailedFrames) {
  // Hard faults on the 4th and 8th distinct appends: those two frames —
  // and only those — are quarantined, everything else lands in the store,
  // and each quarantined frame carries the stream position it was lost at
  // (3 and 6 successful appends had preceded them).
  runtime::MemoryStore base;
  IoFaultPlan plan;
  plan.hard_every_n = 4;
  IoFaultStore faulty(&base, plan);
  RetryPolicy policy;
  policy.max_retries = 2;  // hard faults never clear; fail fast
  const std::string sidecar = scratch_cdcq();
  RetryingStore retrying(&faulty, policy, sidecar);

  const auto key = key_of(1, 7);
  std::vector<std::uint8_t> survivors;
  for (std::uint8_t i = 0; i < 10; ++i) {
    const auto bytes = frame(i);
    retrying.append(key, bytes);
    if (i != 3 && i != 7)  // the 4th and 8th appends are lost
      survivors.insert(survivors.end(), bytes.begin(), bytes.end());
  }

  EXPECT_EQ(retrying.stats().quarantined, 2u);
  ASSERT_EQ(retrying.quarantined().size(), 2u);
  EXPECT_EQ(retrying.quarantined()[0].bytes, frame(3));
  EXPECT_EQ(retrying.quarantined()[0].seq, 3u);
  EXPECT_EQ(retrying.quarantined()[1].bytes, frame(7));
  EXPECT_EQ(retrying.quarantined()[1].seq, 6u);  // one frame already lost
  EXPECT_EQ(base.read(key), survivors);

  // The `.cdcq` sidecar round-trips keys, stream positions, and payloads —
  // and a trailing corrupt entry must not take the intact ones with it.
  const auto parsed = read_quarantine(sidecar);
  ASSERT_EQ(parsed.size(), 2u);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].key, retrying.quarantined()[i].key);
    EXPECT_EQ(parsed[i].seq, retrying.quarantined()[i].seq);
    EXPECT_EQ(parsed[i].bytes, retrying.quarantined()[i].bytes);
  }
  {
    std::ofstream out(sidecar, std::ios::binary | std::ios::app);
    const char garbage[] = "\xf8junk";
    out.write(garbage, sizeof garbage - 1);
  }
  EXPECT_EQ(read_quarantine(sidecar).size(), 2u);
  std::filesystem::remove(sidecar);
}

TEST(RetryingStore, BackoffStaysWithinItsAnalyticBound) {
  // Worst-case retry pressure: every append faults and only the last
  // attempt succeeds. Total charged backoff must stay under
  // max_total_backoff_ms() per append and still be exponential (nonzero).
  runtime::MemoryStore base;
  RetryPolicy policy;  // defaults: 5 retries, jittered exponential
  IoFaultPlan plan;
  plan.eio_every_n = 1;
  plan.failures_per_fault = policy.max_retries;
  IoFaultStore faulty(&base, plan);
  RetryingStore retrying(&faulty, policy);

  const auto key = key_of(2, 1);
  constexpr std::uint64_t kAppends = 6;
  for (std::uint8_t i = 0; i < kAppends; ++i) retrying.append(key, frame(i));

  EXPECT_EQ(retrying.stats().quarantined, 0u);
  EXPECT_EQ(retrying.stats().retries,
            kAppends * static_cast<std::uint64_t>(policy.max_retries));
  EXPECT_GT(retrying.stats().backoff_ms_total, 0.0);
  EXPECT_LE(retrying.stats().backoff_ms_total,
            policy.max_total_backoff_ms() * static_cast<double>(kAppends));
}

TEST(RetryingStore, BackoffIsDeterministicPerJitterSeed) {
  const auto run_once = [](std::uint64_t seed) {
    runtime::MemoryStore base;
    IoFaultPlan plan;
    plan.eio_every_n = 2;
    plan.failures_per_fault = 3;
    IoFaultStore faulty(&base, plan);
    RetryPolicy policy;
    policy.jitter_seed = seed;
    RetryingStore retrying(&faulty, policy);
    for (std::uint8_t i = 0; i < 8; ++i)
      retrying.append(key_of(0, 1), frame(i));
    return retrying.stats().backoff_ms_total;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(RetryingStore, SyncExhaustionIsAbsorbedNotThrown) {
  // A durability barrier that never succeeds weakens the guarantee but
  // must not kill the run: the failure is counted and sync() returns.
  BrokenSyncStore broken;
  RetryPolicy policy;
  policy.max_retries = 2;
  RetryingStore retrying(&broken, policy);
  retrying.append(key_of(0, 1), frame(1));
  EXPECT_NO_THROW(retrying.sync());
  EXPECT_EQ(retrying.stats().sync_failures, 1u);
  EXPECT_EQ(retrying.stats().quarantined, 0u);
}

TEST(IoFaultStore, TransientFaultsClearAfterTheConfiguredAttempts) {
  runtime::MemoryStore base;
  IoFaultPlan plan;
  plan.eio_every_n = 1;
  plan.failures_per_fault = 2;
  IoFaultStore faulty(&base, plan);
  const auto key = key_of(0, 1);
  const auto bytes = frame(9);
  EXPECT_THROW(faulty.append(key, bytes), runtime::IoError);
  EXPECT_THROW(faulty.append(key, bytes), runtime::IoError);
  faulty.append(key, bytes);  // third attempt of the same operation
  EXPECT_EQ(base.read(key), bytes);
  EXPECT_EQ(faulty.stats().transient_throws, 2u);
}

}  // namespace
}  // namespace cdc::store
