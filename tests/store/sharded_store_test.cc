#include "store/sharded_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "compress/crc32.h"
#include "support/binary.h"

namespace cdc::store {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> list) {
  return list;
}

TEST(ShardedStore, AppendReadBack) {
  ShardedStore store;
  const runtime::StreamKey a{0, 1};
  const runtime::StreamKey b{3, 2};
  store.append(a, bytes({1, 2, 3}));
  store.append(a, bytes({4}));
  store.append(b, bytes({9, 9}));

  EXPECT_EQ(store.read(a), bytes({1, 2, 3, 4}));
  EXPECT_EQ(store.read(b), bytes({9, 9}));
  EXPECT_TRUE(store.read(runtime::StreamKey{5, 5}).empty());
  EXPECT_EQ(store.total_bytes(), 6u);
  EXPECT_EQ(store.rank_bytes(0), 4u);
  EXPECT_EQ(store.rank_bytes(3), 2u);
  EXPECT_EQ(store.rank_bytes(7), 0u);
}

TEST(ShardedStore, KeysAreSortedAcrossShards) {
  ShardedStore store(4);
  for (std::int32_t rank = 7; rank >= 0; --rank)
    store.append(runtime::StreamKey{rank, 0}, bytes({1}));
  const auto keys = store.keys();
  ASSERT_EQ(keys.size(), 8u);
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(keys[i].rank, static_cast<std::int32_t>(i));
}

TEST(ShardedStore, HashSpreadsStreamsOverShards) {
  ShardedStore store(16);
  std::vector<bool> used(16, false);
  for (std::int32_t rank = 0; rank < 64; ++rank)
    for (std::uint32_t callsite = 0; callsite < 4; ++callsite)
      used[store.shard_of(runtime::StreamKey{rank, callsite})] = true;
  // 256 streams over 16 shards: a fixed-point-free hash must hit them all.
  EXPECT_EQ(std::count(used.begin(), used.end(), true), 16);
}

TEST(ShardedStore, SingleShardDegeneratesToMemoryStore) {
  ShardedStore store(1);
  store.append(runtime::StreamKey{0, 0}, bytes({1}));
  store.append(runtime::StreamKey{1, 1}, bytes({2, 3}));
  EXPECT_EQ(store.total_bytes(), 3u);
  EXPECT_EQ(store.keys().size(), 2u);
}

// ISSUE satellite: 8+ producer threads appending to overlapping shards,
// then full CRC-verified readback. Each append is a self-delimiting
// record [thread u8 | len u8 | payload | crc32(payload)]; appends are
// atomic per stream, so the concatenation must parse back into exactly
// the records written, every CRC intact.
TEST(ShardedStore, ConcurrentProducersStressWithCrcReadback) {
  constexpr int kThreads = 8;
  constexpr int kAppendsPerThread = 400;
  constexpr std::uint32_t kStreams = 24;  // overlapping: 3 streams/shard avg

  ShardedStore store(8);
  {
    std::vector<std::jthread> producers;
    for (int t = 0; t < kThreads; ++t) {
      producers.emplace_back([&store, t] {
        for (int i = 0; i < kAppendsPerThread; ++i) {
          // All threads hammer the same small key set.
          const runtime::StreamKey key{
              static_cast<std::int32_t>((t + i) % 3),
              static_cast<std::uint32_t>(i) % (kStreams / 3)};
          std::vector<std::uint8_t> payload(
              1 + static_cast<std::size_t>((t * 37 + i) % 23));
          for (std::size_t b = 0; b < payload.size(); ++b)
            payload[b] = static_cast<std::uint8_t>(t * 31 + i + b);
          support::ByteWriter record;
          record.u8(static_cast<std::uint8_t>(t));
          record.u8(static_cast<std::uint8_t>(payload.size()));
          record.bytes(payload);
          record.u32(compress::crc32(payload));
          store.append(key, record.view());
        }
      });
    }
  }

  int records = 0;
  for (const runtime::StreamKey& key : store.keys()) {
    const auto stream = store.read(key);
    support::ByteReader in(stream);
    while (!in.exhausted()) {
      const std::uint8_t thread_id = in.u8();
      EXPECT_LT(thread_id, kThreads);
      const std::uint8_t len = in.u8();
      std::span<const std::uint8_t> payload;
      ASSERT_TRUE(in.try_bytes(len, payload));
      EXPECT_EQ(in.u32(), compress::crc32(payload));  // no torn appends
      ++records;
    }
  }
  EXPECT_EQ(records, kThreads * kAppendsPerThread);
}

}  // namespace
}  // namespace cdc::store
