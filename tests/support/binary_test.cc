#include "support/binary.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "support/rng.h"

namespace cdc::support {
namespace {

TEST(Zigzag, MapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
}

TEST(Zigzag, RoundTripsExtremes) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(ByteWriter, FixedWidthLittleEndian) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ull);
  const auto view = w.view();
  ASSERT_EQ(view.size(), 15u);
  EXPECT_EQ(view[0], 0xab);
  EXPECT_EQ(view[1], 0x34);
  EXPECT_EQ(view[2], 0x12);
  EXPECT_EQ(view[3], 0xef);
  EXPECT_EQ(view[14], 0x01);
}

TEST(ByteReaderWriter, PrimitiveRoundTrip) {
  ByteWriter w;
  w.u8(7);
  w.u32(123456789u);
  w.u64(0xffffffffffffffffull);
  w.f64(3.14159);
  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 123456789u);
  EXPECT_EQ(r.u64(), 0xffffffffffffffffull);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(Varint, SingleByteValues) {
  ByteWriter w;
  w.varint(0);
  w.varint(127);
  EXPECT_EQ(w.size(), 2u);
}

TEST(Varint, MultiByteBoundaries) {
  ByteWriter w;
  w.varint(128);
  EXPECT_EQ(w.size(), 2u);
  w.varint(16384);
  EXPECT_EQ(w.size(), 5u);
}

TEST(Varint, RoundTripRandom) {
  Xoshiro256 rng(42);
  ByteWriter w;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix of small and large magnitudes.
    const std::uint64_t v = rng() >> (rng() % 64);
    values.push_back(v);
    w.varint(v);
  }
  ByteReader r(w.view());
  for (const std::uint64_t v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(Svarint, RoundTripRandomSigned) {
  Xoshiro256 rng(43);
  ByteWriter w;
  std::vector<std::int64_t> values;
  for (int i = 0; i < 1000; ++i) {
    const auto v =
        static_cast<std::int64_t>(rng() >> (rng() % 64)) * ((i % 2) ? 1 : -1);
    values.push_back(v);
    w.svarint(v);
  }
  ByteReader r(w.view());
  for (const std::int64_t v : values) EXPECT_EQ(r.svarint(), v);
}

TEST(ByteReader, TruncatedVarintFails) {
  const std::uint8_t bytes[] = {0x80, 0x80};  // unterminated
  ByteReader r(bytes);
  std::uint64_t out = 0;
  EXPECT_FALSE(r.try_varint(out));
}

TEST(ByteReader, TruncatedFixedFails) {
  const std::uint8_t bytes[] = {1, 2, 3};
  ByteReader r(bytes);
  std::uint32_t out = 0;
  EXPECT_FALSE(r.try_u32(out));
}

TEST(ByteReader, SizedBytesRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
  w.sized_bytes(payload);
  ByteReader r(w.view());
  std::span<const std::uint8_t> out;
  ASSERT_TRUE(r.try_sized_bytes(out));
  EXPECT_EQ(std::vector<std::uint8_t>(out.begin(), out.end()), payload);
}

TEST(ByteReader, SizedBytesRejectsOverlongLength) {
  ByteWriter w;
  w.varint(1000);  // claims 1000 bytes, none follow
  ByteReader r(w.view());
  std::span<const std::uint8_t> out;
  EXPECT_FALSE(r.try_sized_bytes(out));
}

}  // namespace
}  // namespace cdc::support
