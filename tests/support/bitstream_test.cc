#include "support/bitstream.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.h"

namespace cdc::support {
namespace {

TEST(BitStream, LsbFirstPacking) {
  BitWriter w;
  w.write(0b1, 1);
  w.write(0b01, 2);   // bits 1,0
  w.write(0b10110, 5);
  const auto bytes = std::move(w).finish();
  ASSERT_EQ(bytes.size(), 1u);
  // Bit layout (LSB first): 1, then 1,0, then 0,1,1,0,1.
  EXPECT_EQ(bytes[0], 0b10110011);
}

TEST(BitStream, RoundTripRandomFields) {
  Xoshiro256 rng(7);
  BitWriter w;
  std::vector<std::pair<std::uint32_t, int>> fields;
  for (int i = 0; i < 2000; ++i) {
    const int count = 1 + static_cast<int>(rng.bounded(32));
    const std::uint32_t value =
        static_cast<std::uint32_t>(rng()) &
        (count == 32 ? ~0u : ((1u << count) - 1));
    fields.emplace_back(value, count);
    w.write(value, count);
  }
  const auto bytes = std::move(w).finish();
  BitReader r(bytes);
  for (const auto& [value, count] : fields) {
    std::uint32_t out = 0;
    ASSERT_TRUE(r.try_read(count, out));
    EXPECT_EQ(out, value);
  }
}

TEST(BitStream, HuffmanCodesAreMsbFirst) {
  BitWriter w;
  w.write_huffman(0b110, 3);  // should emit 1,1,0 (MSB of code first)
  const auto bytes = std::move(w).finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b011);  // LSB-first packing of the sequence 1,1,0
}

TEST(BitStream, AlignedByteReads) {
  BitWriter w;
  w.write(0b101, 3);
  w.align_to_byte();
  w.append_byte(0xAA);
  w.append_byte(0xBB);
  const auto bytes = std::move(w).finish();

  BitReader r(bytes);
  std::uint32_t head = 0;
  ASSERT_TRUE(r.try_read(3, head));
  EXPECT_EQ(head, 0b101u);
  std::span<const std::uint8_t> aligned;
  ASSERT_TRUE(r.try_read_aligned_bytes(2, aligned));
  EXPECT_EQ(aligned[0], 0xAA);
  EXPECT_EQ(aligned[1], 0xBB);
}

TEST(BitStream, AlignedReadGivesBackBufferedBytes) {
  // Force the reader to buffer more than one byte before aligning.
  BitWriter w;
  w.write(0x3FFFF, 18);  // 18 bits — reader will buffer 3 bytes
  w.align_to_byte();
  w.append_byte(0x42);
  const auto bytes = std::move(w).finish();

  BitReader r(bytes);
  std::uint32_t head = 0;
  ASSERT_TRUE(r.try_read(18, head));
  std::span<const std::uint8_t> aligned;
  ASSERT_TRUE(r.try_read_aligned_bytes(1, aligned));
  EXPECT_EQ(aligned[0], 0x42);
}

TEST(BitStream, UnderrunReported) {
  const std::vector<std::uint8_t> bytes = {0xFF};
  BitReader r(bytes);
  std::uint32_t out = 0;
  ASSERT_TRUE(r.try_read(8, out));
  EXPECT_FALSE(r.try_read(1, out));
}

}  // namespace
}  // namespace cdc::support
