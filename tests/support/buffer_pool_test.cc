#include "support/buffer_pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cdc::support {
namespace {

TEST(BufferPool, FirstAcquireMissesThenRecyclesCapacity) {
  BufferPool pool(4);
  std::vector<std::uint8_t> buf;
  EXPECT_FALSE(pool.acquire(buf));
  EXPECT_TRUE(buf.empty());

  buf.resize(4096);
  const std::size_t capacity = buf.capacity();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.idle_buffers(), 1u);

  std::vector<std::uint8_t> again;
  EXPECT_TRUE(pool.acquire(again));
  EXPECT_TRUE(again.empty());             // contents discarded...
  EXPECT_GE(again.capacity(), capacity);  // ...capacity kept

  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.recycled_bytes, capacity);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(BufferPool, ReleaseBeyondCapIsDroppedNotRetained) {
  BufferPool pool(2);
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> buf(64);
    pool.release(std::move(buf));
  }
  EXPECT_EQ(pool.idle_buffers(), 2u);
  EXPECT_EQ(pool.stats().dropped, 3u);
}

TEST(BufferPool, MissLeavesStaleCallerBufferEmpty) {
  BufferPool pool(1);
  std::vector<std::uint8_t> buf(1000, 0xFF);
  EXPECT_FALSE(pool.acquire(buf));  // pool empty: caller buffer reset
  EXPECT_TRUE(buf.empty());
}

TEST(BufferPool, SteadyStateLoopAllocatesOnlyOnce) {
  BufferPool pool(4);
  std::uint64_t total_capacity_churn = 0;
  for (int i = 0; i < 1000; ++i) {
    std::vector<std::uint8_t> buf;
    pool.acquire(buf);
    const std::size_t before = buf.capacity();
    buf.resize(2048);  // allocates on the first pass only
    if (buf.capacity() != before) ++total_capacity_churn;
    pool.release(std::move(buf));
  }
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 999u);
  EXPECT_EQ(total_capacity_churn, 1u) << "steady state reallocated";
}

TEST(BufferPool, ConcurrentAcquireReleaseKeepsCountsConsistent) {
  BufferPool pool(8);
  constexpr int kThreads = 8;
  constexpr int kIterations = 500;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kIterations; ++i) {
          std::vector<std::uint8_t> buf;
          pool.acquire(buf);
          buf.resize(128);
          pool.release(std::move(buf));
        }
      });
    }
  }
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIterations);
  // At most one fresh buffer per thread can be in flight at once, and the
  // pool retains up to 8, so misses are bounded by the thread count.
  EXPECT_LE(stats.misses, static_cast<std::uint64_t>(kThreads));
  EXPECT_LE(pool.idle_buffers(), 8u);
}

}  // namespace
}  // namespace cdc::support
