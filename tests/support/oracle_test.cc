// The replay-equivalence oracle itself: a checker is only as good as its
// ability to fail, so most tests here construct deliberate divergences.
#include <gtest/gtest.h>

#include "apps/taskfarm.h"
#include "minimpi/simulator.h"
#include "runtime/storage.h"
#include "support/oracle.h"
#include "tool/recorder.h"

namespace cdc {
namespace {

using support::ObservedEvent;
using support::OrderProbe;
using support::StreamTrace;
using support::Trace;

ObservedEvent matched(std::int32_t source, std::uint64_t clock) {
  ObservedEvent e;
  e.matched = true;
  e.source = source;
  e.tag = 1;
  e.piggyback = clock;
  e.payload_crc = 0xabcd1234;
  e.payload_size = 16;
  return e;
}

ObservedEvent unmatched() {
  ObservedEvent e;
  e.matched = false;
  return e;
}

runtime::StreamKey key(int rank, unsigned callsite = 1) {
  return runtime::StreamKey{rank, callsite};
}

Trace small_trace() {
  Trace trace;
  trace[key(0)] = {matched(1, 5), unmatched(), matched(2, 7)};
  trace[key(1)] = {matched(0, 3)};
  return trace;
}

TEST(Oracle, IdenticalTracesPass) {
  const Trace a = small_trace();
  const auto report = support::check_equivalence(a, a);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.streams_compared, 2u);
  EXPECT_EQ(report.events_compared, 4u);
}

TEST(Oracle, DetectsAnOrderSwap) {
  const Trace a = small_trace();
  Trace b = a;
  std::swap(b[key(0)][0], b[key(0)][2]);
  const auto report = support::check_equivalence(a, b);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.mismatches.empty());
  EXPECT_NE(report.summary().find("event 0"), std::string::npos);
}

TEST(Oracle, DetectsAMissingEvent) {
  const Trace a = small_trace();
  Trace b = a;
  b[key(0)].pop_back();
  EXPECT_FALSE(support::check_equivalence(a, b).ok);
}

TEST(Oracle, DetectsAMissingStream) {
  const Trace a = small_trace();
  Trace b = a;
  b.erase(key(1));
  EXPECT_FALSE(support::check_equivalence(a, b).ok);
}

TEST(Oracle, DetectsAnExtraStream) {
  const Trace a = small_trace();
  Trace b = a;
  b[key(2)] = {matched(0, 9)};
  EXPECT_FALSE(support::check_equivalence(a, b).ok);
}

TEST(Oracle, DetectsPayloadCorruption) {
  const Trace a = small_trace();
  Trace b = a;
  b[key(1)][0].payload_crc ^= 1;  // same envelope, different bytes
  EXPECT_FALSE(support::check_equivalence(a, b).ok);
}

TEST(Oracle, DetectsAMatchedUnmatchedFlip) {
  const Trace a = small_trace();
  Trace b = a;
  b[key(0)][1] = matched(1, 6);
  EXPECT_FALSE(support::check_equivalence(a, b).ok);
}

TEST(Oracle, PrefixIgnoresTailDivergence) {
  const Trace a = small_trace();
  Trace b = a;
  b[key(0)][2] = matched(3, 99);  // diverges at event 2...
  b[key(0)].push_back(matched(4, 100));
  std::map<runtime::StreamKey, std::uint64_t> prefixes;
  prefixes[key(0)] = 2;  // ...but only events 0..1 are claimed
  prefixes[key(1)] = 1;
  const auto report = support::check_prefix(a, b, prefixes);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.events_compared, 3u);
}

TEST(Oracle, PrefixStillChecksTheClaimedSpan) {
  const Trace a = small_trace();
  Trace b = a;
  b[key(0)][1] = matched(1, 6);  // diverges INSIDE the claimed prefix
  std::map<runtime::StreamKey, std::uint64_t> prefixes;
  prefixes[key(0)] = 2;
  EXPECT_FALSE(support::check_prefix(a, b, prefixes).ok);
}

TEST(Oracle, PrefixLongerThanTheRecordFails) {
  // A replayer claiming to have replayed more events than were recorded is
  // itself a bug the oracle must flag.
  const Trace a = small_trace();
  Trace b = a;
  b[key(1)].push_back(matched(2, 50));
  std::map<runtime::StreamKey, std::uint64_t> prefixes;
  prefixes[key(1)] = 2;
  EXPECT_FALSE(support::check_prefix(a, b, prefixes).ok);
}

TEST(Oracle, UnclaimedStreamsRequireNothing) {
  const Trace a = small_trace();
  Trace b;  // replay surfaced nothing at all
  const auto report =
      support::check_prefix(a, b, /*prefix_lengths=*/{});
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.events_compared, 0u);
}

TEST(OrderProbe, CapturesWhatTheApplicationSaw) {
  apps::TaskFarmConfig config;
  config.tasks = 80;
  minimpi::Simulator::Config sim_config;
  sim_config.num_ranks = 5;
  sim_config.noise_seed = 17;
  OrderProbe probe;  // standalone: untooled semantics
  minimpi::Simulator sim(sim_config, &probe);
  const auto result = apps::run_taskfarm(sim, config);
  EXPECT_EQ(result.completed, 80u);
  // Every delivered receive event appears in the trace.
  std::uint64_t matched_events = 0;
  for (const auto& [k, stream] : probe.trace())
    for (const ObservedEvent& e : stream) matched_events += e.matched ? 1 : 0;
  EXPECT_EQ(matched_events, sim.stats().receive_events_delivered);
}

TEST(OrderProbe, IsInvisibleToTheWrappedTool) {
  // Recording through a probe must give the identical record (and digest)
  // as recording directly: the probe forwards every hook unchanged.
  apps::TaskFarmConfig config;
  config.tasks = 80;
  minimpi::Simulator::Config sim_config;
  sim_config.num_ranks = 5;
  sim_config.noise_seed = 23;

  runtime::MemoryStore direct_store;
  tool::Recorder direct(5, &direct_store);
  minimpi::Simulator direct_sim(sim_config, &direct);
  apps::run_taskfarm(direct_sim, config);
  direct.finalize();

  runtime::MemoryStore probed_store;
  tool::Recorder probed(5, &probed_store);
  OrderProbe probe(&probed);
  minimpi::Simulator probed_sim(sim_config, &probe);
  apps::run_taskfarm(probed_sim, config);
  probed.finalize();

  EXPECT_EQ(direct.order_digest(), probed.order_digest());
  EXPECT_EQ(direct_store.total_bytes(), probed_store.total_bytes());
  EXPECT_EQ(probe.total_events(),
            direct.totals().matched_events + direct.totals().unmatched_events);
}

}  // namespace
}  // namespace cdc
