#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace cdc::support {
namespace {

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i)
    if (a() != b()) ++differing;
  EXPECT_GT(differing, 90);
}

TEST(Xoshiro, BoundedStaysInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(7), 7u);
  }
  EXPECT_EQ(rng.bounded(1), 0u);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro, BoundedCoversAllResidues) {
  Xoshiro256 rng(6);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.bounded(10)];
  for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro, ExponentialHasRequestedMean) {
  Xoshiro256 rng(10);
  const double mean = 3.5;
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.exponential(mean);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, mean, 0.05 * mean);
}

}  // namespace
}  // namespace cdc::support
