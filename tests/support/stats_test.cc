#include "support/stats.h"

#include <gtest/gtest.h>

namespace cdc::support {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);   // clamps to first bucket
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[9], 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_width(), 1.0);
}

TEST(Histogram, BoundaryFallsInUpperBucket) {
  Histogram h(0.0, 10.0, 10);
  h.add(1.0);
  EXPECT_EQ(h.counts()[1], 1u);
}

TEST(FormatBytes, HumanUnits) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1500), "1.50 KB");
  EXPECT_EQ(format_bytes(197.0e6), "197.00 MB");
  EXPECT_EQ(format_bytes(2.5e9), "2.50 GB");
}

}  // namespace
}  // namespace cdc::support
