#include "tool/async_recorder.h"

#include <gtest/gtest.h>

#include "tool/frame.h"

namespace cdc::tool {
namespace {

record::ReceiveEvent matched(std::int32_t sender, std::uint64_t clk) {
  return {true, false, sender, clk};
}

AsyncRecorder::Config small_config(std::size_t queue_capacity = 1 << 10) {
  AsyncRecorder::Config config;
  config.key = {0, 1};
  config.options.chunk_target = 64;
  config.queue_capacity = queue_capacity;
  return config;
}

TEST(AsyncRecorder, RecordsEverythingEnqueued) {
  runtime::MemoryStore store;
  {
    AsyncRecorder recorder(small_config(), &store);
    for (std::uint64_t c = 1; c <= 10000; ++c) {
      if (c % 7 == 0)
        recorder.enqueue(record::ReceiveEvent{false, false, -1, 0});
      recorder.enqueue(matched(static_cast<std::int32_t>(c % 5), c));
    }
    recorder.finalize();
    const auto counters = recorder.counters();
    EXPECT_EQ(counters.enqueued, counters.dequeued);
    EXPECT_EQ(recorder.stream_stats().matched_events, 10000u);
  }
  EXPECT_GT(store.total_bytes(), 0u);

  // The stream parses into the recorded number of frames.
  const auto bytes = store.read({0, 1});
  support::ByteReader reader(bytes);
  std::size_t frames = 0;
  while (read_frame(reader).has_value()) ++frames;
  EXPECT_TRUE(reader.exhausted());
  EXPECT_GT(frames, 100u);  // 10000 events / 64 per chunk
}

TEST(AsyncRecorder, BackPressureBlocksRatherThanDrops) {
  runtime::MemoryStore store;
  AsyncRecorder recorder(small_config(/*queue_capacity=*/16), &store);
  // Flood a tiny ring: the producer must stall, never lose events.
  for (std::uint64_t c = 1; c <= 50000; ++c)
    recorder.enqueue(matched(0, c));
  recorder.finalize();
  EXPECT_EQ(recorder.stream_stats().matched_events, 50000u);
}

TEST(AsyncRecorder, DestructorFinalizes) {
  runtime::MemoryStore store;
  {
    AsyncRecorder recorder(small_config(), &store);
    for (std::uint64_t c = 1; c <= 10; ++c) recorder.enqueue(matched(0, c));
  }
  EXPECT_GT(store.total_bytes(), 0u);
}

TEST(AsyncRecorder, FinalizeIsIdempotent) {
  runtime::MemoryStore store;
  AsyncRecorder recorder(small_config(), &store);
  recorder.enqueue(matched(0, 1));
  recorder.finalize();
  recorder.finalize();
  EXPECT_EQ(recorder.stream_stats().matched_events, 1u);
}

TEST(AsyncRecorder, ConsumerKeepsUpWithRealisticRates) {
  // §6.2: the dequeue rate far exceeds the production rate, so the ring
  // stays near empty. With a sane queue there must be almost no stalls.
  runtime::MemoryStore store;
  AsyncRecorder recorder(small_config(1 << 16), &store);
  for (std::uint64_t c = 1; c <= 100000; ++c)
    recorder.enqueue(matched(static_cast<std::int32_t>(c % 3), c));
  recorder.finalize();
  const auto counters = recorder.counters();
  EXPECT_EQ(counters.dequeued, 100000u);
}

}  // namespace
}  // namespace cdc::tool
