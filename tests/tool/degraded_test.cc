// Degraded-mode replay mechanics: gap reports of killed runs, the
// quarantine-hole prefix cap (the hole the container cannot represent),
// and diagnostics-not-aborts on missing or empty containers.
#include "tool/degraded.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apps/taskfarm.h"
#include "minimpi/simulator.h"
#include "obs/json.h"
#include "store/container_store.h"
#include "store/resilient.h"
#include "support/oracle.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace cdc::tool {
namespace {

class DegradedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cdc_degraded_test." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

minimpi::Simulator::Config sim_config(int ranks, std::uint64_t seed) {
  minimpi::Simulator::Config config;
  config.num_ranks = ranks;
  config.noise_seed = seed;
  return config;
}

std::vector<std::uint8_t> payload(std::uint8_t tag) {
  return {tag, 1, 2, 3, 4, 5, 6, 7};
}

TEST_F(DegradedTest, KilledRunYieldsACompleteContainerAndAVerifiedPrefix) {
  // A rank killed mid-run truncates its streams *semantically* — the
  // sealed container is still frame-complete, the degradation shows up as
  // a shorter gated prefix at replay, verified by the oracle.
  constexpr int kRanks = 4;
  apps::TaskFarmConfig farm;
  farm.tasks = 60;
  const std::string container_path = path("killed.cdcc");

  // Probe the healthy span so the kill lands mid-run.
  double span = 0.0;
  {
    minimpi::Simulator probe(sim_config(kRanks, 11));
    apps::run_taskfarm(probe, farm);
    span = probe.stats().end_time;
  }

  support::Trace recorded;
  {
    store::ContainerStore container(container_path);
    Recorder recorder(kRanks, &container);
    support::OrderProbe probe(&recorder);
    minimpi::Simulator::Config config = sim_config(kRanks, 11);
    config.faults.kills.push_back(minimpi::RankKill{2, span * 0.4});
    minimpi::Simulator sim(config, &probe);
    apps::run_taskfarm(sim, farm);
    recorder.finalize();
    container.seal();
    ASSERT_EQ(sim.fault_stats().rank_kills, 1u);
    recorded = probe.trace();
  }

  const GapReport report = inspect_gaps(container_path);
  EXPECT_TRUE(report.container_sealed);
  EXPECT_TRUE(report.container_errors.empty());
  EXPECT_DOUBLE_EQ(report.frame_coverage(), 1.0);
  EXPECT_FALSE(report.degraded());
  const std::string json = report.to_json();
  EXPECT_TRUE(obs::json_well_formed(json));
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"streams\""), std::string::npos);

  // Degraded replay of the full record: the gated prefix must match the
  // recorded trace bit for bit.
  const auto record = load_degraded(container_path);
  ToolOptions options;
  options.partial_record = true;
  Replayer replayer(kRanks, &record->store, options);
  support::OrderProbe replay_probe(&replayer);
  minimpi::Simulator replay_sim(sim_config(kRanks, 77), &replay_probe);
  apps::run_taskfarm(replay_sim, farm);

  std::map<runtime::StreamKey, std::uint64_t> prefixes;
  for (const auto& [key, stats] : replayer.stream_totals())
    prefixes[key] = stats.replayed_events + stats.replayed_unmatched;
  const support::OracleReport oracle =
      support::check_prefix(recorded, replay_probe.trace(), prefixes);
  EXPECT_TRUE(oracle.ok) << oracle.summary();
  EXPECT_TRUE(oracle.events_compared > 0 || replayer.released());
}

TEST_F(DegradedTest, QuarantineHoleCapsTheReplayablePrefix) {
  // The container packs appends densely, so a quarantined frame leaves no
  // visible seq gap — the `.cdcq` sidecar's stream position is the only
  // record of the hole, and the replayable prefix must stop there.
  const std::string container_path = path("holes.cdcc");
  const std::string sidecar = path("holes.cdcq");
  runtime::StreamKey damaged;
  damaged.rank = 1;
  damaged.callsite = 4;
  runtime::StreamKey whole;
  whole.rank = 2;
  whole.callsite = 4;
  {
    store::ContainerStore container(container_path);
    store::IoFaultPlan plan;
    plan.hard_every_n = 3;  // appends 3 and 6 never succeed
    store::IoFaultStore faulty(&container, plan);
    store::RetryPolicy policy;
    policy.max_retries = 1;
    store::RetryingStore retrying(&faulty, policy, sidecar);
    for (std::uint8_t i = 0; i < 6; ++i)
      retrying.append(damaged, payload(i));  // loses i == 2 and i == 5
    for (std::uint8_t i = 6; i < 8; ++i) retrying.append(whole, payload(i));
    ASSERT_EQ(retrying.stats().quarantined, 2u);
    container.seal();
  }

  const GapReport report = inspect_gaps(container_path, sidecar);
  EXPECT_TRUE(report.container_sealed);
  EXPECT_EQ(report.quarantined_frames, 2u);
  EXPECT_TRUE(report.degraded());
  ASSERT_EQ(report.streams.size(), 2u);

  // The damaged stream promises 6 frames (4 in the container + 2 lost);
  // only the 2 before the first hole are replayable.
  const StreamGap& gap = report.streams[0];
  EXPECT_EQ(gap.key, damaged);
  EXPECT_EQ(gap.frames_listed, 6u);
  EXPECT_EQ(gap.frames_intact, 2u);
  EXPECT_TRUE(gap.truncated);
  EXPECT_EQ(gap.gap_reason, "frame quarantined after exhausted retries");

  // The untouched stream is whole.
  EXPECT_EQ(report.streams[1].key, whole);
  EXPECT_EQ(report.streams[1].frames_listed, 2u);
  EXPECT_EQ(report.streams[1].frames_intact, 2u);
  EXPECT_FALSE(report.streams[1].truncated);

  // load_degraded keeps exactly the capped prefix.
  const auto record = load_degraded(container_path, sidecar);
  std::vector<std::uint8_t> expected = payload(0);
  const std::vector<std::uint8_t> second = payload(1);
  expected.insert(expected.end(), second.begin(), second.end());
  EXPECT_EQ(record->store.read(damaged), expected);
}

TEST_F(DegradedTest, MissingAndEmptyContainersReportInsteadOfAborting) {
  const GapReport missing = inspect_gaps(path("nonexistent.cdcc"));
  EXPECT_FALSE(missing.container_sealed);
  ASSERT_FALSE(missing.container_errors.empty());
  EXPECT_TRUE(missing.degraded());
  EXPECT_TRUE(missing.streams.empty());
  EXPECT_DOUBLE_EQ(missing.frame_coverage(), 1.0);  // nothing promised
  EXPECT_TRUE(obs::json_well_formed(missing.to_json()));

  const std::string empty_path = path("empty.cdcc");
  { std::ofstream out(empty_path, std::ios::binary); }
  const GapReport empty = inspect_gaps(empty_path);
  EXPECT_FALSE(empty.container_sealed);
  EXPECT_FALSE(empty.container_errors.empty());
  EXPECT_TRUE(empty.degraded());
  EXPECT_TRUE(obs::json_well_formed(empty.to_json()));

  const auto record = load_degraded(empty_path);
  EXPECT_TRUE(record->store.keys().empty());
  EXPECT_TRUE(record->prefix_events.empty());
}

}  // namespace
}  // namespace cdc::tool
