#include "tool/frame.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace cdc::tool {
namespace {

std::vector<std::uint8_t> make_payload(std::size_t n, bool compressible) {
  support::Xoshiro256 rng(5);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out)
    b = compressible ? 0 : static_cast<std::uint8_t>(rng.bounded(256));
  return out;
}

TEST(Frame, RoundTripCompressible) {
  const auto payload = make_payload(10000, true);
  support::ByteWriter w;
  write_frame(w, 3, 42, payload, compress::DeflateLevel::kDefault);
  EXPECT_LT(w.size(), payload.size() / 10);

  support::ByteReader r(w.view());
  const auto frame = read_frame(r);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->codec, 3);
  EXPECT_EQ(frame->meta, 42u);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_TRUE(r.exhausted());
}

TEST(Frame, IncompressiblePayloadStoredRaw) {
  const auto payload = make_payload(1000, false);
  support::ByteWriter w;
  write_frame(w, 1, 0, payload, compress::DeflateLevel::kDefault);
  // Raw storage bounds the expansion to the small frame header.
  EXPECT_LE(w.size(), payload.size() + 16);
  support::ByteReader r(w.view());
  const auto frame = read_frame(r);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);
}

TEST(Frame, SequenceOfFrames) {
  support::ByteWriter w;
  for (std::uint8_t i = 0; i < 5; ++i) {
    const std::vector<std::uint8_t> payload(100 + i, i);
    write_frame(w, i, i * 10, payload, compress::DeflateLevel::kFast);
  }
  support::ByteReader r(w.view());
  for (std::uint8_t i = 0; i < 5; ++i) {
    const auto frame = read_frame(r);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->codec, i);
    EXPECT_EQ(frame->meta, i * 10u);
    EXPECT_EQ(frame->payload.size(), 100u + i);
  }
  EXPECT_FALSE(read_frame(r).has_value());  // clean end of stream
}

TEST(Frame, EmptyStreamYieldsNothing) {
  support::ByteReader r({});
  EXPECT_FALSE(read_frame(r).has_value());
}

TEST(Frame, RejectsBadMagic) {
  support::ByteWriter w;
  write_frame(w, 0, 0, make_payload(50, true),
              compress::DeflateLevel::kDefault);
  auto data = std::move(w).take();
  data[0] = 0x00;
  support::ByteReader r(data);
  EXPECT_FALSE(read_frame(r).has_value());
}

TEST(Frame, RejectsTruncatedBody) {
  support::ByteWriter w;
  write_frame(w, 0, 0, make_payload(5000, true),
              compress::DeflateLevel::kDefault);
  auto data = std::move(w).take();
  data.resize(data.size() - 3);
  support::ByteReader r(data);
  EXPECT_FALSE(read_frame(r).has_value());
}

TEST(Frame, RejectsCorruptCompressedBody) {
  support::ByteWriter w;
  write_frame(w, 0, 0, make_payload(5000, true),
              compress::DeflateLevel::kDefault);
  auto data = std::move(w).take();
  data[data.size() / 2] ^= 0x55;
  support::ByteReader r(data);
  const auto frame = read_frame(r);
  // Either the DEFLATE stream fails to parse or the length check fires;
  // silent wrong payloads are not acceptable. (A flipped bit could decode
  // to the right length only with different content — guarded upstream by
  // chunk-level validation.)
  if (frame.has_value()) {
    EXPECT_NE(frame->payload, make_payload(5000, true));
  }
}

}  // namespace
}  // namespace cdc::tool
