#include "tool/hook_chain.h"

#include <gtest/gtest.h>

#include "apps/mcb.h"
#include "minimpi/simulator.h"
#include "runtime/storage.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace cdc::tool {
namespace {

minimpi::Simulator::Config sim_config(int ranks, std::uint64_t seed) {
  minimpi::Simulator::Config config;
  config.num_ranks = ranks;
  config.noise_seed = seed;
  return config;
}

apps::McbConfig small_mcb() {
  apps::McbConfig config;
  config.grid_x = 2;
  config.grid_y = 2;
  config.particles_per_rank = 25;
  config.segments_per_particle = 5;
  return config;
}

TEST(HookChain, ObserverSeesTheSameEventsAsTheRecorder) {
  runtime::MemoryStore store;
  Recorder recorder(4, &store);
  EventCounter counter(4);
  HookChain chain(&recorder);
  chain.add_observer(&counter);

  minimpi::Simulator sim(sim_config(4, 3), &chain);
  apps::run_mcb(sim, small_mcb());
  recorder.finalize();

  std::uint64_t observed = 0;
  std::uint64_t observed_unmatched = 0;
  for (minimpi::Rank r = 0; r < 4; ++r) {
    observed += counter.deliveries(r);
    observed_unmatched += counter.unmatched(r);
  }
  EXPECT_EQ(observed, recorder.totals().matched_events);
  EXPECT_EQ(observed_unmatched, recorder.totals().unmatched_events);
  EXPECT_GT(counter.sends(0), 0u);
}

TEST(HookChain, RecordingThroughAChainStillReplays) {
  runtime::MemoryStore store;
  {
    Recorder recorder(4, &store);
    EventCounter counter(4);
    HookChain chain(&recorder);
    chain.add_observer(&counter);
    minimpi::Simulator sim(sim_config(4, 3), &chain);
    apps::run_mcb(sim, small_mcb());
    recorder.finalize();
  }

  // Replay with its own observer chain attached.
  Replayer replayer(4, &store);
  EventCounter counter(4);
  HookChain chain(&replayer);
  chain.add_observer(&counter);
  minimpi::Simulator sim(sim_config(4, 44), &chain);
  const auto result = apps::run_mcb(sim, small_mcb());
  EXPECT_GT(result.total_tracks, 0u);
  EXPECT_TRUE(replayer.fully_replayed());
}

TEST(HookChain, NullPrimaryPreservesUntooledSemantics) {
  // Same seed with and without an observer-only chain: identical runs
  // (observers never perturb matching or clocks).
  apps::McbResult untooled;
  {
    minimpi::Simulator sim(sim_config(4, 9), nullptr);
    untooled = apps::run_mcb(sim, small_mcb());
  }
  EventCounter counter(4);
  HookChain chain(nullptr);
  chain.add_observer(&counter);
  minimpi::Simulator sim(sim_config(4, 9), &chain);
  const auto observed = apps::run_mcb(sim, small_mcb());
  EXPECT_EQ(observed.global_tally, untooled.global_tally);
  EXPECT_EQ(observed.messages, untooled.messages);
}

TEST(HookChain, MultipleObservers) {
  EventCounter a(2);
  EventCounter b(2);
  HookChain chain(nullptr);
  chain.add_observer(&a);
  chain.add_observer(&b);

  minimpi::Simulator sim(sim_config(2, 1), &chain);
  sim.set_program(0, [](minimpi::Comm& comm) -> minimpi::Task {
    comm.isend(1, 1, std::vector<std::uint8_t>{1});
    co_return;
  });
  sim.set_program(1, [](minimpi::Comm& comm) -> minimpi::Task {
    minimpi::Request r = comm.irecv(0, 1);
    co_await comm.wait(r);
  });
  sim.run();
  EXPECT_EQ(a.deliveries(1), 1u);
  EXPECT_EQ(b.deliveries(1), 1u);
  EXPECT_EQ(a.sends(0), 1u);
}

}  // namespace
}  // namespace cdc::tool
