#include "tool/stream_recorder.h"

#include <gtest/gtest.h>

#include "record/event.h"
#include "tool/frame.h"

namespace cdc::tool {
namespace {

record::ReceiveEvent matched(std::int32_t sender, std::uint64_t clk) {
  return {true, false, sender, clk};
}

ToolOptions options_with(RecordCodec codec, std::size_t chunk_target = 4) {
  ToolOptions o;
  o.codec = codec;
  o.chunk_target = chunk_target;
  return o;
}

TEST(StreamRecorder, NoFlushBelowChunkTarget) {
  runtime::MemoryStore store;
  StreamRecorder rec({0, 1}, options_with(RecordCodec::kCdcFull, 10));
  for (std::uint64_t c = 1; c <= 5; ++c) rec.on_delivered(matched(0, c));
  rec.flush_if_due(store);
  EXPECT_EQ(store.total_bytes(), 0u);
  rec.finalize(store);
  EXPECT_GT(store.total_bytes(), 0u);
  EXPECT_EQ(rec.stats().chunks, 1u);
}

TEST(StreamRecorder, FlushesAtChunkTarget) {
  runtime::MemoryStore store;
  StreamRecorder rec({0, 1}, options_with(RecordCodec::kCdcFull, 4));
  for (std::uint64_t c = 1; c <= 4; ++c) rec.on_delivered(matched(0, c));
  rec.flush_if_due(store);
  EXPECT_GT(store.total_bytes(), 0u);
  EXPECT_EQ(rec.stats().chunks, 1u);
}

TEST(StreamRecorder, PendingMessageDefersFlush) {
  runtime::MemoryStore store;
  StreamRecorder rec({0, 1}, options_with(RecordCodec::kCdcFull, 2));
  // A message from sender 0 with clock 1 has been sighted but not
  // delivered; flushing events with larger clocks from sender 0 would
  // break the epoch invariant.
  rec.on_candidate({0, 1});
  rec.on_delivered(matched(0, 5));
  rec.on_delivered(matched(0, 6));
  rec.flush_if_due(store);
  EXPECT_EQ(store.total_bytes(), 0u);  // deferred: no clean cut

  // Delivering the pending message unblocks the cut.
  rec.on_delivered(matched(0, 1));
  // (0,1) was delivered AFTER (0,5): the inversion forces them into one
  // chunk, which finalize produces.
  rec.finalize(store);
  EXPECT_GT(store.total_bytes(), 0u);
}

TEST(StreamRecorder, OtherSendersPendingDoesNotDefer) {
  runtime::MemoryStore store;
  StreamRecorder rec({0, 1}, options_with(RecordCodec::kCdcFull, 2));
  rec.on_candidate({7, 1});  // pending from an unrelated sender
  rec.on_delivered(matched(0, 5));
  rec.on_delivered(matched(0, 6));
  rec.flush_if_due(store);
  EXPECT_GT(store.total_bytes(), 0u);
}

TEST(StreamRecorder, StatsCountEventsAndValues) {
  runtime::MemoryStore store;
  StreamRecorder rec({0, 1}, options_with(RecordCodec::kCdcFull, 100));
  rec.on_unmatched_test();
  rec.on_unmatched_test();
  rec.on_delivered(matched(1, 3));
  rec.on_delivered(matched(2, 9));
  rec.finalize(store);
  EXPECT_EQ(rec.stats().matched_events, 2u);
  EXPECT_EQ(rec.stats().unmatched_events, 2u);
  EXPECT_EQ(rec.stats().chunks, 1u);
  EXPECT_GT(rec.stats().stored_values, 0u);
}

class CodecFrames : public ::testing::TestWithParam<RecordCodec> {};

TEST_P(CodecFrames, ProducesParsableFrames) {
  runtime::MemoryStore store;
  StreamRecorder rec({2, 3}, options_with(GetParam(), 8));
  for (std::uint64_t c = 1; c <= 20; ++c) {
    if (c % 5 == 0) rec.on_unmatched_test();
    rec.on_delivered(matched(static_cast<std::int32_t>(c % 3), c * 2));
  }
  rec.finalize(store);
  const auto bytes = store.read({2, 3});
  ASSERT_FALSE(bytes.empty());

  support::ByteReader reader(bytes);
  std::size_t frames = 0;
  while (auto frame = read_frame(reader)) {
    EXPECT_EQ(frame->codec, static_cast<std::uint8_t>(GetParam()));
    ++frames;
  }
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(frames, rec.stats().chunks);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecFrames,
                         ::testing::Values(RecordCodec::kBaselineRaw,
                                           RecordCodec::kBaselineGzip,
                                           RecordCodec::kCdcRe,
                                           RecordCodec::kCdcFull),
                         [](const auto& info) {
                           switch (info.param) {
                             case RecordCodec::kBaselineRaw: return "Raw";
                             case RecordCodec::kBaselineGzip: return "Gzip";
                             case RecordCodec::kCdcRe: return "CdcRe";
                             case RecordCodec::kCdcFull: return "CdcFull";
                           }
                           return "?";
                         });

TEST(StreamRecorder, CdcSmallerThanBaselineOnOrderedStream) {
  // A reference-ordered stream: CDC stores almost nothing per event while
  // the baseline stores 162 bits per row.
  runtime::MemoryStore store_raw;
  runtime::MemoryStore store_cdc;
  StreamRecorder raw({0, 0}, options_with(RecordCodec::kBaselineRaw, 1000));
  StreamRecorder cdc({0, 0}, options_with(RecordCodec::kCdcFull, 1000));
  for (std::uint64_t c = 1; c <= 1000; ++c) {
    raw.on_delivered(matched(static_cast<std::int32_t>(c % 4), c * 3));
    cdc.on_delivered(matched(static_cast<std::int32_t>(c % 4), c * 3));
  }
  raw.finalize(store_raw);
  cdc.finalize(store_cdc);
  EXPECT_GT(store_raw.total_bytes(), 20u * store_cdc.total_bytes());
}

}  // namespace
}  // namespace cdc::tool
