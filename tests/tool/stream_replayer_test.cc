// Direct unit tests of the replay gate's state machine: unmatched-test
// consumption, arrival-gated releases, with_next group delivery, epoch
// chunk classification, and passthrough after exhaustion — driven without
// the simulator.
#include "tool/stream_replayer.h"

#include <gtest/gtest.h>

#include "record/event.h"
#include "runtime/storage.h"
#include "tool/stream_recorder.h"

namespace cdc::tool {
namespace {

using record::ReceiveEvent;

/// Builds the recorded byte stream for one callsite from a raw event list.
std::vector<std::uint8_t> record_stream(
    const std::vector<ReceiveEvent>& events, std::size_t chunk_target = 64) {
  runtime::MemoryStore store;
  ToolOptions options;
  options.chunk_target = chunk_target;
  StreamRecorder recorder({0, 1}, options);
  for (const ReceiveEvent& e : events) {
    if (e.flag) {
      recorder.on_delivered(e);
    } else {
      recorder.on_unmatched_test();
    }
    recorder.flush_if_due(store);
  }
  recorder.finalize(store);
  return store.read({0, 1});
}

minimpi::Candidate candidate(std::int32_t source, std::uint64_t clk,
                             bool fresh = true) {
  minimpi::Candidate c;
  c.span_index = 0;
  c.source = source;
  c.piggyback = clk;
  c.fresh = fresh;
  return c;
}

minimpi::Completion completion(std::int32_t source, std::uint64_t clk) {
  minimpi::Completion c;
  c.source = source;
  c.piggyback = clk;
  return c;
}

TEST(StreamReplayer, EmptyRecordIsExhaustedImmediately) {
  StreamReplayer replayer({0, 1}, {});
  EXPECT_TRUE(replayer.exhausted());
  const auto decision = replayer.decide(minimpi::MFKind::kTest, {});
  EXPECT_EQ(decision.kind, StreamReplayer::Decision::Kind::kPassthrough);
}

TEST(StreamReplayer, ConsumesUnmatchedRunsThenDelivers) {
  // Record: two failed tests, then a receive from (3, 10).
  const auto bytes = record_stream({
      {false, false, -1, 0},
      {false, false, -1, 0},
      {true, false, 3, 10},
  });
  StreamReplayer replayer({0, 1}, bytes);
  ASSERT_FALSE(replayer.exhausted());

  // The message may already be visible, but the two recorded unmatched
  // tests must surface first.
  replayer.sight({3, 10});
  for (int i = 0; i < 2; ++i) {
    const std::vector<minimpi::Candidate> cands = {candidate(3, 10, i == 0)};
    const auto decision = replayer.decide(minimpi::MFKind::kTest, cands);
    ASSERT_EQ(decision.kind, StreamReplayer::Decision::Kind::kNoMatch);
    replayer.confirm_unmatched();
  }

  const std::vector<minimpi::Candidate> cands = {candidate(3, 10, false)};
  const auto decision = replayer.decide(minimpi::MFKind::kTest, cands);
  ASSERT_EQ(decision.kind, StreamReplayer::Decision::Kind::kDeliver);
  ASSERT_EQ(decision.messages.size(), 1u);
  EXPECT_EQ(decision.messages[0], (clock::MessageId{3, 10}));
  const minimpi::Completion done[] = {completion(3, 10)};
  replayer.confirm_delivered(done);
  EXPECT_TRUE(replayer.exhausted());
}

TEST(StreamReplayer, BlocksUntilTheRecordedMessageArrives) {
  const auto bytes = record_stream({
      {true, false, 1, 5},
      {true, false, 2, 6},
  });
  StreamReplayer replayer({0, 1}, bytes);

  // Only (2,6) has arrived; position 0 wants (1,5): block even for a Test.
  replayer.sight({2, 6});
  {
    const std::vector<minimpi::Candidate> cands = {candidate(2, 6)};
    EXPECT_EQ(replayer.decide(minimpi::MFKind::kTest, cands).kind,
              StreamReplayer::Decision::Kind::kBlock);
  }
  replayer.sight({1, 5});
  {
    const std::vector<minimpi::Candidate> cands = {candidate(2, 6, false),
                                                   candidate(1, 5, false)};
    const auto decision = replayer.decide(minimpi::MFKind::kTest, cands);
    ASSERT_EQ(decision.kind, StreamReplayer::Decision::Kind::kDeliver);
    EXPECT_EQ(decision.messages[0], (clock::MessageId{1, 5}));
  }
}

TEST(StreamReplayer, OutOfReferenceOrderObservedSequence) {
  // Recorded observed order (2,8) before (1,5): replay must release the
  // later-clock message first, exactly as recorded.
  const auto bytes = record_stream({
      {true, false, 2, 8},
      {true, false, 1, 5},
  });
  StreamReplayer replayer({0, 1}, bytes);
  replayer.sight({1, 5});
  replayer.sight({2, 8});
  const std::vector<minimpi::Candidate> cands = {candidate(1, 5, false),
                                                 candidate(2, 8, false)};
  auto decision = replayer.decide(minimpi::MFKind::kWaitany, cands);
  ASSERT_EQ(decision.kind, StreamReplayer::Decision::Kind::kDeliver);
  EXPECT_EQ(decision.messages[0], (clock::MessageId{2, 8}));
  const minimpi::Completion first[] = {completion(2, 8)};
  replayer.confirm_delivered(first);

  decision = replayer.decide(minimpi::MFKind::kWaitany, cands);
  ASSERT_EQ(decision.kind, StreamReplayer::Decision::Kind::kDeliver);
  EXPECT_EQ(decision.messages[0], (clock::MessageId{1, 5}));
}

TEST(StreamReplayer, WithNextGroupsDeliverTogether) {
  const auto bytes = record_stream({
      {true, true, 1, 5},
      {true, false, 2, 6},
      {true, false, 1, 9},
  });
  StreamReplayer replayer({0, 1}, bytes);
  replayer.sight({1, 5});
  // Group {(1,5),(2,6)} incomplete: block.
  {
    const std::vector<minimpi::Candidate> cands = {candidate(1, 5)};
    EXPECT_EQ(replayer.decide(minimpi::MFKind::kWaitsome, cands).kind,
              StreamReplayer::Decision::Kind::kBlock);
  }
  replayer.sight({2, 6});
  const std::vector<minimpi::Candidate> cands = {candidate(1, 5, false),
                                                 candidate(2, 6, false)};
  const auto decision = replayer.decide(minimpi::MFKind::kWaitsome, cands);
  ASSERT_EQ(decision.kind, StreamReplayer::Decision::Kind::kDeliver);
  ASSERT_EQ(decision.messages.size(), 2u);
  EXPECT_EQ(decision.messages[0], (clock::MessageId{1, 5}));
  EXPECT_EQ(decision.messages[1], (clock::MessageId{2, 6}));
}

TEST(StreamReplayer, GroupOnSingleDeliveryKindAborts) {
  const auto bytes = record_stream({
      {true, true, 1, 5},
      {true, false, 2, 6},
  });
  StreamReplayer replayer({0, 1}, bytes);
  replayer.sight({1, 5});
  replayer.sight({2, 6});
  const std::vector<minimpi::Candidate> cands = {candidate(1, 5, false),
                                                 candidate(2, 6, false)};
  EXPECT_DEATH(replayer.decide(minimpi::MFKind::kWait, cands),
               "single-delivery");
}

TEST(StreamReplayer, FutureChunkMessagesAreHeldOver) {
  // Two chunks (chunk_target = 2): the second chunk's messages have
  // strictly larger per-sender clocks (clean cut). A message of chunk 2
  // sighted during chunk 1 must not be delivered early.
  const auto bytes = record_stream(
      {
          {true, false, 1, 5},
          {true, false, 1, 7},
          {true, false, 1, 11},
          {true, false, 1, 13},
      },
      /*chunk_target=*/2);
  StreamReplayer replayer({0, 1}, bytes);

  replayer.sight({1, 5});
  replayer.sight({1, 7});
  replayer.sight({1, 11});  // belongs to chunk 2 (epoch_1[1] == 7)

  const std::vector<minimpi::Candidate> cands = {
      candidate(1, 5, false), candidate(1, 7, false),
      candidate(1, 11, false)};
  for (const std::uint64_t expected : {5ull, 7ull}) {
    const auto decision = replayer.decide(minimpi::MFKind::kTest, cands);
    ASSERT_EQ(decision.kind, StreamReplayer::Decision::Kind::kDeliver);
    EXPECT_EQ(decision.messages[0].clock, expected);
    const minimpi::Completion done[] = {completion(1, expected)};
    replayer.confirm_delivered(done);
  }
  // Chunk 2 active now; the held-over (1,11) becomes deliverable.
  const auto decision = replayer.decide(minimpi::MFKind::kTest, cands);
  ASSERT_EQ(decision.kind, StreamReplayer::Decision::Kind::kDeliver);
  EXPECT_EQ(decision.messages[0].clock, 11u);
  EXPECT_EQ(replayer.stats().chunks, 2u);
}

TEST(StreamReplayer, WrongDeliveryConfirmationAborts) {
  const auto bytes = record_stream({{true, false, 1, 5}});
  StreamReplayer replayer({0, 1}, bytes);
  replayer.sight({1, 5});
  const minimpi::Completion wrong[] = {completion(1, 6)};
  EXPECT_DEATH(replayer.confirm_delivered(wrong), "differs|never");
}

TEST(StreamReplayer, WaitWhileUnmatchedRecordedAborts) {
  const auto bytes = record_stream({
      {false, false, -1, 0},
      {true, false, 1, 5},
  });
  StreamReplayer replayer({0, 1}, bytes);
  replayer.sight({1, 5});
  const std::vector<minimpi::Candidate> cands = {candidate(1, 5, false)};
  EXPECT_DEATH(replayer.decide(minimpi::MFKind::kWait, cands),
               "unmatched test");
}

TEST(StreamReplayer, PassthroughAfterExhaustion) {
  const auto bytes = record_stream({{true, false, 1, 5}});
  StreamReplayer replayer({0, 1}, bytes);
  replayer.sight({1, 5});
  const std::vector<minimpi::Candidate> cands = {candidate(1, 5, false)};
  const auto decision = replayer.decide(minimpi::MFKind::kTest, cands);
  ASSERT_EQ(decision.kind, StreamReplayer::Decision::Kind::kDeliver);
  const minimpi::Completion done[] = {completion(1, 5)};
  replayer.confirm_delivered(done);
  EXPECT_TRUE(replayer.exhausted());
  EXPECT_EQ(replayer.decide(minimpi::MFKind::kTest, {}).kind,
            StreamReplayer::Decision::Kind::kPassthrough);
}

}  // namespace
}  // namespace cdc::tool
